#include "lsm/db_impl.h"

#include <algorithm>
#include <cstdarg>
#include <cstdio>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "lsm/builder.h"
#include "lsm/db_iter.h"
#include "lsm/filename.h"
#include "lsm/integrity_scrubber.h"
#include "lsm/log_reader.h"
#include "lsm/memtable.h"
#include "lsm/table_cache.h"
#include "lsm/version_set.h"
#include "lsm/write_batch.h"
#include "obs/logger.h"
#include "obs/perf_context.h"
#include "table/iterator.h"
#include "table/merger.h"
#include "table/table_verifier.h"
#include "util/coding.h"
#include "util/crash_env.h"

namespace fcae {

const int kNumNonTableCacheFiles = 10;

// Information kept for every waiting writer.
struct DBImpl::Writer {
  explicit Writer(Mutex* mu)
      : batch(nullptr), sync(false), done(false), cv(mu) {}

  Status status;
  WriteBatch* batch;
  bool sync;
  bool done;
  CondVar cv;
};

namespace {

template <class T, class V>
static void ClipToRange(T* ptr, V minvalue, V maxvalue) {
  if (static_cast<V>(*ptr) > maxvalue) *ptr = maxvalue;
  if (static_cast<V>(*ptr) < minvalue) *ptr = minvalue;
}

// Appends printf-formatted text to *out, growing the string as needed so
// long counter lines can never truncate (unlike a fixed char buffer).
void AppendF(std::string* out, const char* format, ...)
    __attribute__((format(printf, 2, 3)));

void AppendF(std::string* out, const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  char fixed[256];
  int needed = std::vsnprintf(fixed, sizeof(fixed), format, args);
  va_end(args);
  if (needed < 0) {
    va_end(args_copy);
    return;
  }
  if (static_cast<size_t>(needed) < sizeof(fixed)) {
    out->append(fixed, static_cast<size_t>(needed));
  } else {
    std::string big(static_cast<size_t>(needed) + 1, '\0');
    std::vsnprintf(&big[0], big.size(), format, args_copy);
    big.resize(static_cast<size_t>(needed));
    out->append(big);
  }
  va_end(args_copy);
}

}  // namespace

Options SanitizeOptions(const std::string& dbname,
                        const InternalKeyComparator* icmp,
                        const InternalFilterPolicy* ipolicy,
                        const Options& src) {
  Options result = src;
  result.comparator = icmp;
  result.filter_policy = (src.filter_policy != nullptr) ? ipolicy : nullptr;
  ClipToRange(&result.max_open_files, 64 + kNumNonTableCacheFiles, 50000);
  ClipToRange(&result.write_buffer_size, 64 << 10, 1 << 30);
  ClipToRange(&result.max_file_size, 1 << 20, 1 << 30);
  ClipToRange(&result.block_size, 1 << 10, 4 << 20);
  ClipToRange(&result.leveling_ratio, 2, 100);
  ClipToRange(&result.compaction_threads, 1, 16);
  ClipToRange(&result.max_subcompactions, 1, 16);
  ClipToRange(&result.num_offload_cards, 1, 16);
  if (result.max_manifest_file_size > 0) {
    ClipToRange(&result.max_manifest_file_size, size_t{4} << 10,
                size_t{1} << 30);
  }
  // Write-stall triggers: 0 means the classic LevelDB defaults. Keep
  // compaction trigger < slowdown < stop, whatever the caller passed.
  if (result.l0_slowdown_writes_trigger <= 0) {
    result.l0_slowdown_writes_trigger = kL0SlowdownWritesTrigger;
  }
  ClipToRange(&result.l0_slowdown_writes_trigger, kL0CompactionTrigger + 1,
              1000);
  if (result.l0_stop_writes_trigger <= 0) {
    result.l0_stop_writes_trigger = kL0StopWritesTrigger;
  }
  if (result.l0_stop_writes_trigger <= result.l0_slowdown_writes_trigger) {
    result.l0_stop_writes_trigger = result.l0_slowdown_writes_trigger + 1;
  }
  // The global memtable budget must fit one rotation (live + immutable
  // both at write_buffer_size) or every rotation would stop writers.
  if (result.total_write_buffer_size > 0 &&
      result.total_write_buffer_size < 2 * result.write_buffer_size) {
    result.total_write_buffer_size = 2 * result.write_buffer_size;
  }
  if (result.rate_limiter == nullptr && result.rate_limit_bytes_per_sec > 0) {
    // DBImpl detects the substitution (result != src) and owns it.
    result.rate_limiter =
        new RateLimiter(result.env, result.rate_limit_bytes_per_sec);
  }
  // A tiny trace ring would evict a span mid-compaction; 16 is enough
  // for eviction tests while keeping at least one job's spans visible.
  ClipToRange(&result.trace_ring_size, size_t{16}, size_t{1} << 20);
  ClipToRange(&result.stats_dump_period_sec, 0u, 86400u);
  // Sub-minute scrub cycles would just re-read the same tables in a
  // loop on small DBs; tests needing determinism use DB::ScrubNow().
  if (result.scrub_interval_seconds > 0) {
    ClipToRange(&result.scrub_interval_seconds, 60u, 86400u * 30u);
  }
  return result;
}

/// Maps the sanitized Options onto the WriteController's knobs. The
/// pending-bytes band is derived, not user-facing: debt starts at 64 MB
/// of backlog (or 16 memtables for small-buffer test configs, whichever
/// is larger) and saturates at 4x that, far above anything the tiered
/// shape accumulates in steady state.
static WriteControllerConfig WriteControllerConfigFor(
    const Options& options) {
  WriteControllerConfig config;
  config.l0_compaction_trigger = kL0CompactionTrigger;
  config.l0_slowdown_trigger = options.l0_slowdown_writes_trigger;
  config.l0_stop_trigger = options.l0_stop_writes_trigger;
  config.total_write_buffer_size = options.total_write_buffer_size;
  config.soft_pending_compaction_bytes =
      std::max<uint64_t>(64ull << 20, 16ull * options.write_buffer_size);
  config.hard_pending_compaction_bytes =
      4 * config.soft_pending_compaction_bytes;
  return config;
}

static int TableCacheSize(const Options& sanitized_options) {
  // Reserve a few files for other uses and give the rest to TableCache.
  return sanitized_options.max_open_files - kNumNonTableCacheFiles;
}

DBImpl::DBImpl(const Options& raw_options, const std::string& dbname)
    : env_(raw_options.env),
      internal_comparator_(raw_options.comparator),
      internal_filter_policy_(raw_options.filter_policy),
      options_(SanitizeOptions(dbname, &internal_comparator_,
                               &internal_filter_policy_, raw_options)),
      dbname_(dbname),
      table_cache_(
          new TableCache(dbname_, options_, TableCacheSize(options_))),
      owned_cpu_executor_(NewCpuCompactionExecutor()),
      primary_executor_(raw_options.compaction_executor != nullptr
                            ? raw_options.compaction_executor
                            : owned_cpu_executor_.get()),
      owned_metrics_(raw_options.metrics_registry != nullptr
                         ? nullptr
                         : new obs::MetricsRegistry),
      metrics_(raw_options.metrics_registry != nullptr
                   ? raw_options.metrics_registry
                   : owned_metrics_.get()),
      trace_(options_.trace_ring_size),
      notifier_(options_.listeners),
      shutting_down_(false),
      background_work_finished_signal_(&mutex_),
      mem_(nullptr),
      imm_(nullptr),
      has_imm_(false),
      logfile_(nullptr),
      logfile_number_(0),
      log_(nullptr),
      seed_(0),
      tmp_batch_(new WriteBatch),
      manual_compaction_(nullptr),
      versions_(new VersionSet(dbname_, &options_, table_cache_.get(),
                               &internal_comparator_)),
      compactions_offloaded_(0),
      compactions_on_cpu_(0),
      compactions_fallback_(0),
      write_controller_(WriteControllerConfigFor(options_)),
      owns_rate_limiter_(options_.rate_limiter != raw_options.rate_limiter) {
  trace_.set_sink(options_.trace_sink);
  scheduler_ = std::make_unique<CompactionScheduler>(
      env_, &background_work_finished_signal_, options_.compaction_threads,
      metrics_);
  // Pre-register the error/recovery and overload-protection counters so
  // every metrics snapshot (and the bench/metrics_schema.json gate) sees
  // them even at zero.
  for (const char* name :
       {"db.bg_error.soft", "db.bg_error.hard",
        "db.bg_error.retryable_ignored", "db.bg_error.resume_attempts",
        "db.bg_error.resumes", "recovery.opens", "recovery.micros",
        "wc.delayed_writes", "wc.delay_micros", "wc.stopped_writes",
        "wc.stop_micros", "wc.memory_stalls", "ratelimiter.bytes_through",
        "ratelimiter.throttled_bytes", "ratelimiter.wait_micros",
        "ratelimiter.requests", "obs.trace.dropped_events",
        "obs.stats_dump.count", "scrub.cycles", "scrub.files_verified",
        "scrub.bytes_verified", "scrub.corruptions_detected",
        "integrity.repairs", "integrity.repair_failures",
        "wal.corruption_records", "wal.corruption_bytes"}) {
    metrics_->counter(name);
  }
  metrics_->gauge("wc.state")->Set(0);
  metrics_->gauge("integrity.quarantined_files")->Set(0);
  // First periodic scrub fires one interval after open, not at open.
  last_scrub_micros_ = env_->NowMicros();
  table_cache_->SetMetricsRegistry(metrics_);
  // Interval baseline for GetProperty("fcae.stats"): the first read
  // reports everything since open.
  stats_window_ = metrics_->TakeSnapshot();
  if (options_.stats_dump_period_sec > 0) {
    stats_dumper_ = std::make_unique<obs::StatsDumper>(
        env_, uint64_t{options_.stats_dump_period_sec} * 1000 * 1000,
        [this](uint64_t seq) { DumpStats(seq); });
  }
}

DBImpl::~DBImpl() {
  // Stop the periodic stats dumper first: its callback takes mutex_
  // and reads versions_, so it must be fully out of the loop before
  // the scheduler drains and state is torn down below.
  if (stats_dumper_ != nullptr) {
    stats_dumper_->Stop();
  }

  // Wait for every dispatched flush, compaction, and resume worker to
  // drain.
  mutex_.Lock();
  shutting_down_.store(true, std::memory_order_release);
  while (scheduler_->HasBackgroundWork() || resume_scheduled_) {
    background_work_finished_signal_.Wait();
  }
  mutex_.Unlock();

  delete versions_;
  if (db_lock_ != nullptr) {
    // Shutdown path: the lock dies with the process either way.
    env_->UnlockFile(db_lock_).IgnoreError();
  }
  if (mem_ != nullptr) mem_->Unref();
  if (imm_ != nullptr) imm_->Unref();
  delete tmp_batch_;
  delete log_;
  delete logfile_;
  if (owns_rate_limiter_) delete options_.rate_limiter;
}

Status DBImpl::NewDB() {
  VersionEdit new_db;
  new_db.SetComparatorName(user_comparator()->Name());
  new_db.SetLogNumber(0);
  new_db.SetNextFile(2);
  new_db.SetLastSequence(0);

  const std::string manifest = DescriptorFileName(dbname_, 1);
  WritableFile* file;
  Status s = env_->NewWritableFile(manifest, &file);
  if (!s.ok()) {
    return s;
  }
  {
    log::Writer log(file);
    std::string record;
    new_db.EncodeTo(&record);
    s = log.AddRecord(record);
    if (s.ok()) {
      // fcae-check: allow(crash-point): pre-DB bootstrap, fresh-open retry
      s = file->Sync();
    }
    if (s.ok()) {
      s = file->Close();
    }
  }
  delete file;
  if (s.ok()) {
    // Make "CURRENT" file that points to the new manifest file.
    s = SetCurrentFile(env_, dbname_, 1);
  } else {
    // Best-effort: the failed bootstrap manifest is junk either way.
    env_->RemoveFile(manifest).IgnoreError();
  }
  return s;
}

void DBImpl::MaybeIgnoreError(Status* s) const {
  if (s->ok() || options_.paranoid_checks) {
    // No change needed.
  } else {
    *s = Status::OK();
  }
}

void DBImpl::RemoveObsoleteFiles() {
  // Requires mutex_ held.
  if (!bg_error_.ok()) {
    // After a background error, we don't know whether a new version may
    // or may not have been committed, so we cannot safely garbage
    // collect.
    return;
  }

  // Make a set of all of the live files.
  std::set<uint64_t> live = pending_outputs_;
  versions_->AddLiveFiles(&live);

  std::vector<std::string> filenames;
  // Best-effort listing: on failure we simply skip this GC round.
  env_->GetChildren(dbname_, &filenames).IgnoreError();
  uint64_t number;
  FileType type;
  std::vector<std::string> files_to_delete;
  for (std::string& filename : filenames) {
    if (ParseFileName(filename, &number, &type)) {
      bool keep = true;
      switch (type) {
        case FileType::kLogFile:
          keep = ((number >= versions_->LogNumber()));
          break;
        case FileType::kDescriptorFile:
          // Keep my manifest file, and any newer incarnations' (in case
          // there is a race that allows other incarnations).
          keep = (number >= versions_->ManifestFileNumber());
          break;
        case FileType::kTableFile:
          keep = (live.find(number) != live.end());
          break;
        case FileType::kTempFile:
          // Any temp files that are currently being written to must be
          // recorded in pending_outputs_, which is inserted into "live".
          keep = (live.find(number) != live.end());
          break;
        case FileType::kCurrentFile:
        case FileType::kDBLockFile:
        case FileType::kInfoLogFile:
          keep = true;
          break;
      }

      if (!keep) {
        files_to_delete.push_back(std::move(filename));
        if (type == FileType::kTableFile) {
          table_cache_->Evict(number);
        }
      }
    }
  }

  // While deleting all files unblock other threads. All files being
  // deleted have unique names which will not collide with newly created
  // files and are therefore safe to delete while allowing other threads
  // to proceed.
  mutex_.Unlock();
  for (const std::string& filename : files_to_delete) {
    // Best-effort: a file that survives this round is retried on the
    // next RemoveObsoleteFiles pass.
    env_->RemoveFile(dbname_ + "/" + filename).IgnoreError();
  }
  mutex_.Lock();
}

Status DBImpl::Recover(VersionEdit* edit, bool* save_manifest) {
  // Requires mutex_ held.

  // Ignore error from CreateDir since the creation of the DB is
  // committed only when the descriptor is created.
  env_->CreateDir(dbname_).IgnoreError();
  assert(db_lock_ == nullptr);
  Status lock_status = env_->LockFile(LockFileName(dbname_), &db_lock_);
  if (!lock_status.ok()) {
    return lock_status;
  }

  if (!env_->FileExists(CurrentFileName(dbname_))) {
    if (options_.create_if_missing) {
      Status s = NewDB();
      if (!s.ok()) {
        return s;
      }
    } else {
      return Status::InvalidArgument(
          dbname_, "does not exist (create_if_missing is false)");
    }
  } else {
    if (options_.error_if_exists) {
      return Status::InvalidArgument(dbname_,
                                     "exists (error_if_exists is true)");
    }
  }

  Status s = versions_->Recover(save_manifest);
  if (!s.ok()) {
    return s;
  }
  SequenceNumber max_sequence(0);

  // Recover from all newer log files than the ones named in the
  // descriptor (new log files may have been added by the previous
  // incarnation without registering them in the descriptor).
  const uint64_t min_log = versions_->LogNumber();
  std::vector<std::string> filenames;
  s = env_->GetChildren(dbname_, &filenames);
  if (!s.ok()) {
    return s;
  }
  std::set<uint64_t> expected;
  versions_->AddLiveFiles(&expected);
  uint64_t number;
  FileType type;
  std::vector<uint64_t> logs;
  for (size_t i = 0; i < filenames.size(); i++) {
    if (ParseFileName(filenames[i], &number, &type)) {
      expected.erase(number);
      if (type == FileType::kLogFile && (number >= min_log)) {
        logs.push_back(number);
      }
    }
  }
  if (!expected.empty()) {
    char buf[50];
    std::snprintf(buf, sizeof(buf), "%d missing files; e.g.",
                  static_cast<int>(expected.size()));
    return Status::Corruption(buf, TableFileName(dbname_, *(expected.begin())));
  }

  // Recover in the order in which the logs were generated.
  std::sort(logs.begin(), logs.end());
  for (size_t i = 0; i < logs.size(); i++) {
    s = RecoverLogFile(logs[i], (i == logs.size() - 1), save_manifest, edit,
                       &max_sequence);
    if (!s.ok()) {
      return s;
    }

    // The previous incarnation may not have written any MANIFEST
    // records after allocating this log number. So we manually update
    // the file number allocation counter in VersionSet.
    versions_->MarkFileNumberUsed(logs[i]);
  }

  if (versions_->LastSequence() < max_sequence) {
    versions_->SetLastSequence(max_sequence);
  }

  return Status::OK();
}

Status DBImpl::RecoverLogFile(uint64_t log_number, bool last_log,
                              bool* save_manifest, VersionEdit* edit,
                              SequenceNumber* max_sequence) {
  struct LogReporter : public log::Reader::Reporter {
    const char* fname;
    Status* status;  // null if options_.paranoid_checks==false
    obs::MetricsRegistry* metrics;
    void Corruption(size_t bytes, const Status& s) override {
      std::fprintf(stderr, "%s: dropping %d bytes; %s\n", fname,
                   static_cast<int>(bytes), s.ToString().c_str());
      // Replay drops are data loss the client already survived a crash
      // for; surface them so operators see how much the WAL gave up.
      metrics->counter("wal.corruption_records")->Increment();
      metrics->counter("wal.corruption_bytes")
          ->Increment(static_cast<uint64_t>(bytes));
      if (this->status != nullptr && this->status->ok()) *this->status = s;
    }
  };

  // Requires mutex_ held.

  // Open the log file.
  std::string fname = LogFileName(dbname_, log_number);
  SequentialFile* file;
  Status status = env_->NewSequentialFile(fname, &file);
  if (!status.ok()) {
    MaybeIgnoreError(&status);
    return status;
  }

  // Create the log reader.
  LogReporter reporter;
  reporter.fname = fname.c_str();
  reporter.status = (options_.paranoid_checks ? &status : nullptr);
  reporter.metrics = metrics_;
  // We intentionally make log::Reader do checksumming even if
  // paranoid_checks==false so that corruptions cause entire commits
  // to be skipped instead of propagating bad information.
  log::Reader reader(file, &reporter, true /*checksum*/);
  std::string scratch;
  Slice record;
  WriteBatch batch;
  int compactions = 0;
  MemTable* mem = nullptr;
  while (reader.ReadRecord(&record, &scratch) && status.ok()) {
    if (record.size() < 12) {
      reporter.Corruption(record.size(),
                          Status::Corruption("log record too small"));
      continue;
    }
    WriteBatchInternal::SetContents(&batch, record);

    if (mem == nullptr) {
      mem = new MemTable(internal_comparator_);
      mem->Ref();
    }
    status = WriteBatchInternal::InsertInto(&batch, mem);
    MaybeIgnoreError(&status);
    if (!status.ok()) {
      break;
    }
    const SequenceNumber last_seq = WriteBatchInternal::Sequence(&batch) +
                                    WriteBatchInternal::Count(&batch) - 1;
    if (last_seq > *max_sequence) {
      *max_sequence = last_seq;
    }

    if (mem->ApproximateMemoryUsage() > options_.write_buffer_size) {
      compactions++;
      *save_manifest = true;
      status = WriteLevel0Table(mem, edit, nullptr, nullptr, nullptr);
      mem->Unref();
      mem = nullptr;
      if (!status.ok()) {
        // Reflect errors immediately so that conditions like full
        // file-systems cause the DB::Open() to fail.
        break;
      }
    }
  }

  delete file;

  // If we flushed nothing and this is the last log, reuse it as the
  // current memtable? (LevelDB optionally reuses; we always switch to a
  // fresh log on open for simplicity.)
  if (status.ok() && mem != nullptr) {
    *save_manifest = true;
    status = WriteLevel0Table(mem, edit, nullptr, nullptr, nullptr);
  }
  if (mem != nullptr) mem->Unref();

  (void)last_log;
  (void)compactions;
  return status;
}

Status DBImpl::WriteLevel0Table(MemTable* mem, VersionEdit* edit, Version* base,
                                uint64_t* pending_file, int* reserved_level,
                                obs::FlushJobInfo* flush_info) {
  // Requires mutex_ held.
  const uint64_t start_micros = env_->NowMicros();
  FileMetaData meta;
  meta.number = versions_->NewFileNumber();
  pending_outputs_.insert(meta.number);
  Iterator* iter = mem->NewIterator();

  Status s;
  {
    mutex_.Unlock();
    s = BuildTable(dbname_, env_, options_, table_cache_.get(), iter, &meta);
    mutex_.Lock();
  }

  delete iter;
  if (pending_file != nullptr) {
    // Keep the file protected until the caller installs the edit: a
    // concurrent worker's RemoveObsoleteFiles (run while LogAndApply
    // drops the mutex for the MANIFEST write) must not delete it.
    *pending_file = meta.number;
  } else {
    pending_outputs_.erase(meta.number);
  }

  // Note that if file_size is zero, the file has been deleted and
  // should not be added to the manifest.
  int level = 0;
  if (s.ok() && meta.file_size > 0) {
    const Slice min_user_key = meta.smallest.user_key();
    const Slice max_user_key = meta.largest.user_key();
    if (base != nullptr) {
      level = base->PickLevelForMemTableOutput(min_user_key, max_user_key);
      if (reserved_level != nullptr) {
        // Never install into a level an in-flight compaction occupies:
        // the file set of a level>0 must stay sorted and disjoint. Fall
        // back toward L0 (always legal) and hold the reservation so a
        // new compaction cannot claim the level before we install.
        while (level > 0 && !scheduler_->FlushLevelFree(level)) {
          level--;
        }
        if (level > 0) {
          scheduler_->ReserveFlushLevel(level);
          *reserved_level = level;
        }
      }
    }
    edit->AddFile(level, meta);  // Carries the flush-time checksum.
  }

  CompactionStats stats;
  stats.micros = env_->NowMicros() - start_micros;
  stats.bytes_written = meta.file_size;
  stats_[level].Add(stats);

  metrics_->counter("db.flush.count")->Increment();
  metrics_->counter("db.flush.bytes_written")->Increment(meta.file_size);
  metrics_->histogram("db.flush.micros")
      ->Observe(static_cast<double>(stats.micros));
  if (flush_info != nullptr) {
    flush_info->output_file_number = meta.number;
    flush_info->output_bytes = meta.file_size;
    flush_info->micros = static_cast<uint64_t>(stats.micros);
  }
  return s;
}

void DBImpl::CompactMemTable() {
  // Requires mutex_ held.
  assert(imm_ != nullptr);

  // Flushes run on the dedicated flush lane (trace track 0, shared with
  // the picker); they never overlap each other.
  obs::SpanTimer flush_span(&trace_, "flush", "db", 0);

  obs::FlushJobInfo flush_info;
  flush_info.db_name = dbname_;
  NotifyFlushEvent(/*begin=*/true, flush_info);
  // NotifyFlushEvent dropped the mutex; the single flush lane keeps
  // imm_ set until this function clears it, so the flush target is
  // still valid after the reacquire.
  assert(imm_ != nullptr);

  // Save the contents of the memtable as a new Table.
  VersionEdit edit;
  Version* base = versions_->current();
  base->Ref();
  uint64_t pending_file = 0;
  int reserved_level = 0;
  Status s = WriteLevel0Table(imm_, &edit, base, &pending_file,
                              &reserved_level, &flush_info);
  base->Unref();

  if (s.ok() && shutting_down_.load(std::memory_order_acquire)) {
    s = Status::IOError("Deleting DB during memtable compaction");
  }

  // Replace immutable memtable with the generated Table.
  if (s.ok()) {
    edit.SetLogNumber(logfile_number_);  // Earlier logs no longer needed.
    s = LogAndApplyLocked(&edit);
  }

  // The table is live (or dead) either way now; drop its protections.
  if (reserved_level > 0) {
    scheduler_->ReleaseFlushLevel(reserved_level);
  }
  if (pending_file != 0) {
    pending_outputs_.erase(pending_file);
  }

  if (s.ok()) {
    // Commit to the new state.
    imm_->Unref();
    imm_ = nullptr;
    has_imm_.store(false, std::memory_order_release);
    RemoveObsoleteFiles();
  } else {
    RecordBackgroundError(s);
  }

  flush_info.status = s;
  NotifyFlushEvent(/*begin=*/false, flush_info);
}

void DBImpl::TEST_CompactRange(int level, const Slice* begin,
                               const Slice* end) {
  assert(level >= 0);
  assert(level + 1 < kNumLevels);

  InternalKey begin_storage, end_storage;

  ManualCompaction manual;
  manual.level = level;
  manual.done = false;
  manual.in_progress = false;
  if (begin == nullptr) {
    manual.begin = nullptr;
  } else {
    begin_storage = InternalKey(*begin, kMaxSequenceNumber, kValueTypeForSeek);
    manual.begin = &begin_storage;
  }
  if (end == nullptr) {
    manual.end = nullptr;
  } else {
    end_storage = InternalKey(*end, 0, static_cast<ValueType>(0));
    manual.end = &end_storage;
  }

  MutexLock l(&mutex_);
  while (!manual.done && !shutting_down_.load(std::memory_order_acquire) &&
         bg_error_.ok()) {
    if (manual_compaction_ == nullptr) {  // Idle.
      manual_compaction_ = &manual;
      MaybeScheduleCompaction();
    } else {  // Running either my compaction or another compaction.
      background_work_finished_signal_.Wait();
    }
  }
  // Finish the in-flight pass in the case where a worker still holds
  // `manual` (it clears in_progress — and the slot — when it is done
  // touching the struct).
  while (manual_compaction_ == &manual && manual.in_progress) {
    background_work_finished_signal_.Wait();
  }
  if (manual_compaction_ == &manual) {
    // Cancel my manual compaction since we aborted early for some reason.
    manual_compaction_ = nullptr;
  }
}

Status DBImpl::TEST_CompactMemTable() {
  // nullptr batch means just wait for earlier writes to be done.
  Status s = Write(WriteOptions(), nullptr);
  if (s.ok()) {
    // Wait until the compaction completes.
    MutexLock l(&mutex_);
    while (imm_ != nullptr && bg_error_.ok()) {
      background_work_finished_signal_.Wait();
    }
    if (imm_ != nullptr) {
      s = bg_error_;
    }
  }
  return s;
}

void DBImpl::TEST_RemoveObsoleteFiles() {
  MutexLock l(&mutex_);
  RemoveObsoleteFiles();
}

DBImpl::BgErrorSeverity DBImpl::ClassifyBackgroundError(const Status& s) {
  if (s.ok()) {
    return BgErrorSeverity::kNone;
  }
  // Corruption-class failures poison state no retry can repair; treat
  // everything else (IOError and friends) as plausibly transient.
  if (s.IsCorruption() || s.IsNotSupported() || s.IsInvalidArgument() ||
      s.IsNotFound()) {
    return BgErrorSeverity::kHard;
  }
  return BgErrorSeverity::kSoft;
}

void DBImpl::RecordBackgroundError(const Status& s) {
  // Requires mutex_ held.
  if (s.ok()) {
    return;
  }
  if (s.IsBusy() || s.IsDeviceLost()) {
    // Transient device conditions belong to the offload path: its
    // retry/fallback machinery owns them, and surfacing them as a
    // sticky background error would wedge writers over a busy card.
    metrics_->counter("db.bg_error.retryable_ignored")->Increment();
    return;
  }
  const BgErrorSeverity severity = ClassifyBackgroundError(s);
  const bool escalates = severity == BgErrorSeverity::kHard &&
                         bg_error_severity_ != BgErrorSeverity::kHard;
  if (bg_error_.ok() || escalates) {
    bg_error_ = s;
    bg_error_severity_ = severity;
    metrics_->counter(severity == BgErrorSeverity::kHard ? "db.bg_error.hard"
                                                         : "db.bg_error.soft")
        ->Increment();
    trace_.RecordInstant(
        "bg_error", "db", obs::TraceNowMicros(), 0,
        {{"status", obs::TraceRecorder::Quote(s.ToString())},
         {"severity", obs::TraceRecorder::Quote(
                          severity == BgErrorSeverity::kHard ? "hard"
                                                             : "soft")}});
    background_work_finished_signal_.SignalAll();
    NotifyBackgroundErrorEvent(s, severity == BgErrorSeverity::kHard);
  }
  if (bg_error_severity_ == BgErrorSeverity::kSoft) {
    ScheduleAutoResume();
  }
}

namespace {
// Auto-resume backoff: 2 ms doubling per attempt, capped at 64 ms, for
// at most 5 automatic attempts (DB::Resume() is never budget-limited).
constexpr int kMaxAutoResumeAttempts = 5;
constexpr int kResumeBackoffBaseMicros = 2000;
constexpr int kResumeBackoffCapMicros = 64000;
}  // namespace

void DBImpl::ScheduleAutoResume() {
  // Requires mutex_ held.
  if (shutting_down_.load(std::memory_order_acquire) || resume_scheduled_ ||
      resume_attempts_ >= kMaxAutoResumeAttempts) {
    return;
  }
  resume_scheduled_ = true;
  env_->SchedulePool("fcae-resume", 1, &DBImpl::BGResumeWork, this);
}

void DBImpl::BGResumeWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundResumeCall();
}

void DBImpl::BackgroundResumeCall() {
  int attempt;
  {
    MutexLock l(&mutex_);
    attempt = resume_attempts_;
  }
  int backoff = kResumeBackoffBaseMicros << std::min(attempt, 5);
  backoff = std::min(backoff, kResumeBackoffCapMicros);
  env_->SleepForMicroseconds(backoff);

  MutexLock l(&mutex_);
  resume_scheduled_ = false;
  if (!shutting_down_.load(std::memory_order_acquire) && !bg_error_.ok() &&
      bg_error_severity_ == BgErrorSeverity::kSoft &&
      resume_attempts_ < kMaxAutoResumeAttempts) {
    resume_attempts_++;
    if (!ResumeLocked().ok()) {
      ScheduleAutoResume();  // Try again with a longer backoff.
    }
  }
  background_work_finished_signal_.SignalAll();
}

Status DBImpl::ResumeLocked() {
  // Requires mutex_ held; only reached with a soft error set.
  metrics_->counter("db.bg_error.resume_attempts")->Increment();

  // Prove the storage healthy by durably installing a fresh manifest:
  // the failed incarnation may have torn the old descriptor's tail.
  versions_->ForceNewManifest();
  VersionEdit edit;
  Status s = LogAndApplyLocked(&edit);

  // Rotate the WAL for the same reason — but only when no writer holds
  // the front-writer role (log_/logfile_ are appended to without the
  // mutex under that role). The retired log stays on disk until the
  // next flush advances the version's log number, so recovery still
  // replays it.
  if (s.ok() && writers_.empty()) {
    const uint64_t new_log_number = versions_->NewFileNumber();
    WritableFile* lfile = nullptr;
    Status log_status =
        env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
    if (log_status.ok()) {
      // fcae-check: allow(crash-point): resume-only edge, unreachable in matrix
      log_status = env_->SyncDir(dbname_);
    }
    if (log_status.ok()) {
      delete log_;
      delete logfile_;
      logfile_ = lfile;
      logfile_number_ = new_log_number;
      log_ = new log::Writer(lfile);
    } else {
      delete lfile;
      versions_->ReuseFileNumber(new_log_number);
      s = log_status;
    }
  }

  if (s.ok()) {
    bg_error_ = Status::OK();
    bg_error_severity_ = BgErrorSeverity::kNone;
    resume_attempts_ = 0;
    metrics_->counter("db.bg_error.resumes")->Increment();
    trace_.RecordInstant("bg_resume", "db", obs::TraceNowMicros(), 0, {});
    // Reclaim whatever the failed flush/compaction left behind (orphan
    // tables, temp files, stale logs) and restart background work.
    RemoveObsoleteFiles();
    MaybeScheduleCompaction();
    background_work_finished_signal_.SignalAll();
    NotifyResumeEvent();
  }
  return s;
}

Status DBImpl::Resume() {
  MutexLock l(&mutex_);
  if (bg_error_.ok()) {
    return Status::OK();
  }
  if (bg_error_severity_ == BgErrorSeverity::kHard) {
    return bg_error_;
  }
  return ResumeLocked();
}

bool DBImpl::HasClaimableCompaction() {
  // Requires mutex_ held.
  const uint32_t busy = scheduler_->busy_levels();
  if (manual_compaction_ != nullptr && !manual_compaction_->done &&
      !manual_compaction_->in_progress &&
      scheduler_->LevelsFree(manual_compaction_->level)) {
    return true;
  }
  return versions_->NeedsCompaction(busy);
}

void DBImpl::MaybeScheduleCompaction() {
  // Requires mutex_ held.
  if (shutting_down_.load(std::memory_order_acquire)) {
    return;  // DB is being deleted; no more background work.
  }
  if (!bg_error_.ok()) {
    return;  // Already got an error; no more changes.
  }

  // Flush lane: at most one memtable flush in flight, on its own thread
  // so compaction workers never delay it (the paper's Fig. 6 priority).
  if (imm_ != nullptr && !scheduler_->flush_scheduled()) {
    scheduler_->ScheduleFlush(&DBImpl::BGFlushWork, this);
  }

  // Scrub lane: start an integrity cycle opportunistically once the
  // configured interval has elapsed. There is no dedicated timer
  // thread — any background activity (writes, finished jobs) reaches
  // this point often enough for a wall-clock check; deterministic
  // callers use DB::ScrubNow() instead.
  if (options_.scrub_interval_seconds > 0 && !scheduler_->scrub_scheduled() &&
      !scrub_cycle_active_) {
    const uint64_t interval_micros =
        uint64_t{options_.scrub_interval_seconds} * 1000000;
    if (env_->NowMicros() - last_scrub_micros_ >= interval_micros) {
      scheduler_->ScheduleScrub(&DBImpl::BGScrubWork, this);
    }
  }

  // Compaction workers: dispatch only as many as could actually claim a
  // disjoint level pair right now. Idle already-scheduled workers count
  // against the demand so a burst of triggers does not stampede the
  // pool. Over-estimating by one (e.g. a manual pass that ends up
  // empty) is harmless: the worker finds nothing and exits. A manual
  // pass whose level pair is still busy is NOT claimable yet — counting
  // it would make every finishing worker redispatch into a futile pick
  // for as long as the blocking job runs (the finisher's own
  // MaybeScheduleCompaction re-counts it once the levels free up).
  int claimable =
      versions_->CountClaimableCompactions(scheduler_->busy_levels());
  if (manual_compaction_ != nullptr && !manual_compaction_->done &&
      !manual_compaction_->in_progress &&
      scheduler_->LevelsFree(manual_compaction_->level)) {
    claimable++;
  }
  while (scheduler_->CanScheduleCompaction() &&
         scheduler_->idle_scheduled_workers() < claimable) {
    scheduler_->ScheduleCompaction(&DBImpl::BGCompactionWork, this);
  }
}

void DBImpl::BGFlushWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundFlushCall();
}

void DBImpl::BGCompactionWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundCompactionCall();
}

void DBImpl::BGScrubWork(void* db) {
  reinterpret_cast<DBImpl*>(db)->BackgroundScrubCall();
}

void DBImpl::BackgroundScrubCall() {
  MutexLock l(&mutex_);
  assert(scheduler_->scrub_scheduled());
  if (shutting_down_.load(std::memory_order_acquire)) {
    // No more background work when shutting down.
  } else if (!bg_error_.ok()) {
    // No more background work after a background error.
  } else if (!scrub_cycle_active_) {
    // Environmental cycle errors went through RecordBackgroundError
    // already; nothing extra to do with the return here.
    RunScrubCycle().IgnoreError();
  }
  scheduler_->ScrubFinished();
  PumpRateLimiterMetrics();
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

Status DBImpl::ScrubNow() {
  MutexLock l(&mutex_);
  // One cycle at a time: wait out a background cycle (or another
  // ScrubNow) rather than interleaving two walks over the same tables.
  while (scheduler_->scrub_scheduled() || scrub_cycle_active_) {
    if (shutting_down_.load(std::memory_order_acquire)) {
      return Status::IOError("Shutting down");
    }
    background_work_finished_signal_.Wait();
  }
  if (shutting_down_.load(std::memory_order_acquire)) {
    return Status::IOError("Shutting down");
  }
  if (!bg_error_.ok() && bg_error_severity_ == BgErrorSeverity::kHard) {
    return bg_error_;
  }
  return RunScrubCycle();
}

bool DBImpl::TableIsLive(uint64_t number) {
  // Requires mutex_ held.
  Version* v = versions_->current();
  for (int level = 0; level < kNumLevels; level++) {
    for (const FileMetaData* f : v->files(level)) {
      if (f->number == number) {
        return true;
      }
    }
  }
  return false;
}

Status DBImpl::RunScrubCycle() {
  // Requires mutex_ held; drops it around all file I/O.
  assert(!scrub_cycle_active_);
  scrub_cycle_active_ = true;
  const uint64_t start_micros = env_->NowMicros();
  last_scrub_micros_ = start_micros;

  // Leftover quarantined files first: a compaction-detected corruption
  // whose repair could not run yet, or a repair that failed last cycle.
  // Repair is the only way out of quarantine.
  for (uint64_t number : versions_->quarantine()->Snapshot()) {
    if (shutting_down_.load(std::memory_order_acquire)) break;
    RepairQuarantinedFile(number);
  }

  Version* base = versions_->current();
  base->Ref();
  std::vector<ScrubItem> items = IntegrityScrubber::BuildWorkList(base);
  base->Unref();

  obs::ScrubCycleInfo cycle;
  Status cycle_status;
  for (const ScrubItem& item : items) {
    if (shutting_down_.load(std::memory_order_acquire) || !bg_error_.ok()) {
      break;
    }
    if (versions_->quarantine()->Contains(item.number)) {
      continue;  // A repair already owns it.
    }
    uint64_t bytes = 0;
    Status s;
    {
      mutex_.Unlock();
      s = IntegrityScrubber::VerifyItem(env_, options_, dbname_,
                                        &internal_comparator_,
                                        options_.rate_limiter, item, &bytes);
      mutex_.Lock();
    }
    if (!s.ok() && !TableIsLive(item.number)) {
      continue;  // Compacted away while the mutex was down; stale item.
    }
    cycle.files_scanned++;
    cycle.bytes_scanned += bytes;
    metrics_->counter("scrub.files_verified")->Increment();
    metrics_->counter("scrub.bytes_verified")->Increment(bytes);
    if (s.IsCorruption()) {
      cycle.corruptions_found++;
      if (HandleCorruptTable(item.number, "scrub", s)) {
        RepairQuarantinedFile(item.number);
      }
    } else if (!s.ok()) {
      // Environmental (I/O) failure on a live table: end the cycle and
      // let the error machinery decide (soft errors auto-resume).
      cycle_status = s;
      RecordBackgroundError(s);
      break;
    }
  }

  cycle.micros = env_->NowMicros() - start_micros;
  metrics_->counter("scrub.cycles")->Increment();
  trace_.RecordInstant(
      "scrub_cycle", "db", obs::TraceNowMicros(), 0,
      {{"files", std::to_string(cycle.files_scanned)},
       {"corruptions", std::to_string(cycle.corruptions_found)}});
  if (notifier_.active()) {
    const obs::ScrubCycleInfo info = cycle;
    mutex_.Unlock();
    notifier_.NotifyScrubCompleted(info);
    mutex_.Lock();
  }
  scrub_cycle_active_ = false;
  background_work_finished_signal_.SignalAll();
  return cycle_status;
}

bool DBImpl::HandleCorruptTable(uint64_t number, const char* source,
                                const Status& s) {
  // Requires mutex_ held; drops it for listener callbacks.
  if (versions_->quarantine()->Contains(number)) {
    return false;  // Already contained; a repair owns it.
  }
  // Locate the file's current level — it may have trivially moved since
  // detection — and confirm it is still live.
  int level = -1;
  uint64_t file_size = 0;
  Version* v = versions_->current();
  for (int l = 0; l < kNumLevels && level < 0; l++) {
    for (const FileMetaData* f : v->files(l)) {
      if (f->number == number) {
        level = l;
        file_size = f->file_size;
        break;
      }
    }
  }
  if (level < 0) {
    return false;  // Compacted away in the meantime; nothing to contain.
  }
  versions_->quarantine()->Add(number);
  metrics_->counter("scrub.corruptions_detected")->Increment();
  metrics_->gauge("integrity.quarantined_files")
      ->Set(static_cast<int64_t>(versions_->quarantine()->size()));
  // Drop any cached handle so no reader keeps serving blocks cached
  // from the bad bytes before detection.
  table_cache_->Evict(number);
  trace_.RecordInstant("corruption", "db", obs::TraceNowMicros(), 0,
                       {{"file", std::to_string(number)},
                        {"level", std::to_string(level)},
                        {"source", obs::TraceRecorder::Quote(source)}});
  if (notifier_.active()) {
    obs::CorruptionInfo info;
    info.file_number = number;
    info.level = level;
    info.file_size = file_size;
    info.source = source;
    info.status = s;
    obs::FileQuarantineInfo qinfo;
    qinfo.file_number = number;
    qinfo.level = level;
    mutex_.Unlock();
    notifier_.NotifyCorruptionDetected(info);
    notifier_.NotifyFileQuarantined(qinfo);
    mutex_.Lock();
  }
  return true;
}

void DBImpl::RepairQuarantinedFile(uint64_t number) {
  // Requires mutex_ held; drops it during salvage I/O.
  if (!versions_->quarantine()->Contains(number)) {
    return;
  }
  // Locate the live entry; a file no longer in the current version has
  // nothing left to repair, so just lift the quarantine.
  int level = -1;
  FileMetaData meta;
  {
    Version* v = versions_->current();
    for (int l = 0; l < kNumLevels && level < 0; l++) {
      for (const FileMetaData* f : v->files(l)) {
        if (f->number == number) {
          level = l;
          meta = *f;
          break;
        }
      }
    }
  }
  if (level < 0) {
    versions_->quarantine()->Remove(number);
    metrics_->gauge("integrity.quarantined_files")
        ->Set(static_cast<int64_t>(versions_->quarantine()->size()));
    return;
  }

  // Claim the level: no concurrent compaction, flush install, or other
  // repair may add or remove level-`level` files while the swap edit is
  // in flight. Whoever holds the level signals when it finishes.
  while (!scheduler_->RepairLevelFree(level)) {
    if (shutting_down_.load(std::memory_order_acquire)) {
      return;  // Stays quarantined; reads keep routing around it.
    }
    background_work_finished_signal_.Wait();
  }
  scheduler_->BeginRepair(level);

  const uint64_t salvage_number = versions_->NewFileNumber();
  pending_outputs_.insert(salvage_number);
  const std::string src = TableFileName(dbname_, number);
  const std::string dst = TableFileName(dbname_, salvage_number);

  SalvageResult salvage;
  Status s;
  {
    mutex_.Unlock();
    s = SalvageTable(env_, options_, src, meta.file_size, dst, &salvage);
    mutex_.Lock();
  }

  Status install;
  bool manifest_attempted = false;
  if (s.ok() || s.IsCorruption()) {
    // Either some blocks were rescued (swap in the salvage table) or
    // the source is a total loss — unreadable footer/index — and plain
    // removal is the repair. Both drop the corrupt file from the
    // version in one atomic edit.
    VersionEdit edit;
    edit.RemoveFile(level, number);
    if (s.ok() && !salvage.empty) {
      FileMetaData f;
      f.number = salvage_number;
      f.file_size = salvage.file_size;
      f.smallest.DecodeFrom(salvage.smallest);
      f.largest.DecodeFrom(salvage.largest);
      f.file_checksum = salvage.file_checksum;
      f.has_file_checksum = true;
      edit.AddFile(level, f);
    }
    manifest_attempted = true;
    install = LogAndApplyLocked(&edit);
  } else {
    install = s;  // Environmental failure; retry on a later cycle.
  }

  pending_outputs_.erase(salvage_number);
  if (install.ok()) {
    versions_->quarantine()->Remove(number);
    metrics_->gauge("integrity.quarantined_files")
        ->Set(static_cast<int64_t>(versions_->quarantine()->size()));
    metrics_->counter("integrity.repairs")->Increment();
    trace_.RecordInstant(
        "repair", "db", obs::TraceNowMicros(), 0,
        {{"file", std::to_string(number)},
         {"level", std::to_string(level)},
         {"salvaged_entries", std::to_string(salvage.entries)},
         {"dropped_blocks", std::to_string(salvage.dropped_blocks)}});
    // The corrupt physical file is unreferenced now; reclaim it.
    RemoveObsoleteFiles();
  } else {
    metrics_->counter("integrity.repair_failures")->Increment();
    // Scrap any partial salvage output; the quarantine stays in place
    // so reads keep routing around the damage.
    mutex_.Unlock();
    env_->RemoveFile(dst).IgnoreError();
    mutex_.Lock();
    if (manifest_attempted) {
      // A failed MANIFEST write is beyond containment's remit.
      RecordBackgroundError(install);
    }
  }
  scheduler_->EndRepair(level);
  background_work_finished_signal_.SignalAll();
}

void DBImpl::ContainCompactionCorruption(Compaction* c, const Status& s,
                                         std::vector<uint64_t>* to_repair) {
  // Requires mutex_ held; drops it around verification I/O. Snapshot
  // the input list first — the file metadata stays pinned by the
  // compaction's input version, but verification releases the mutex.
  std::vector<ScrubItem> items;
  for (int which = 0; which < 2; which++) {
    for (const FileMetaData* f : c->inputs(which)) {
      ScrubItem item;
      item.level = c->level() + which;
      item.number = f->number;
      item.file_size = f->file_size;
      item.has_file_checksum = f->has_file_checksum;
      item.file_checksum = f->file_checksum;
      item.smallest = f->smallest.Encode().ToString();
      item.largest = f->largest.Encode().ToString();
      items.push_back(std::move(item));
    }
  }
  bool any_corrupt = false;
  for (const ScrubItem& item : items) {
    if (shutting_down_.load(std::memory_order_acquire)) return;
    Status vs;
    {
      mutex_.Unlock();
      vs = IntegrityScrubber::VerifyItem(env_, options_, dbname_,
                                         &internal_comparator_,
                                         options_.rate_limiter, item, nullptr);
      mutex_.Lock();
    }
    if (vs.IsCorruption()) {
      any_corrupt = true;
      if (HandleCorruptTable(item.number, "compaction", vs)) {
        to_repair->push_back(item.number);
      }
    }
  }
  if (!any_corrupt) {
    // No input failed re-verification: the corruption came from
    // somewhere containment cannot own (e.g. a torn fresh output).
    // Fall back to the classic sticky background error.
    RecordBackgroundError(s);
  }
}

void DBImpl::BackgroundFlushCall() {
  MutexLock l(&mutex_);
  assert(scheduler_->flush_scheduled());
  if (shutting_down_.load(std::memory_order_acquire)) {
    // No more background work when shutting down.
  } else if (!bg_error_.ok()) {
    // No more background work after a background error.
  } else if (imm_ != nullptr) {
    CompactMemTable();
  }
  scheduler_->FlushFinished();
  PumpRateLimiterMetrics();

  // The flush may have pushed level-0 over its trigger.
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

void DBImpl::BackgroundCompactionCall() {
  MutexLock l(&mutex_);
  assert(scheduler_->scheduled_workers() > 0);
  if (shutting_down_.load(std::memory_order_acquire)) {
    // No more background work when shutting down.
  } else if (!bg_error_.ok()) {
    // No more background work after a background error.
  } else {
    BackgroundCompaction();
  }
  scheduler_->WorkerFinished();
  PumpRateLimiterMetrics();

  // The finished compaction may have produced too many files in a
  // level, or unblocked a level pair another job was excluded from.
  MaybeScheduleCompaction();
  background_work_finished_signal_.SignalAll();
}

void DBImpl::BackgroundCompaction() {
  // Requires mutex_ held.

  Compaction* c = nullptr;
  bool is_manual = false;
  ManualCompaction* m = nullptr;
  InternalKey manual_end;
  {
    obs::SpanTimer pick_span(&trace_, "pick", "db", 0);
    // A manual pass is claimed by exactly one worker (in_progress) and
    // only when its level pair is free of automatic jobs.
    if (manual_compaction_ != nullptr && !manual_compaction_->done &&
        !manual_compaction_->in_progress &&
        scheduler_->LevelsFree(manual_compaction_->level)) {
      is_manual = true;
      m = manual_compaction_;
      m->in_progress = true;
      c = versions_->CompactRange(m->level, m->begin, m->end);
      m->done = (c == nullptr);
      if (c != nullptr) {
        manual_end = c->input(0, c->num_input_files(0) - 1)->largest;
      }
    } else {
      c = versions_->PickCompaction(scheduler_->busy_levels());
    }
    if (c != nullptr) {
      pick_span.AddArg("level", std::to_string(c->level()));
      pick_span.AddArg("inputs",
                       std::to_string(c->num_input_files(0) +
                                      c->num_input_files(1)));
    }
  }

  Status status;
  std::vector<uint64_t> to_repair;
  if (c == nullptr) {
    // Nothing claimable right now (other jobs own the hot levels).
  } else {
    // Claim the level pair for the duration of the job; concurrent
    // workers pick around it and flushes avoid installing into it.
    scheduler_->BeginCompaction(c->level());
    if (!is_manual && c->IsTrivialMove()) {
      // Move file to next level.
      assert(c->num_input_files(0) == 1);
      metrics_->counter("db.compaction.trivial_moves")->Increment();
      FileMetaData* f = c->input(0, 0);
      c->edit()->RemoveFile(c->level(), f->number);
      c->edit()->AddFile(c->level() + 1, *f);  // Checksum moves with it.
      status = LogAndApplyLocked(c->edit());
      if (!status.ok()) {
        RecordBackgroundError(status);
      }
    } else {
      status = DoCompactionWork(c);
      if (status.IsCorruption() &&
          !shutting_down_.load(std::memory_order_acquire)) {
        // The merge tripped over a damaged input. Contain instead of
        // poisoning the DB with a sticky hard error: quarantine the
        // corrupt inputs and repair them below, once this job's level
        // claim is released (the repair needs to claim the level too).
        ContainCompactionCorruption(c, status, &to_repair);
        status = Status::OK();
      } else if (!status.ok()) {
        RecordBackgroundError(status);
      }
      c->ReleaseInputs();
      RemoveObsoleteFiles();
    }
    scheduler_->EndCompaction(c->level());
  }
  delete c;

  for (uint64_t number : to_repair) {
    RepairQuarantinedFile(number);
  }

  if (status.ok()) {
    // Done.
  } else if (shutting_down_.load(std::memory_order_acquire)) {
    // Ignore compaction errors found during shutting down.
  } else {
    std::fprintf(stderr, "Compaction error: %s\n", status.ToString().c_str());
  }

  if (is_manual) {
    if (!status.ok()) {
      m->done = true;
    }
    if (!m->done) {
      // We only compacted part of the requested range. Update *m to the
      // range that is left to be compacted.
      m->tmp_storage = manual_end;
      m->begin = &m->tmp_storage;
    }
    m->in_progress = false;
    if (manual_compaction_ == m) {
      manual_compaction_ = nullptr;
    }
  }
}

Status DBImpl::LogAndApplyLocked(VersionEdit* edit) {
  // Requires mutex_ held. LogAndApply releases the mutex while it
  // writes the MANIFEST; the scheduler's manifest lock keeps a second
  // job from interleaving records in that window.
  scheduler_->LockManifest();
  Status s = versions_->LogAndApply(edit, &mutex_);
  scheduler_->UnlockManifest();
  return s;
}

namespace {

// Restricts a merged compaction input iterator to the user-key range
// (lower, upper] so key-disjoint shards can run concurrently. Bounds
// are user keys, so every version of a user key lands in exactly one
// shard and sequence-based drop decisions stay local to that shard.
// Executors consume their input strictly forward; the backward API is
// deliberately unimplemented.
class ShardBoundIterator : public Iterator {
 public:
  ShardBoundIterator(Iterator* base, const Comparator* ucmp, bool has_lower,
                     const std::string& lower, bool has_upper,
                     const std::string& upper)
      : base_(base),
        ucmp_(ucmp),
        has_lower_(has_lower),
        lower_(lower),
        has_upper_(has_upper),
        upper_(upper) {}
  ~ShardBoundIterator() override { delete base_; }

  bool Valid() const override { return valid_; }
  void SeekToFirst() override {
    if (has_lower_) {
      // (seq 0, type 0) sorts after every real entry of lower_ in
      // internal-key order, making it the exclusive lower bound.
      InternalKey target(Slice(lower_), 0, static_cast<ValueType>(0));
      base_->Seek(target.Encode());
    } else {
      base_->SeekToFirst();
    }
    Update();
  }
  void Seek(const Slice& target) override {
    base_->Seek(target);
    Update();
  }
  void Next() override {
    base_->Next();
    Update();
  }
  void SeekToLast() override { valid_ = false; }  // Forward-only.
  void Prev() override { valid_ = false; }        // Forward-only.
  Slice key() const override { return base_->key(); }
  Slice value() const override { return base_->value(); }
  Status status() const override { return base_->status(); }

 private:
  void Update() {
    valid_ = base_->Valid() &&
             !(has_upper_ && ucmp_->Compare(ExtractUserKey(base_->key()),
                                            Slice(upper_)) > 0);
  }

  Iterator* const base_;
  const Comparator* const ucmp_;
  const bool has_lower_;
  const std::string lower_;
  const bool has_upper_;
  const std::string upper_;
  bool valid_ = false;
};

// Countdown the sharding driver waits on while shard threads finish.
struct ShardLatch {
  explicit ShardLatch(int n) : cv(&mu), remaining(n) {}
  Mutex mu;
  CondVar cv;
  int remaining GUARDED_BY(mu);
};

}  // namespace

// Everything one sub-compaction needs, plus everything it produced.
// Shard-local while RunCompactionShard executes (no lock needed); the
// driver only reads the result fields after joining the shard.
struct DBImpl::CompactionShard {
  DBImpl* db = nullptr;
  ShardLatch* latch = nullptr;
  CompactionJob job;
  // Whether this shard may use the device executor: always for an
  // unsharded job; for key-bounded shards only when several offload
  // cards are configured (the executor trims its staged blocks to the
  // shard's range, so shards spread across cards without duplication).
  bool device_eligible = false;
  bool has_lower = false;
  bool has_upper = false;
  std::string lower, upper;  // User-key bounds; shard covers (lower, upper].
  std::vector<uint64_t> allocated;  // File numbers handed to this shard.
  std::vector<CompactionOutput> outputs;
  CompactionExecStats stats;
  Status status;
  bool fell_back = false;
};

void DBImpl::ShardThreadMain(void* arg) {
  CompactionShard* shard = reinterpret_cast<CompactionShard*>(arg);
  shard->db->RunCompactionShard(shard);
  MutexLock lock(&shard->latch->mu);
  shard->latch->remaining--;
  shard->latch->cv.Signal();
}

void DBImpl::RunCompactionShard(CompactionShard* shard) {
  // Runs without mutex_: everything it touches is shard-local or
  // internally synchronized; the job closures reacquire mutex_ briefly.
  CompactionExecutor* executor = owned_cpu_executor_.get();
  if (shard->device_eligible && primary_executor_->CanExecute(shard->job)) {
    executor = primary_executor_;
  }
  // Paper Section VI-A: when the input count exceeds the device's N (or
  // the job is a key-bounded shard on a single-card setup), the task is
  // processed by software.

  const uint64_t start_micros = env_->NowMicros();
  shard->status = executor->Execute(shard->job, &shard->outputs, &shard->stats);
  if (!shard->status.ok() && executor != owned_cpu_executor_.get() &&
      !shutting_down_.load(std::memory_order_acquire)) {
    // The device path failed even after its own retries (card dropped,
    // deadline exhausted, persistent corruption). A device fault must
    // never fail a compaction software could do: scrub the partial
    // outputs and rerun the whole job on the CPU executor.
    std::vector<uint64_t> abandoned;
    {
      MutexLock lock(&mutex_);
      abandoned.swap(shard->allocated);
      for (uint64_t number : abandoned) {
        pending_outputs_.erase(number);
      }
    }
    for (uint64_t number : abandoned) {
      // Best effort; survivors are reclaimed at open.
      env_->RemoveFile(TableFileName(dbname_, number)).IgnoreError();
    }
    shard->outputs.clear();
    trace_.RecordInstant(
        "cpu_fallback", "db", obs::TraceNowMicros(), shard->job.trace_tid,
        {{"reason", obs::TraceRecorder::Quote(shard->status.ToString())}});
    if (notifier_.active()) {
      obs::OffloadFallbackInfo fallback_info;
      fallback_info.sticky = shard->status.IsDeviceLost();
      fallback_info.reason = shard->status.ToString();
      notifier_.NotifyOffloadFallback(fallback_info);
    }
    FCAE_PERF_COUNT(offload_cpu_fallbacks, 1);

    // Keep the failed attempt's fault accounting visible in the DB
    // totals, but take timing/volume from the run that succeeded.
    const CompactionExecStats device_stats = shard->stats;
    shard->stats = CompactionExecStats();
    {
      FCAE_PERF_TIMER_GUARD(fallback_timer, offload_cpu_fallback_micros);
      shard->status = owned_cpu_executor_->Execute(shard->job, &shard->outputs,
                                                   &shard->stats);
    }
    shard->stats.device_attempts += device_stats.device_attempts;
    shard->stats.device_retries += device_stats.device_retries;
    shard->stats.device_faults += device_stats.device_faults;
    shard->stats.verify_failures += device_stats.verify_failures;
    shard->stats.verify_micros += device_stats.verify_micros;
    shard->fell_back = true;
  }
  if (shard->stats.micros == 0) {
    shard->stats.micros = env_->NowMicros() - start_micros;
  }
}

Status DBImpl::DoCompactionWork(Compaction* c) {
  // Requires mutex_ held. Builds one job per shard, runs them without
  // the mutex (device if the unsharded job is eligible, CPU otherwise —
  // paper Fig. 6), then installs every shard's results atomically in
  // one version edit.
  const int level = c->level();

  SequenceNumber smallest_snapshot;
  if (snapshots_.empty()) {
    smallest_snapshot = versions_->LastSequence();
  } else {
    smallest_snapshot = snapshots_.oldest()->sequence_number();
  }
  // Deletion markers can be dropped iff no deeper level holds data for
  // any key in the compaction range. Conservative per-compaction check
  // shared by both executors (see compaction_executor.h).
  bool no_deeper_data;
  {
    bool deeper = false;
    for (int lvl = level + 2; lvl < kNumLevels && !deeper; lvl++) {
      if (versions_->current()->NumFiles(lvl) > 0) {
        // Only a range check could refine this; keep it simple and
        // exactly implementable on the device.
        deeper = true;
      }
    }
    no_deeper_data = !deeper;
  }

  // Large L0->L1 jobs split into key-disjoint sub-compactions along the
  // L1 file grid; each shard runs concurrently (on its own offload card
  // when several are configured, on the CPU executor otherwise) and the
  // combined outputs install in one VersionEdit below. With multiple
  // cards the shard target is raised to at least the card count so the
  // placement policy has one shard per card to spread.
  std::vector<std::string> boundaries;
  const int shard_target =
      std::max(options_.max_subcompactions, options_.num_offload_cards);
  if (shard_target > 1 && level == 0) {
    boundaries = CompactionScheduler::PlanShardBoundaries(
        c->inputs(1), internal_comparator_, shard_target);
  }
  const int nshards = static_cast<int>(boundaries.size()) + 1;

  ShardLatch latch(nshards - 1);
  std::vector<std::unique_ptr<CompactionShard>> shards;
  for (int i = 0; i < nshards; i++) {
    auto shard = std::make_unique<CompactionShard>();
    shard->db = this;
    shard->latch = &latch;
    // An unsharded job may always use the device. Key-bounded shards
    // may only when the executor is multi-card aware (it trims staged
    // blocks to the shard range); with one card they would serialize on
    // the device anyway, so they keep the concurrent CPU path.
    shard->device_eligible =
        (nshards == 1) || (options_.num_offload_cards > 1);
    if (i > 0) {
      shard->has_lower = true;
      shard->lower = boundaries[i - 1];
    }
    if (i + 1 < nshards) {
      shard->has_upper = true;
      shard->upper = boundaries[i];
    }
    CompactionJob& job = shard->job;
    job.options = &options_;
    job.dbname = dbname_;
    job.table_cache = table_cache_.get();
    job.icmp = &internal_comparator_;
    job.compaction = c;
    job.smallest_snapshot = smallest_snapshot;
    job.no_deeper_data = no_deeper_data;
    job.has_lower_bound = shard->has_lower;
    job.has_upper_bound = shard->has_upper;
    job.lower_bound = shard->lower;
    job.upper_bound = shard->upper;
    job.trace = &trace_;
    job.metrics = metrics_;
    job.notifier = &notifier_;
    job.trace_tid = next_trace_tid_.fetch_add(1, std::memory_order_relaxed);
    CompactionShard* sp = shard.get();
    // Track every number handed out so a failed attempt (e.g. the
    // device dying mid-job) can release its pending-output protection
    // and scrub partial files before the job reruns on the CPU.
    job.new_file_number = [this, sp]() {
      MutexLock lock(&mutex_);
      uint64_t number = versions_->NewFileNumber();
      pending_outputs_.insert(number);
      sp->allocated.push_back(number);
      return number;
    };
    job.make_input_iterator = [this, sp]() -> Iterator* {
      // Invoked by the executor after DoCompactionWork released mutex_:
      // VersionSet state is guarded by it, so reacquire for the setup.
      Iterator* base;
      {
        MutexLock lock(&mutex_);
        base = versions_->MakeInputIterator(sp->job.compaction);
      }
      if (!sp->has_lower && !sp->has_upper) {
        return base;
      }
      return new ShardBoundIterator(base, user_comparator(), sp->has_lower,
                                    sp->lower, sp->has_upper, sp->upper);
    };
    shards.push_back(std::move(shard));
  }

  // The outer span covers executor run + install; executor stage spans
  // (input_build, dma_in, decode/merge/encode, verify) nest inside it
  // on shard 0's track; extra shards each get their own track.
  obs::SpanTimer compaction_span(&trace_, "compaction", "db",
                                 shards[0]->job.trace_tid);
  compaction_span.AddArg("level", std::to_string(level));
  compaction_span.AddArg(
      "inputs",
      std::to_string(c->num_input_files(0) + c->num_input_files(1)));
  compaction_span.AddArg("shards", std::to_string(nshards));

  if (nshards > 1) {
    scheduler_->RecordShardedJob(nshards);
  }

  obs::CompactionJobInfo job_info;
  job_info.db_name = dbname_;
  job_info.base_level = level;
  job_info.output_level = level + 1;
  job_info.input_files = c->num_input_files(0) + c->num_input_files(1);
  job_info.shards = nshards;

  uint64_t wall_micros = 0;
  {
    mutex_.Unlock();
    if (notifier_.active()) {
      notifier_.NotifyCompactionBegin(job_info);
    }
    const uint64_t start_micros = env_->NowMicros();
    for (int i = 1; i < nshards; i++) {
      env_->StartThread(&DBImpl::ShardThreadMain, shards[i].get());
    }
    RunCompactionShard(shards[0].get());
    if (nshards > 1) {
      MutexLock join(&latch.mu);
      while (latch.remaining > 0) {
        latch.cv.Wait();
      }
    }
    wall_micros = env_->NowMicros() - start_micros;
    mutex_.Lock();
  }

  // Aggregate shard results. Shards cover ascending disjoint key ranges
  // so concatenating their outputs in shard order keeps level+1 sorted.
  Status status;
  std::vector<CompactionOutput> outputs;
  CompactionExecStats exec_stats;
  bool fell_back = false;
  std::vector<uint64_t> allocated_numbers;
  for (const std::unique_ptr<CompactionShard>& shard : shards) {
    if (status.ok() && !shard->status.ok()) {
      status = shard->status;
    }
    outputs.insert(outputs.end(), shard->outputs.begin(),
                   shard->outputs.end());
    exec_stats.Add(shard->stats);
    exec_stats.offloaded = exec_stats.offloaded || shard->stats.offloaded;
    fell_back = fell_back || shard->fell_back;
    allocated_numbers.insert(allocated_numbers.end(), shard->allocated.begin(),
                             shard->allocated.end());
  }
  if (nshards > 1) {
    // Shards overlap in time; charge wall clock, not the per-shard sum.
    exec_stats.micros = static_cast<double>(wall_micros);
  }

  if (exec_stats.offloaded) {
    compactions_offloaded_++;
  } else {
    compactions_on_cpu_++;
  }
  if (fell_back) {
    compactions_fallback_++;
  }
  exec_stats_.Add(exec_stats);

  CompactionStats stats;
  stats.micros = static_cast<int64_t>(exec_stats.micros);
  stats.bytes_read = exec_stats.bytes_read;
  stats.bytes_written = exec_stats.bytes_written;
  stats_[level + 1].Add(stats);

  metrics_->counter("db.compaction.count")->Increment();
  metrics_->counter(exec_stats.offloaded ? "db.compaction.offloaded"
                                         : "db.compaction.cpu")
      ->Increment();
  if (fell_back) {
    metrics_->counter("db.compaction.fallbacks")->Increment();
  }
  metrics_->counter("db.compaction.bytes_read")
      ->Increment(static_cast<uint64_t>(exec_stats.bytes_read));
  metrics_->counter("db.compaction.bytes_written")
      ->Increment(static_cast<uint64_t>(exec_stats.bytes_written));
  metrics_->counter("db.compaction.entries_dropped")
      ->Increment(exec_stats.entries_dropped);
  metrics_->histogram("db.compaction.micros")->Observe(exec_stats.micros);

  if (status.ok() && shutting_down_.load(std::memory_order_acquire)) {
    status = Status::IOError("Deleting DB during compaction");
  }
  // All shard outputs exist on disk but none are referenced by any
  // version yet — a crash here must leave only reclaimable orphans.
  FCAE_CRASH_POINT("shard:between_installs");
  if (status.ok()) {
    obs::SpanTimer install_span(&trace_, "install", "db",
                                shards[0]->job.trace_tid);
    status = InstallCompactionResults(c, outputs);
    install_span.AddArg("outputs", std::to_string(outputs.size()));
    if (status.ok()) {
      FCAE_CRASH_POINT("compaction:after_install");
    }
  }
  compaction_span.AddArg("offloaded", exec_stats.offloaded ? "true" : "false");
  compaction_span.AddArg("fallback", fell_back ? "true" : "false");

  // Release pending output protection — every number handed out,
  // including ones whose table assembly failed before reaching `outputs`.
  for (uint64_t number : allocated_numbers) {
    pending_outputs_.erase(number);
  }

  if (!status.ok()) {
    // Corruption is NOT recorded here: the caller re-verifies the
    // inputs and either contains it (quarantine + repair) or records it
    // itself when no input is actually damaged.
    if (!status.IsCorruption()) {
      RecordBackgroundError(status);
    }
    // Clean up files we created (best effort; some may not exist).
    mutex_.Unlock();
    for (uint64_t number : allocated_numbers) {
      env_->RemoveFile(TableFileName(dbname_, number)).IgnoreError();
    }
    mutex_.Lock();
  }

  if (notifier_.active()) {
    job_info.offloaded = exec_stats.offloaded;
    job_info.fell_back = fell_back;
    job_info.input_bytes = static_cast<uint64_t>(exec_stats.bytes_read);
    job_info.output_bytes = static_cast<uint64_t>(exec_stats.bytes_written);
    job_info.micros = static_cast<uint64_t>(exec_stats.micros);
    job_info.status = status;
    mutex_.Unlock();
    notifier_.NotifyCompactionCompleted(job_info);
    mutex_.Lock();
  }

  VersionSet::LevelSummaryStorage tmp;
  (void)tmp;
  return status;
}

Status DBImpl::InstallCompactionResults(
    Compaction* c, const std::vector<CompactionOutput>& outputs) {
  // Requires mutex_ held.
  c->AddInputDeletions(c->edit());
  const int level = c->level();
  for (const CompactionOutput& out : outputs) {
    FileMetaData f;
    f.number = out.number;
    f.file_size = out.file_size;
    f.smallest = out.smallest;
    f.largest = out.largest;
    f.file_checksum = out.file_checksum;
    f.has_file_checksum = out.has_file_checksum;
    c->edit()->AddFile(level + 1, f);
  }
  return LogAndApplyLocked(c->edit());
}

void DBImpl::CleanupCompaction(CompactionState* compact) {
  // Unused in the executor-based design; retained for interface parity.
  (void)compact;
}

namespace {

struct IterState {
  Mutex* const mu;
  Version* const version GUARDED_BY(mu);
  MemTable* const mem GUARDED_BY(mu);
  MemTable* const imm GUARDED_BY(mu);

  IterState(Mutex* mutex, MemTable* mem, MemTable* imm, Version* version)
      : mu(mutex), version(version), mem(mem), imm(imm) {}
};

void CleanupIteratorState(void* arg1, void* arg2) {
  IterState* state = reinterpret_cast<IterState*>(arg1);
  state->mu->Lock();
  state->mem->Unref();
  if (state->imm != nullptr) state->imm->Unref();
  state->version->Unref();
  state->mu->Unlock();
  delete state;
}

}  // namespace

Iterator* DBImpl::NewInternalIterator(const ReadOptions& options,
                                      SequenceNumber* latest_snapshot,
                                      uint32_t* seed) {
  mutex_.Lock();
  *latest_snapshot = versions_->LastSequence();

  // Collect together all needed child iterators.
  std::vector<Iterator*> list;
  list.push_back(mem_->NewIterator());
  mem_->Ref();
  if (imm_ != nullptr) {
    list.push_back(imm_->NewIterator());
    imm_->Ref();
  }
  versions_->current()->AddIterators(options, &list);
  Iterator* internal_iter =
      NewMergingIterator(&internal_comparator_, list.data(),
                         static_cast<int>(list.size()));
  versions_->current()->Ref();

  IterState* cleanup =
      new IterState(&mutex_, mem_, imm_, versions_->current());
  internal_iter->RegisterCleanup(CleanupIteratorState, cleanup, nullptr);

  *seed = ++seed_;
  mutex_.Unlock();
  return internal_iter;
}

Iterator* DBImpl::TEST_NewInternalIterator() {
  SequenceNumber ignored;
  uint32_t ignored_seed;
  return NewInternalIterator(ReadOptions(), &ignored, &ignored_seed);
}

int64_t DBImpl::TEST_MaxNextLevelOverlappingBytes() {
  MutexLock l(&mutex_);
  return versions_->MaxNextLevelOverlappingBytes();
}

void DBImpl::TEST_QuarantineFile(uint64_t number) {
  MutexLock l(&mutex_);
  versions_->quarantine()->Add(number);
  metrics_->gauge("integrity.quarantined_files")
      ->Set(static_cast<int64_t>(versions_->quarantine()->size()));
  table_cache_->Evict(number);
}

void DBImpl::TEST_UnquarantineFile(uint64_t number) {
  MutexLock l(&mutex_);
  versions_->quarantine()->Remove(number);
  metrics_->gauge("integrity.quarantined_files")
      ->Set(static_cast<int64_t>(versions_->quarantine()->size()));
}

Status DBImpl::Get(const ReadOptions& options, const Slice& key,
                   std::string* value) {
  Status s;
  MutexLock l(&mutex_);
  SequenceNumber snapshot;
  if (options.snapshot_sequence != 0) {
    snapshot = options.snapshot_sequence;
  } else {
    snapshot = versions_->LastSequence();
  }

  MemTable* mem = mem_;
  MemTable* imm = imm_;
  Version* current = versions_->current();
  mem->Ref();
  if (imm != nullptr) imm->Ref();
  current->Ref();

  bool have_stat_update = false;
  Version::GetStats stats;

  // Unlock while reading from files and memtables.
  {
    mutex_.Unlock();
    // First look in the memtable, then in the immutable memtable (if
    // any).
    LookupKey lkey(key, snapshot);
    FCAE_PERF_COUNT(memtable_probes, 1);
    bool found = mem->Get(lkey, value, &s);
    if (!found && imm != nullptr) {
      FCAE_PERF_COUNT(immutable_memtable_probes, 1);
      found = imm->Get(lkey, value, &s);
    }
    if (!found) {
      s = current->Get(options, lkey, value, &stats);
      have_stat_update = true;
    }
    mutex_.Lock();
  }

  if (have_stat_update && current->UpdateStats(stats)) {
    MaybeScheduleCompaction();
  }
  mem->Unref();
  if (imm != nullptr) imm->Unref();
  current->Unref();
  return s;
}

Iterator* DBImpl::NewIterator(const ReadOptions& options) {
  SequenceNumber latest_snapshot;
  uint32_t seed;
  Iterator* iter = NewInternalIterator(options, &latest_snapshot, &seed);
  return NewDBIterator(this, user_comparator(), iter,
                       (options.snapshot_sequence != 0
                            ? options.snapshot_sequence
                            : latest_snapshot),
                       seed);
}

void DBImpl::RecordReadSample(Slice key) {
  MutexLock l(&mutex_);
  if (versions_->current()->RecordReadSample(key)) {
    MaybeScheduleCompaction();
  }
}

const Snapshot* DBImpl::GetSnapshot() {
  MutexLock l(&mutex_);
  return snapshots_.New(versions_->LastSequence());
}

void DBImpl::ReleaseSnapshot(const Snapshot* snapshot) {
  MutexLock l(&mutex_);
  snapshots_.Delete(static_cast<const SnapshotImpl*>(snapshot));
}

// Convenience methods.
Status DBImpl::Put(const WriteOptions& o, const Slice& key,
                   const Slice& val) {
  WriteBatch batch;
  batch.Put(key, val);
  return Write(o, &batch);
}

Status DBImpl::Delete(const WriteOptions& options, const Slice& key) {
  WriteBatch batch;
  batch.Delete(key);
  return Write(options, &batch);
}

Status DBImpl::Write(const WriteOptions& options, WriteBatch* updates) {
  Writer w(&mutex_);
  w.batch = updates;
  w.sync = options.sync;
  w.done = false;

  MutexLock l(&mutex_);
  writers_.push_back(&w);
  while (!w.done && &w != writers_.front()) {
    w.cv.Wait();
  }
  if (w.done) {
    return w.status;
  }

  // May temporarily unlock and wait.
  Status status = MakeRoomForWrite(updates == nullptr);
  uint64_t last_sequence = versions_->LastSequence();
  Writer* last_writer = &w;
  if (status.ok() && updates != nullptr) {  // null batch is for compactions
    WriteBatch* write_batch = BuildBatchGroup(&last_writer);
    WriteBatchInternal::SetSequence(write_batch, last_sequence + 1);
    last_sequence += WriteBatchInternal::Count(write_batch);

    // Add to log and apply to memtable. We can release the lock during
    // this phase since &w is currently responsible for logging and
    // protects against concurrent loggers and concurrent writes into
    // mem_.
    {
      mutex_.Unlock();
      const Slice contents = WriteBatchInternal::Contents(write_batch);
      {
        FCAE_PERF_TIMER_GUARD(wal_timer, wal_append_micros);
        FCAE_IOSTATS_TIMER_GUARD(wal_io_timer, write_micros);
        status = log_->AddRecord(contents);
      }
      FCAE_PERF_COUNT(wal_appends, 1);
      FCAE_IOSTATS_COUNT(bytes_written, contents.size());
      FCAE_CRASH_POINT("wal:after_append");
      bool sync_error = false;
      if (status.ok() && options.sync) {
        {
          FCAE_PERF_TIMER_GUARD(sync_timer, wal_sync_micros);
          FCAE_IOSTATS_TIMER_GUARD(sync_io_timer, sync_micros);
          status = logfile_->Sync();
        }
        FCAE_PERF_COUNT(wal_syncs, 1);
        if (!status.ok()) {
          sync_error = true;
        }
      }
      if (status.ok()) {
        status = WriteBatchInternal::InsertInto(write_batch, mem_);
      }
      mutex_.Lock();
      if (sync_error) {
        // The state of the log file is indeterminate: the log record we
        // just added may or may not show up when the DB is re-opened.
        // So we force the DB into a mode where all future writes fail.
        RecordBackgroundError(status);
      }
    }
    if (write_batch == tmp_batch_) tmp_batch_->Clear();

    versions_->SetLastSequence(last_sequence);
  }

  while (true) {
    Writer* ready = writers_.front();
    writers_.pop_front();
    if (ready != &w) {
      ready->status = status;
      ready->done = true;
      ready->cv.Signal();
    }
    if (ready == last_writer) break;
  }

  // Notify new head of write queue.
  if (!writers_.empty()) {
    writers_.front()->cv.Signal();
  }

  return status;
}

// Requires: Writer list must be non-empty; first writer must have a
// non-null batch.
WriteBatch* DBImpl::BuildBatchGroup(Writer** last_writer) {
  // Requires mutex_ held.
  assert(!writers_.empty());
  Writer* first = writers_.front();
  WriteBatch* result = first->batch;
  assert(result != nullptr);

  size_t size = WriteBatchInternal::ByteSize(first->batch);

  // Allow the group to grow up to a maximum size, but if the original
  // write is small, limit the growth so we do not slow down the small
  // write too much.
  size_t max_size = 1 << 20;
  if (size <= (128 << 10)) {
    max_size = size + (128 << 10);
  }

  *last_writer = first;
  std::deque<Writer*>::iterator iter = writers_.begin();
  ++iter;  // Advance past "first".
  for (; iter != writers_.end(); ++iter) {
    Writer* w = *iter;
    if (w->sync && !first->sync) {
      // Do not include a sync write into a batch handled by a non-sync
      // write.
      break;
    }

    if (w->batch != nullptr) {
      size += WriteBatchInternal::ByteSize(w->batch);
      if (size > max_size) {
        // Do not make batch too big.
        break;
      }

      // Append to *result.
      if (result == first->batch) {
        // Switch to temporary batch instead of disturbing caller's
        // batch.
        result = tmp_batch_;
        assert(WriteBatchInternal::Count(result) == 0);
        WriteBatchInternal::Append(result, first->batch);
      }
      WriteBatchInternal::Append(result, w->batch);
    }
    *last_writer = w;
  }
  return result;
}

// Requires: mutex_ is held; this thread is currently at the front of
// the writer queue.
WriteStallConditions DBImpl::SampleWriteStallConditions() {
  WriteStallConditions cond;
  cond.l0_files = versions_->NumLevelFiles(0);
  cond.pending_compaction_bytes = versions_->PendingCompactionBytes();
  cond.memtable_bytes = mem_->ApproximateMemoryUsage() +
                        (imm_ != nullptr ? imm_->ApproximateMemoryUsage() : 0);
  cond.imm_in_flight = imm_ != nullptr;
  return cond;
}

void DBImpl::PumpRateLimiterMetrics() {
  RateLimiter* limiter = options_.rate_limiter;
  if (limiter == nullptr) return;
  uint64_t total = limiter->total_bytes_through();
  if (total > rl_exported_bytes_through_) {
    metrics_->counter("ratelimiter.bytes_through")
        ->Increment(total - rl_exported_bytes_through_);
    rl_exported_bytes_through_ = total;
  }
  total = limiter->total_throttled_bytes();
  if (total > rl_exported_throttled_bytes_) {
    metrics_->counter("ratelimiter.throttled_bytes")
        ->Increment(total - rl_exported_throttled_bytes_);
    rl_exported_throttled_bytes_ = total;
  }
  total = limiter->total_wait_micros();
  if (total > rl_exported_wait_micros_) {
    metrics_->counter("ratelimiter.wait_micros")
        ->Increment(total - rl_exported_wait_micros_);
    rl_exported_wait_micros_ = total;
  }
  total = limiter->total_requests();
  if (total > rl_exported_requests_) {
    metrics_->counter("ratelimiter.requests")
        ->Increment(total - rl_exported_requests_);
    rl_exported_requests_ = total;
  }
}

void DBImpl::PumpTraceMetrics() {
  const uint64_t dropped = trace_.events_dropped();
  if (dropped > trace_dropped_exported_) {
    metrics_->counter("obs.trace.dropped_events")
        ->Increment(dropped - trace_dropped_exported_);
    trace_dropped_exported_ = dropped;
  }
}

void DBImpl::NotifyFlushEvent(bool begin, const obs::FlushJobInfo& info) {
  if (!notifier_.active()) return;
  mutex_.Unlock();
  if (begin) {
    notifier_.NotifyFlushBegin(info);
  } else {
    notifier_.NotifyFlushCompleted(info);
  }
  mutex_.Lock();
}

void DBImpl::NotifyWriteStall(bool begin, obs::WriteStallCause cause,
                              uint64_t micros) {
  if (!notifier_.active()) return;
  obs::WriteStallInfo info;
  info.cause = cause;
  info.micros = micros;
  mutex_.Unlock();
  if (begin) {
    notifier_.NotifyWriteStallBegin(info);
  } else {
    notifier_.NotifyWriteStallEnd(info);
  }
  mutex_.Lock();
}

void DBImpl::NotifyBackgroundErrorEvent(const Status& s, bool hard) {
  if (!notifier_.active()) return;
  obs::BackgroundErrorInfo info;
  info.status = s;
  info.hard = hard;
  mutex_.Unlock();
  notifier_.NotifyBackgroundError(info);
  mutex_.Lock();
}

void DBImpl::NotifyResumeEvent() {
  if (!notifier_.active()) return;
  mutex_.Unlock();
  notifier_.NotifyBackgroundErrorResumed();
  mutex_.Lock();
}

void DBImpl::DumpStats(uint64_t seq) {
  {
    MutexLock lock(&mutex_);
    if (shutting_down_.load(std::memory_order_acquire)) return;
  }
  std::string text;
  if (!GetProperty("fcae.stats", &text)) return;
  metrics_->counter("obs.stats_dump.count")->Increment();
  if (options_.info_log != nullptr) {
    obs::LogRecord record;
    record.level = obs::LogRecord::Level::kInfo;
    record.ts_micros = obs::TraceNowMicros();
    record.tag = "fcae.stats";
    record.message = std::move(text);
    record.fields.emplace_back("seq", std::to_string(seq));
    options_.info_log->Log(record);
  }
}

namespace {
const char* WriteControllerStateName(WriteController::State state) {
  switch (state) {
    case WriteController::State::kOk:
      return "ok";
    case WriteController::State::kDelayed:
      return "delayed";
    case WriteController::State::kStopped:
      return "stopped";
  }
  return "unknown";
}
// Delay sleeps release the mutex in bounded chunks so a background
// error, a Resume(), or a compaction install interrupts the nap within
// one chunk instead of the writer serving out its full sentence.
constexpr uint64_t kDelayChunkMicros = 1000;
}  // namespace

Status DBImpl::MakeRoomForWrite(bool force) {
  assert(!writers_.empty());
  bool allow_delay = !force;
  Status s;
  while (true) {
    if (!bg_error_.ok()) {
      // Yield previous error.
      s = bg_error_;
      break;
    }
    const WriteStallConditions cond = SampleWriteStallConditions();
    const WriteController::State prev_state = write_controller_.state();
    const WriteController::State state = write_controller_.Update(cond);
    if (state != prev_state) {
      metrics_->gauge("wc.state")->Set(static_cast<int64_t>(state));
      trace_.RecordInstant(
          "wc_state", "db", obs::TraceNowMicros(), 0,
          {{"state",
            obs::TraceRecorder::Quote(WriteControllerStateName(state))},
           {"debt", std::to_string(write_controller_.debt())}});
    }
    if (allow_delay && state == WriteController::State::kDelayed) {
      // Compaction debt but no hard limit yet: charge this write the
      // controller's credit-model delay (which ramps smoothly with the
      // debt score) instead of LevelDB's fixed 1 ms, so latency
      // degrades gradually toward the stop trigger instead of cliffing
      // into it. Kick the scheduler first — the debt is its signal.
      MaybeScheduleCompaction();
      NotifyWriteStall(/*begin=*/true, obs::WriteStallCause::kCompactionDebt,
                       0);
      const uint64_t delay =
          write_controller_.GetDelayMicros(env_->NowMicros());
      const uint64_t start = env_->NowMicros();
      uint64_t waited = 0;
      while (waited < delay && bg_error_.ok()) {
        const uint64_t chunk =
            std::min<uint64_t>(delay - waited, kDelayChunkMicros);
        mutex_.Unlock();
        env_->SleepForMicroseconds(static_cast<int>(chunk));
        mutex_.Lock();
        waited = env_->NowMicros() - start;
        // An install may have paid the debt off mid-nap: stop serving
        // a delay the LSM shape no longer justifies.
        if (write_controller_.Update(SampleWriteStallConditions()) ==
            WriteController::State::kOk) {
          break;
        }
      }
      allow_delay = false;  // Do not delay a single write more than once.
      slowdown_count_++;
      slowdown_micros_ += waited;
      metrics_->counter("db.write.slowdowns")->Increment();
      metrics_->counter("db.write.slowdown_micros")->Increment(waited);
      metrics_->counter("wc.delayed_writes")->Increment();
      metrics_->counter("wc.delay_micros")->Increment(waited);
      metrics_->histogram("db.write.delay_micros")
          ->Observe(static_cast<double>(waited));
      FCAE_PERF_COUNT(write_delays, 1);
      FCAE_PERF_TIME(write_delay_micros, waited);
      NotifyWriteStall(/*begin=*/false, obs::WriteStallCause::kCompactionDebt,
                       waited);
    } else if (!force &&
               mem_->ApproximateMemoryUsage() <= options_.write_buffer_size &&
               (options_.total_write_buffer_size == 0 || imm_ == nullptr ||
                cond.memtable_bytes < options_.total_write_buffer_size)) {
      // There is room in the current memtable and the live+immutable
      // pair is under the global budget.
      break;
    } else if (imm_ != nullptr) {
      // Either the current memtable is full while the previous one is
      // still being flushed, or the global memory budget is exhausted;
      // both drain through the in-flight flush, so wait on it. Counts
      // are recorded before the wait so an observer can see a blocked
      // writer; durations after.
      const bool memory_stop =
          !force && mem_->ApproximateMemoryUsage() <= options_.write_buffer_size;
      if (memory_stop) {
        metrics_->counter("wc.memory_stalls")->Increment();
        metrics_->counter("wc.stopped_writes")->Increment();
      }
      stall_memtable_count_++;
      metrics_->counter("db.write.stall_memtable")->Increment();
      NotifyWriteStall(/*begin=*/true, obs::WriteStallCause::kMemtableFull,
                       0);
      if (imm_ == nullptr) {
        // The in-flight flush installed while the mutex was dropped for
        // the notification — its wakeup signal already fired, so
        // waiting now could sleep forever. Close the event and
        // re-evaluate.
        NotifyWriteStall(/*begin=*/false, obs::WriteStallCause::kMemtableFull,
                         0);
        continue;
      }
      const uint64_t start = env_->NowMicros();
      background_work_finished_signal_.Wait();
      const uint64_t waited = env_->NowMicros() - start;
      stall_memtable_micros_ += waited;
      metrics_->counter("db.write.stall_memtable_micros")->Increment(waited);
      if (memory_stop) {
        metrics_->counter("wc.stop_micros")->Increment(waited);
      }
      metrics_->histogram("db.write.stall_micros")
          ->Observe(static_cast<double>(waited));
      FCAE_PERF_COUNT(write_stops, 1);
      FCAE_PERF_TIME(write_stop_micros, waited);
      NotifyWriteStall(/*begin=*/false, obs::WriteStallCause::kMemtableFull,
                       waited);
    } else if (state == WriteController::State::kStopped) {
      // Too many level-0 files (the memory-budget stop always has an
      // imm in flight and is handled above). Block on the condvar —
      // every install, Resume(), and background-error transition
      // signals it.
      stall_l0_count_++;
      metrics_->counter("db.write.stall_l0")->Increment();
      metrics_->counter("wc.stopped_writes")->Increment();
      MaybeScheduleCompaction();
      NotifyWriteStall(/*begin=*/true, obs::WriteStallCause::kL0Stop, 0);
      if (write_controller_.Update(SampleWriteStallConditions()) !=
          WriteController::State::kStopped) {
        // The stop condition cleared while the mutex was dropped for
        // the notification; its signal already fired, so close the
        // event and re-evaluate instead of waiting.
        NotifyWriteStall(/*begin=*/false, obs::WriteStallCause::kL0Stop, 0);
        continue;
      }
      // Re-arm the dispatch the notification drop may have consumed:
      // a worker scheduled above could have finished (and signalled)
      // inside that window while leaving the level still over-full.
      MaybeScheduleCompaction();
      const uint64_t start = env_->NowMicros();
      background_work_finished_signal_.Wait();
      const uint64_t waited = env_->NowMicros() - start;
      stall_l0_micros_ += waited;
      metrics_->counter("db.write.stall_l0_micros")->Increment(waited);
      metrics_->counter("wc.stop_micros")->Increment(waited);
      metrics_->histogram("db.write.stall_micros")
          ->Observe(static_cast<double>(waited));
      FCAE_PERF_COUNT(write_stops, 1);
      FCAE_PERF_TIME(write_stop_micros, waited);
      NotifyWriteStall(/*begin=*/false, obs::WriteStallCause::kL0Stop,
                       waited);
    } else {
      // Attempt to switch to a new memtable and trigger compaction of
      // old.
      assert(versions_->LogNumber() <= logfile_number_);
      uint64_t new_log_number = versions_->NewFileNumber();
      WritableFile* lfile = nullptr;
      s = env_->NewWritableFile(LogFileName(dbname_, new_log_number), &lfile);
      if (s.ok()) {
        // Commit the new log's directory entry now: synced records
        // written to it must survive a crash that happens before the
        // flush's version edit performs the next directory sync.
        s = env_->SyncDir(dbname_);
        if (!s.ok()) {
          delete lfile;
          lfile = nullptr;
        }
      }
      if (!s.ok()) {
        // Avoid chewing through file number space in a tight loop.
        versions_->ReuseFileNumber(new_log_number);
        break;
      }
      // The new log's directory entry is durable but the writer role
      // has not switched: a crash here leaves an empty orphan log that
      // open-time reclamation removes, while the old log still holds
      // every acknowledged record.
      FCAE_CRASH_POINT("wal:after_rotate_syncdir");
      delete log_;
      delete logfile_;
      logfile_ = lfile;
      logfile_number_ = new_log_number;
      log_ = new log::Writer(lfile);
      imm_ = mem_;
      has_imm_.store(true, std::memory_order_release);
      mem_ = new MemTable(internal_comparator_);
      mem_->Ref();
      force = false;  // Do not force another compaction if have room.
      MaybeScheduleCompaction();
    }
  }
  return s;
}

bool DBImpl::GetProperty(const Slice& property, std::string* value) {
  value->clear();

  MutexLock l(&mutex_);
  Slice in = property;
  Slice prefix("fcae.");
  if (!in.StartsWith(prefix)) return false;
  in.RemovePrefix(prefix.size());
  // Settle any rate-limiter and trace-ring activity into the registry
  // so property snapshots ("metrics", "stats") are current.
  PumpRateLimiterMetrics();
  PumpTraceMetrics();

  if (in.StartsWith("num-files-at-level")) {
    in.RemovePrefix(strlen("num-files-at-level"));
    // kNumLevels is single-digit; accept at most two digits so a long
    // digit string cannot overflow the accumulator below (it used to
    // wrap uint64 and could alias a valid level).
    uint64_t level = 0;
    bool ok = !in.empty() && in.size() <= 2;
    for (size_t i = 0; i < in.size() && ok; i++) {
      if (in[i] < '0' || in[i] > '9') {
        ok = false;
      } else {
        level = level * 10 + (in[i] - '0');
      }
    }
    if (!ok || level >= kNumLevels) {
      return false;
    } else {
      AppendF(value, "%d", versions_->NumLevelFiles(static_cast<int>(level)));
      return true;
    }
  } else if (in == Slice("stats")) {
    value->append(
        "                               Compactions\n"
        "Level  Files Size(MB) Time(sec) Read(MB) Write(MB)\n"
        "--------------------------------------------------\n");
    for (int level = 0; level < kNumLevels; level++) {
      int files = versions_->NumLevelFiles(level);
      if (stats_[level].micros > 0 || files > 0) {
        AppendF(value, "%3d %8d %8.0f %9.3f %8.3f %9.3f\n", level, files,
                versions_->NumLevelBytes(level) / 1048576.0,
                stats_[level].micros / 1e6,
                stats_[level].bytes_read / 1048576.0,
                stats_[level].bytes_written / 1048576.0);
      }
    }
    AppendF(value,
            "Compactions executed: cpu=%lld offloaded=%lld "
            "fallback=%lld (device %.3f ms kernel, %.3f ms pcie)\n",
            static_cast<long long>(compactions_on_cpu_),
            static_cast<long long>(compactions_offloaded_),
            static_cast<long long>(compactions_fallback_),
            exec_stats_.device_micros / 1e3, exec_stats_.pcie_micros / 1e3);
    AppendF(value,
            "Write pauses: slowdowns=%lld (%.1f ms) "
            "memtable-waits=%lld (%.1f ms) l0-stops=%lld (%.1f ms)\n",
            static_cast<long long>(slowdown_count_), slowdown_micros_ / 1e3,
            static_cast<long long>(stall_memtable_count_),
            stall_memtable_micros_ / 1e3,
            static_cast<long long>(stall_l0_count_), stall_l0_micros_ / 1e3);
    // Interval section: activity since the previous "fcae.stats" read
    // (or since Open for the first one). The stats dumper reads this
    // property each period, so its records show per-window figures
    // without consumers having to diff cumulative dumps themselves.
    {
      const obs::MetricsRegistry::Snapshot now = metrics_->TakeSnapshot();
      const auto delta = [&](const char* name) -> unsigned long long {
        const uint64_t cur = now.CounterValue(name);
        const uint64_t before = stats_window_.CounterValue(name);
        return cur >= before ? cur - before : 0;
      };
      AppendF(value,
              "Interval: flushes=%llu (%.3f MB) compactions=%llu "
              "(read %.3f MB, wrote %.3f MB)\n",
              delta("db.flush.count"),
              delta("db.flush.bytes_written") / 1048576.0,
              delta("db.compaction.count"),
              delta("db.compaction.bytes_read") / 1048576.0,
              delta("db.compaction.bytes_written") / 1048576.0);
      AppendF(value,
              "Interval: slowdowns=%llu (%.1f ms) memtable-waits=%llu "
              "(%.1f ms) l0-stops=%llu (%.1f ms)\n",
              delta("db.write.slowdowns"),
              delta("db.write.slowdown_micros") / 1e3,
              delta("db.write.stall_memtable"),
              delta("db.write.stall_memtable_micros") / 1e3,
              delta("db.write.stall_l0"),
              delta("db.write.stall_l0_micros") / 1e3);
      stats_window_ = now;
    }
    return true;
  } else if (in == Slice("metrics")) {
    // JSON snapshot of every registered counter/gauge/histogram; see
    // DESIGN.md §7 for the naming scheme. Executor/device metrics land
    // in the same registry, so one snapshot covers all layers.
    *value = metrics_->ToJson();
    return true;
  } else if (in == Slice("trace")) {
    // chrome://tracing JSON of the retained span ring.
    *value = trace_.ToJson();
    return true;
  } else if (in == Slice("device-health")) {
    // One line of robustness/fault counters for the offload path: how
    // compactions were routed, what the device attempts cost, and the
    // primary executor's own health dump (retry/verify/breaker state).
    AppendF(value,
            "executor=%s compactions{offloaded=%lld cpu=%lld fallback=%lld} "
            "device{attempts=%llu retries=%llu faults=%llu "
            "verify-rejects=%llu verify-ms=%.3f}",
            primary_executor_->Name(),
            static_cast<long long>(compactions_offloaded_),
            static_cast<long long>(compactions_on_cpu_),
            static_cast<long long>(compactions_fallback_),
            static_cast<unsigned long long>(exec_stats_.device_attempts),
            static_cast<unsigned long long>(exec_stats_.device_retries),
            static_cast<unsigned long long>(exec_stats_.device_faults),
            static_cast<unsigned long long>(exec_stats_.verify_failures),
            exec_stats_.verify_micros / 1e3);
    std::string health = primary_executor_->HealthString();
    if (!health.empty()) {
      value->append(" ");
      value->append(health);
    }
    return true;
  } else if (in == Slice("background-error")) {
    // Error state machine in one line: state, sticky status, and how
    // many resume attempts have been spent since the last clean state.
    const char* state =
        bg_error_.ok() ? "ok"
                       : (bg_error_severity_ == BgErrorSeverity::kHard
                              ? "hard"
                              : "soft");
    AppendF(value, "state=%s resume-attempts=%d status=%s", state,
            resume_attempts_,
            bg_error_.ok() ? "OK" : bg_error_.ToString().c_str());
    return true;
  } else if (in == Slice("num-quarantined-files")) {
    // Corruption-containment state (DESIGN.md §14): how many live
    // tables reads are currently routing around while repair runs.
    AppendF(value, "%llu",
            static_cast<unsigned long long>(versions_->quarantine()->size()));
    return true;
  } else if (in == Slice("scheduler")) {
    // One line of parallel-compaction state: worker occupancy, claimed
    // level pairs, flush lane, and lifetime job counters (DESIGN.md §8).
    *value = scheduler_->DebugString();
    return true;
  } else if (in == Slice("sstables")) {
    *value = versions_->current()->DebugString();
    return true;
  } else if (in == Slice("approximate-memory-usage")) {
    size_t total_usage = 0;  // Block cache would be counted here too.
    if (mem_) {
      total_usage += mem_->ApproximateMemoryUsage();
    }
    if (imm_) {
      total_usage += imm_->ApproximateMemoryUsage();
    }
    char buf[50];
    std::snprintf(buf, sizeof(buf), "%llu",
                  static_cast<unsigned long long>(total_usage));
    value->append(buf);
    return true;
  }

  return false;
}

void DBImpl::GetApproximateSizes(const Range* range, int n, uint64_t* sizes) {
  {
    MutexLock l(&mutex_);
    Version* v = versions_->current();
    v->Ref();

    for (int i = 0; i < n; i++) {
      // Convert user_key into a corresponding internal key.
      InternalKey k1(range[i].start, kMaxSequenceNumber, kValueTypeForSeek);
      InternalKey k2(range[i].limit, kMaxSequenceNumber, kValueTypeForSeek);
      uint64_t start = versions_->ApproximateOffsetOf(v, k1);
      uint64_t limit = versions_->ApproximateOffsetOf(v, k2);
      sizes[i] = (limit >= start ? limit - start : 0);
    }

    v->Unref();
  }
}

void DBImpl::CompactRange(const Slice* begin, const Slice* end) {
  int max_level_with_files = 1;
  {
    MutexLock l(&mutex_);
    Version* base = versions_->current();
    for (int level = 1; level < kNumLevels; level++) {
      if (base->OverlapInLevel(level, begin, end)) {
        max_level_with_files = level;
      }
    }
  }
  // TODO(sanjay): Skip if memtable does not overlap.
  Status flush_status = TEST_CompactMemTable();
  if (!flush_status.ok()) {
    // The flush failure is already recorded in the background-error state
    // machine; range compaction against a stale memtable would mask it.
    return;
  }
  for (int level = 0; level < max_level_with_files; level++) {
    TEST_CompactRange(level, begin, end);
  }
}

CompactionExecStats DBImpl::OffloadStats() {
  MutexLock l(&mutex_);
  return exec_stats_;
}

int64_t DBImpl::FallbackCompactions() {
  MutexLock l(&mutex_);
  return compactions_fallback_;
}

DB::~DB() = default;

Status DB::Resume() {
  return Status::NotSupported("Resume not implemented by this DB");
}

Status DB::ScrubNow() {
  return Status::NotSupported("ScrubNow not implemented by this DB");
}

Status DB::Open(const Options& options, const std::string& dbname,
                DB** dbptr) {
  *dbptr = nullptr;

  DBImpl* impl = new DBImpl(options, dbname);
  const uint64_t recover_start_micros = impl->env_->NowMicros();
  impl->mutex_.Lock();
  VersionEdit edit;
  // Recover handles create_if_missing, error_if_exists.
  bool save_manifest = false;
  Status s = impl->Recover(&edit, &save_manifest);
  if (s.ok() && impl->mem_ == nullptr) {
    // Create new log and a corresponding memtable.
    uint64_t new_log_number = impl->versions_->NewFileNumber();
    WritableFile* lfile;
    s = options.env->NewWritableFile(LogFileName(dbname, new_log_number),
                                     &lfile);
    if (s.ok()) {
      // Make the log file's directory entry durable before anything is
      // synced into it (the first LogAndApply below normally covers
      // this, but not when no manifest write is needed).
      // fcae-check: allow(crash-point): open-time edge, pre-writes
      s = options.env->SyncDir(dbname);
    }
    if (s.ok()) {
      edit.SetLogNumber(new_log_number);
      impl->logfile_ = lfile;
      impl->logfile_number_ = new_log_number;
      impl->log_ = new log::Writer(lfile);
      impl->mem_ = new MemTable(impl->internal_comparator_);
      impl->mem_->Ref();
    }
  }
  if (s.ok() && save_manifest) {
    edit.SetLogNumber(impl->logfile_number_);
    s = impl->versions_->LogAndApply(&edit, &impl->mutex_);
  }
  if (s.ok()) {
    // Recovery reclaims anything a crashed incarnation left behind:
    // orphaned compaction/offload outputs, temp files, stale logs.
    impl->RemoveObsoleteFiles();
    impl->MaybeScheduleCompaction();
  }
  impl->mutex_.Unlock();
  if (s.ok()) {
    assert(impl->mem_ != nullptr);
    impl->metrics_->counter("recovery.opens")->Increment();
    impl->metrics_->counter("recovery.micros")
        ->Increment(impl->env_->NowMicros() - recover_start_micros);
    if (impl->stats_dumper_ != nullptr) {
      impl->stats_dumper_->Start();
    }
    *dbptr = impl;
  } else {
    delete impl;
  }
  return s;
}

Status DestroyDB(const std::string& dbname, const Options& options) {
  Env* env = options.env;
  std::vector<std::string> filenames;
  Status result = env->GetChildren(dbname, &filenames);
  if (!result.ok()) {
    // Ignore error in case directory does not exist.
    return Status::OK();
  }

  FileLock* lock;
  const std::string lockname = LockFileName(dbname);
  result = env->LockFile(lockname, &lock);
  if (result.ok()) {
    uint64_t number;
    FileType type;
    for (size_t i = 0; i < filenames.size(); i++) {
      if (ParseFileName(filenames[i], &number, &type) &&
          type != FileType::kDBLockFile) {  // Lock file deleted at end.
        Status del = env->RemoveFile(dbname + "/" + filenames[i]);
        if (result.ok() && !del.ok()) {
          result = del;
        }
      }
    }
    // Ignore errors below: the DB state is already gone, and the dir may
    // legitimately hold files that are not ours.
    env->UnlockFile(lock).IgnoreError();
    env->RemoveFile(lockname).IgnoreError();
    env->RemoveDir(dbname).IgnoreError();
  }
  return result;
}

}  // namespace fcae
