// Multi-threaded stress tests for the concurrent offload path, meant to
// run under ThreadSanitizer (ctest -C stress in the tier1-tsan CI job).
//
// Unlike the tier-1 concurrency smoke tests, these drive foreground
// reads, writes, iterators, and property polls WHILE the background
// compaction thread offloads to a faulting device — including the
// quarantine / CPU-fallback / re-admission transitions of the health
// monitor — and assert that no acknowledged write is lost and no torn
// value is ever observed.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fpga/fault_injector.h"
#include "gtest/gtest.h"
#include "host/device_health_monitor.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

/// Value encodes (thread, counter) plus a fixed-size filler so readers
/// can detect torn or truncated values structurally.
std::string MakeValue(int thread, int counter) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t%02d-c%08d-", thread, counter);
  std::string v(buf);
  v.append(100, static_cast<char>('a' + thread));
  return v;
}

bool LooksWellFormed(const std::string& value) {
  return value.size() == 14 + 100 && value[0] == 't' && value[13] == '-';
}

}  // namespace

class ConcurrentStressTest : public testing::Test {
 public:
  ConcurrentStressTest() : env_(NewMemEnv(Env::Default())) {}

  /// Opens the DB with the given executor and a small write buffer so
  /// the workload constantly flushes and compacts in the background.
  std::unique_ptr<DB> OpenDb(CompactionExecutor* executor) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.compaction_executor = executor;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/stress", &db).ok());
    return std::unique_ptr<DB>(db);
  }

  std::unique_ptr<Env> env_;
};

TEST_F(ConcurrentStressTest, ReadersWritersIteratorsDuringFaultyOffload) {
  // A transient fault storm on the device while four kinds of
  // foreground work hammer the DB. Every job must complete via device
  // retry or CPU fallback without a torn read or a lost write.
  fpga::DeviceFaultConfig fault_config;
  fault_config.seed = 4242;
  fault_config.transient_rate = 0.15;
  fpga::DeviceFaultInjector injector(fault_config);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 2;  // Tournaments: many launches per job.
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);

  host::DeviceHealthMonitor monitor;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &monitor;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db = OpenDb(&executor);

  constexpr int kWriterThreads = 3;
  constexpr int kKeysPerWriter = 300;
  constexpr int kWritesPerThread = 2500;

  std::atomic<bool> stop{false};
  std::atomic<bool> write_failed{false};
  std::atomic<int> torn{0};

  // Writers: each owns a disjoint key range, overwriting it repeatedly
  // (key churn drives flushes, hence background offloads).
  std::vector<std::thread> writers;
  for (int t = 0; t < kWriterThreads; t++) {
    writers.emplace_back([&, t]() {
      Random rnd(1000 + t);
      WriteOptions wo;
      for (int i = 1; i <= kWritesPerThread; i++) {
        std::string key = "w" + std::to_string(t) + "-k" +
                          std::to_string(rnd.Uniform(kKeysPerWriter));
        if (!db->Put(wo, key, MakeValue(t, i)).ok()) {
          write_failed.store(true);
          return;
        }
      }
    });
  }

  // Point readers: any value observed must be structurally intact.
  std::thread reader([&]() {
    Random rnd(77);
    std::string value;
    while (!stop.load(std::memory_order_acquire)) {
      std::string key =
          "w" + std::to_string(rnd.Uniform(kWriterThreads)) + "-k" +
          std::to_string(rnd.Uniform(kKeysPerWriter));
      Status s = db->Get(ReadOptions(), key, &value);
      if (s.ok()) {
        if (!LooksWellFormed(value)) torn.fetch_add(1);
      } else if (!s.IsNotFound()) {
        torn.fetch_add(1);
      }
    }
  });

  // Full scans: a snapshot iterator must always see a consistent,
  // sorted, well-formed view regardless of concurrent compactions.
  std::thread scanner([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
      std::string prev_key;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev_key.empty() && key <= prev_key) torn.fetch_add(1);
        if (!LooksWellFormed(it->value().ToString())) torn.fetch_add(1);
        prev_key = key;
      }
      if (!it->status().ok()) torn.fetch_add(1);
    }
  });

  // Property poller: health/stat surfaces must stay readable while the
  // executor is mid-job (they take leaf locks only).
  std::thread poller([&]() {
    std::string value;
    while (!stop.load(std::memory_order_acquire)) {
      if (!db->GetProperty("fcae.device-health", &value) || value.empty()) {
        torn.fetch_add(1);
      }
      db->GetProperty("fcae.stats", &value);
      (void)monitor.snapshot();
      (void)executor.robustness_counters();
    }
  });

  for (auto& t : writers) t.join();
  stop.store(true, std::memory_order_release);
  reader.join();
  scanner.join();
  poller.join();

  ASSERT_FALSE(write_failed.load());
  ASSERT_EQ(0, torn.load());

  // Every writer's final overwrites are readable and intact.
  std::string value;
  for (int t = 0; t < kWriterThreads; t++) {
    int found = 0;
    for (int k = 0; k < kKeysPerWriter; k++) {
      std::string key = "w" + std::to_string(t) + "-k" + std::to_string(k);
      Status s = db->Get(ReadOptions(), key, &value);
      if (s.ok()) {
        ASSERT_TRUE(LooksWellFormed(value)) << key;
        found++;
      } else {
        ASSERT_TRUE(s.IsNotFound()) << key << ": " << s.ToString();
      }
    }
    EXPECT_GT(found, 0) << "writer " << t << " left no visible keys";
  }

  // The storm was real and the offload path was actually exercised.
  EXPECT_GT(injector.launches(), 0u);
  host::FcaeCompactionExecutor::RobustnessCounters counters =
      executor.robustness_counters();
  EXPECT_GT(counters.jobs, 0u);
}

TEST_F(ConcurrentStressTest, QuarantineTransitionVisibleToConcurrentReaders) {
  // The card drops off the bus mid-run: the breaker opens, compactions
  // fall back to the CPU, and after a repair a probe re-admits the
  // device — all while readers and a property poller keep running.
  // The transition must never produce a torn read, a lost write, or an
  // unreadable health property.
  fpga::DeviceFaultConfig fault_config;
  fault_config.seed = 99;
  fault_config.card_drop_at_launch = 6;
  fpga::DeviceFaultInjector injector(fault_config);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 2;
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);

  host::DeviceHealthOptions health_options;
  health_options.quarantine_threshold = 3;
  health_options.sticky_weight = 3;  // One sticky fault opens the breaker.
  health_options.probe_interval = 2;
  host::DeviceHealthMonitor monitor(health_options);
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &monitor;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db = OpenDb(&executor);

  constexpr int kKeys = 400;
  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};

  std::thread reader([&]() {
    Random rnd(5);
    std::string value;
    while (!stop.load(std::memory_order_acquire)) {
      std::string key = "q" + std::to_string(rnd.Uniform(kKeys));
      Status s = db->Get(ReadOptions(), key, &value);
      if (s.ok()) {
        if (!LooksWellFormed(value)) torn.fetch_add(1);
      } else if (!s.IsNotFound()) {
        torn.fetch_add(1);
      }
    }
  });

  std::thread poller([&]() {
    std::string health;
    while (!stop.load(std::memory_order_acquire)) {
      // Readable through quarantine, fallback, and re-admission alike.
      if (!db->GetProperty("fcae.device-health", &health) ||
          health.find("executor=fcae") == std::string::npos) {
        torn.fetch_add(1);
      }
    }
  });

  // Phase 1: write through the card drop. The drop happens on the 6th
  // kernel launch, well inside this workload.
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  Random rnd(11);
  WriteOptions wo;
  for (int i = 1; i <= 4000; i++) {
    std::string key = "q" + std::to_string(rnd.Uniform(kKeys));
    ASSERT_TRUE(db->Put(wo, key, MakeValue(1, i)).ok());
  }
  impl->TEST_CompactMemTable().IgnoreError();  // faults may be armed
  for (int level = 0; level < kNumLevels - 1; level++) {
    impl->TEST_CompactRange(level, nullptr, nullptr);
  }

  EXPECT_TRUE(injector.card_dropped());
  EXPECT_TRUE(monitor.quarantined());
  EXPECT_GT(monitor.snapshot().jobs_denied, 0u);

  // Phase 2: writes keep landing while quarantined (CPU fallback).
  for (int i = 1; i <= 1500; i++) {
    std::string key = "q" + std::to_string(rnd.Uniform(kKeys));
    ASSERT_TRUE(db->Put(wo, key, MakeValue(2, i)).ok());
  }

  // Phase 3: hot reset; keep compacting until a probe re-admits the
  // card, readers still running throughout.
  injector.RepairCard();
  bool readmitted = false;
  for (int round = 0; round < 12 && !readmitted; round++) {
    for (int i = 0; i < 40; i++) {
      std::string key = "repair" + std::to_string(i);
      ASSERT_TRUE(db->Put(wo, key, MakeValue(3, round)).ok());
    }
    impl->TEST_CompactMemTable().IgnoreError();  // faults may be armed
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
    readmitted = !monitor.quarantined();
  }
  EXPECT_TRUE(readmitted) << monitor.ToString();

  stop.store(true, std::memory_order_release);
  reader.join();
  poller.join();
  ASSERT_EQ(0, torn.load());

  // Post-transition sanity: the DB still serves intact data.
  std::string value;
  int present = 0;
  for (int k = 0; k < kKeys; k++) {
    Status s = db->Get(ReadOptions(), "q" + std::to_string(k), &value);
    if (s.ok()) {
      ASSERT_TRUE(LooksWellFormed(value));
      present++;
    }
  }
  EXPECT_GT(present, 0);
  host::DeviceHealthMonitor::Snapshot snap = monitor.snapshot();
  EXPECT_GE(snap.quarantines, 1u);
  EXPECT_GE(snap.readmissions, 1u);
}

}  // namespace fcae
