#include "util/histogram.h"

#include "gtest/gtest.h"

namespace fcae {

TEST(Histogram, EmptyHistogram) {
  Histogram h;
  ASSERT_EQ(0u, h.Count());
  ASSERT_EQ(0.0, h.Average());
  ASSERT_EQ(0.0, h.StandardDeviation());
}

TEST(Histogram, SingleValue) {
  Histogram h;
  h.Add(42.0);
  ASSERT_EQ(1u, h.Count());
  ASSERT_DOUBLE_EQ(42.0, h.Average());
  ASSERT_DOUBLE_EQ(42.0, h.Min());
  ASSERT_DOUBLE_EQ(42.0, h.Max());
}

TEST(Histogram, AverageAndBounds) {
  Histogram h;
  for (int i = 1; i <= 100; i++) {
    h.Add(i);
  }
  ASSERT_EQ(100u, h.Count());
  ASSERT_DOUBLE_EQ(50.5, h.Average());
  ASSERT_DOUBLE_EQ(1.0, h.Min());
  ASSERT_DOUBLE_EQ(100.0, h.Max());
}

TEST(Histogram, MedianApproximation) {
  Histogram h;
  for (int i = 1; i <= 1000; i++) {
    h.Add(i);
  }
  double median = h.Median();
  // Bucketed median is approximate; allow 15% tolerance.
  ASSERT_GT(median, 500 * 0.85);
  ASSERT_LT(median, 500 * 1.15);
}

TEST(Histogram, PercentileOrdering) {
  Histogram h;
  for (int i = 1; i <= 10000; i++) {
    h.Add(i % 997);
  }
  ASSERT_LE(h.Percentile(50), h.Percentile(90));
  ASSERT_LE(h.Percentile(90), h.Percentile(99));
  ASSERT_LE(h.Percentile(99), h.Max());
  ASSERT_GE(h.Percentile(1), h.Min());
}

TEST(Histogram, Merge) {
  Histogram a;
  Histogram b;
  for (int i = 0; i < 100; i++) {
    a.Add(10);
    b.Add(20);
  }
  a.Merge(b);
  ASSERT_EQ(200u, a.Count());
  ASSERT_DOUBLE_EQ(15.0, a.Average());
  ASSERT_DOUBLE_EQ(10.0, a.Min());
  ASSERT_DOUBLE_EQ(20.0, a.Max());
}

TEST(Histogram, PercentileOnEmptyHistogram) {
  Histogram h;
  // No samples: every percentile is 0, not the min sentinel (the obs
  // metrics exporter relies on this to emit 0 instead of 1.8e308).
  ASSERT_EQ(0.0, h.Percentile(0));
  ASSERT_EQ(0.0, h.Percentile(50));
  ASSERT_EQ(0.0, h.Percentile(99.9));
  ASSERT_EQ(0.0, h.Median());
}

TEST(Histogram, PercentileOnSingleValue) {
  Histogram h;
  h.Add(42.0);
  // Every percentile of a one-sample distribution is that sample:
  // bucket interpolation must clamp to [min, max].
  ASSERT_DOUBLE_EQ(42.0, h.Percentile(1));
  ASSERT_DOUBLE_EQ(42.0, h.Percentile(50));
  ASSERT_DOUBLE_EQ(42.0, h.Percentile(99));
}

TEST(Histogram, MergeEmptyIntoPopulatedIsIdentity) {
  Histogram a;
  a.Add(5.0);
  a.Add(15.0);
  Histogram empty;
  a.Merge(empty);
  // The empty histogram's min sentinel must not leak in.
  ASSERT_EQ(2u, a.Count());
  ASSERT_DOUBLE_EQ(5.0, a.Min());
  ASSERT_DOUBLE_EQ(15.0, a.Max());
  ASSERT_DOUBLE_EQ(10.0, a.Average());
}

TEST(Histogram, MergePopulatedIntoEmptyAdoptsBounds) {
  Histogram empty;
  Histogram b;
  b.Add(7.0);
  empty.Merge(b);
  ASSERT_EQ(1u, empty.Count());
  ASSERT_DOUBLE_EQ(7.0, empty.Min());
  ASSERT_DOUBLE_EQ(7.0, empty.Max());
  ASSERT_DOUBLE_EQ(7.0, empty.Percentile(50));
}

TEST(Histogram, MergeTwoEmptiesStaysEmpty) {
  Histogram a;
  Histogram b;
  a.Merge(b);
  ASSERT_EQ(0u, a.Count());
  ASSERT_EQ(0.0, a.Average());
  ASSERT_EQ(0.0, a.Percentile(99));
}

TEST(Histogram, Clear) {
  Histogram h;
  h.Add(3.0);
  h.Clear();
  ASSERT_EQ(0u, h.Count());
  ASSERT_EQ(0.0, h.Average());
}

TEST(Histogram, ToStringDoesNotCrash) {
  Histogram h;
  h.Add(1);
  h.Add(1000000);
  std::string s = h.ToString();
  ASSERT_FALSE(s.empty());
}

}  // namespace fcae
