#include "util/status.h"

#include <utility>

#include "gtest/gtest.h"

namespace fcae {

TEST(Status, OK) {
  Status s;
  ASSERT_TRUE(s.ok());
  ASSERT_EQ("OK", s.ToString());
  ASSERT_TRUE(Status::OK().ok());
}

TEST(Status, NotFound) {
  Status s = Status::NotFound("custom NotFound status message");
  ASSERT_FALSE(s.ok());
  ASSERT_TRUE(s.IsNotFound());
  ASSERT_FALSE(s.IsCorruption());
  ASSERT_EQ("NotFound: custom NotFound status message", s.ToString());
}

TEST(Status, TwoPartMessage) {
  Status s = Status::IOError("file.ldb", "no such file");
  ASSERT_TRUE(s.IsIOError());
  ASSERT_EQ("IO error: file.ldb: no such file", s.ToString());
}

TEST(Status, AllCodes) {
  ASSERT_TRUE(Status::Corruption("x").IsCorruption());
  ASSERT_TRUE(Status::NotSupported("x").IsNotSupported());
  ASSERT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  ASSERT_TRUE(Status::IOError("x").IsIOError());
  ASSERT_TRUE(Status::Busy("x").IsBusy());
  ASSERT_EQ("Corruption: x", Status::Corruption("x").ToString());
  ASSERT_EQ("Not implemented: x", Status::NotSupported("x").ToString());
  ASSERT_EQ("Invalid argument: x", Status::InvalidArgument("x").ToString());
  ASSERT_EQ("Busy: x", Status::Busy("x").ToString());
}

TEST(Status, CopyAndMove) {
  Status original = Status::NotFound("message");
  Status copy = original;
  ASSERT_TRUE(copy.IsNotFound());
  ASSERT_EQ(original.ToString(), copy.ToString());

  Status moved = std::move(copy);
  ASSERT_TRUE(moved.IsNotFound());
  ASSERT_EQ("NotFound: message", moved.ToString());

  Status assigned;
  assigned = moved;
  ASSERT_TRUE(assigned.IsNotFound());
}

TEST(Status, MoveAssignOverOk) {
  Status ok = Status::OK();
  Status err = Status::IOError("disk gone");
  ok = std::move(err);
  ASSERT_TRUE(ok.IsIOError());
}

namespace {

Status MakeError() { return Status::IOError("transient"); }

}  // namespace

// Status is class-level [[nodiscard]]: dropping a returned Status is a
// compile-time warning (an error under FCAE_WERROR). IgnoreError() is
// the explicit opt-out for genuinely best-effort calls; it must compile
// against temporaries and const references and leave the value intact.
TEST(Status, IgnoreErrorIsExplicitDiscard) {
  MakeError().IgnoreError();  // temporary: the canonical call shape

  const Status err = MakeError();
  err.IgnoreError();  // const lvalue
  ASSERT_TRUE(err.IsIOError());
  ASSERT_EQ("IO error: transient", err.ToString());

  Status ok;
  ok.IgnoreError();
  ASSERT_TRUE(ok.ok());
}

TEST(Status, MovedFromIsReusable) {
  Status source = Status::Corruption("bad block");
  Status sink = std::move(source);
  ASSERT_TRUE(sink.IsCorruption());

  // The moved-from Status must stay a valid object: assignable and
  // queryable, so pooled/reused Status fields never hold a trap value.
  source = Status::NotFound("later");
  ASSERT_TRUE(source.IsNotFound());
  ASSERT_EQ("NotFound: later", source.ToString());
}

TEST(Status, MoveConstructFromOk) {
  Status ok = Status::OK();
  Status moved = std::move(ok);
  ASSERT_TRUE(moved.ok());
  ASSERT_EQ("OK", moved.ToString());
}

}  // namespace fcae
