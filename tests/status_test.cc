#include "util/status.h"

#include <utility>

#include "gtest/gtest.h"

namespace fcae {

TEST(Status, OK) {
  Status s;
  ASSERT_TRUE(s.ok());
  ASSERT_EQ("OK", s.ToString());
  ASSERT_TRUE(Status::OK().ok());
}

TEST(Status, NotFound) {
  Status s = Status::NotFound("custom NotFound status message");
  ASSERT_FALSE(s.ok());
  ASSERT_TRUE(s.IsNotFound());
  ASSERT_FALSE(s.IsCorruption());
  ASSERT_EQ("NotFound: custom NotFound status message", s.ToString());
}

TEST(Status, TwoPartMessage) {
  Status s = Status::IOError("file.ldb", "no such file");
  ASSERT_TRUE(s.IsIOError());
  ASSERT_EQ("IO error: file.ldb: no such file", s.ToString());
}

TEST(Status, AllCodes) {
  ASSERT_TRUE(Status::Corruption("x").IsCorruption());
  ASSERT_TRUE(Status::NotSupported("x").IsNotSupported());
  ASSERT_TRUE(Status::InvalidArgument("x").IsInvalidArgument());
  ASSERT_TRUE(Status::IOError("x").IsIOError());
  ASSERT_TRUE(Status::Busy("x").IsBusy());
  ASSERT_EQ("Corruption: x", Status::Corruption("x").ToString());
  ASSERT_EQ("Not implemented: x", Status::NotSupported("x").ToString());
  ASSERT_EQ("Invalid argument: x", Status::InvalidArgument("x").ToString());
  ASSERT_EQ("Busy: x", Status::Busy("x").ToString());
}

TEST(Status, CopyAndMove) {
  Status original = Status::NotFound("message");
  Status copy = original;
  ASSERT_TRUE(copy.IsNotFound());
  ASSERT_EQ(original.ToString(), copy.ToString());

  Status moved = std::move(copy);
  ASSERT_TRUE(moved.IsNotFound());
  ASSERT_EQ("NotFound: message", moved.ToString());

  Status assigned;
  assigned = moved;
  ASSERT_TRUE(assigned.IsNotFound());
}

TEST(Status, MoveAssignOverOk) {
  Status ok = Status::OK();
  Status err = Status::IOError("disk gone");
  ok = std::move(err);
  ASSERT_TRUE(ok.IsIOError());
}

}  // namespace fcae
