#include "fpga/resource_model.h"

#include "gtest/gtest.h"

namespace fcae {
namespace fpga {

namespace {

EngineConfig MakeConfig(int n, int win, int v) {
  EngineConfig config;
  config.num_inputs = n;
  config.input_width = win;
  config.value_width = v;
  return config;
}

}  // namespace

// The model must reproduce every synthesis point of Table VII within
// 2 percentage points.
TEST(ResourceModelTest, ReproducesTableVII) {
  struct Row {
    int n, win, v;
    double bram, ff, lut;
  };
  const Row kTable7[] = {
      {2, 64, 16, 18, 10, 72}, {2, 64, 8, 17, 9, 63},
      {9, 64, 8, 35, 27, 206}, {9, 16, 16, 30, 18, 125},
      {9, 16, 8, 26, 16, 103}, {9, 8, 8, 25, 14, 84},
  };
  for (const Row& row : kTable7) {
    ResourceUsage usage = ResourceModel::Estimate(
        MakeConfig(row.n, row.win, row.v));
    EXPECT_NEAR(row.bram, usage.bram_pct, 2.0)
        << "N=" << row.n << " Win=" << row.win << " V=" << row.v;
    EXPECT_NEAR(row.ff, usage.ff_pct, 2.0)
        << "N=" << row.n << " Win=" << row.win << " V=" << row.v;
    EXPECT_NEAR(row.lut, usage.lut_pct, 2.0)
        << "N=" << row.n << " Win=" << row.win << " V=" << row.v;
  }
}

TEST(ResourceModelTest, NineInputFullWidthDoesNotFit) {
  // Paper: "the exact same configuration as N=2 is far from acceptable"
  // (206% LUT).
  EXPECT_FALSE(ResourceModel::Fits(MakeConfig(9, 64, 8)));
  EXPECT_FALSE(ResourceModel::Fits(MakeConfig(9, 16, 16)));
  EXPECT_FALSE(ResourceModel::Fits(MakeConfig(9, 16, 8)));
  EXPECT_TRUE(ResourceModel::Fits(MakeConfig(9, 8, 8)));
}

TEST(ResourceModelTest, TwoInputConfigsFit) {
  EXPECT_TRUE(ResourceModel::Fits(MakeConfig(2, 64, 16)));
  EXPECT_TRUE(ResourceModel::Fits(MakeConfig(2, 64, 8)));
  EXPECT_TRUE(ResourceModel::Fits(MakeConfig(2, 64, 64)));
}

TEST(ResourceModelTest, LargestFittingConfigMatchesPaperChoice) {
  // The paper picks W_in = 8, V = 8 for the 9-input engine.
  EngineConfig best = ResourceModel::LargestFittingConfig(9);
  EXPECT_EQ(9, best.num_inputs);
  EXPECT_EQ(8, best.input_width);
  EXPECT_EQ(8, best.value_width);
  EXPECT_TRUE(ResourceModel::Fits(best));

  // The 2-input engine can afford the full-width configuration.
  EngineConfig best2 = ResourceModel::LargestFittingConfig(2);
  EXPECT_EQ(64, best2.input_width);
  EXPECT_TRUE(ResourceModel::Fits(best2));
}

TEST(ResourceModelTest, UsageGrowsMonotonically) {
  // More inputs, wider ports and wider datapaths never shrink area.
  double prev = 0;
  for (int n = 1; n <= 10; n++) {
    double lut = ResourceModel::Estimate(MakeConfig(n, 16, 8)).lut_pct;
    EXPECT_GT(lut, prev);
    prev = lut;
  }
  prev = 0;
  for (int win : {8, 16, 32, 64}) {
    double lut = ResourceModel::Estimate(MakeConfig(4, win, 8)).lut_pct;
    EXPECT_GT(lut, prev);
    prev = lut;
  }
  prev = 0;
  for (int v : {8, 16, 32, 64}) {
    double lut = ResourceModel::Estimate(MakeConfig(4, 64, v)).lut_pct;
    EXPECT_GT(lut, prev);
    prev = lut;
  }
}

TEST(ResourceModelTest, ToStringMentionsOverflow) {
  ResourceUsage bad = ResourceModel::Estimate(MakeConfig(9, 64, 8));
  EXPECT_NE(std::string::npos, bad.ToString().find("does not fit"));
  ResourceUsage good = ResourceModel::Estimate(MakeConfig(2, 64, 16));
  EXPECT_EQ(std::string::npos, good.ToString().find("does not fit"));
}

}  // namespace fpga
}  // namespace fcae
