// EventListener framework (obs/event_listener.h) wired through the DB,
// the offload executor and the device health monitor:
//  - flush and compaction events arrive in lifecycle order with
//    populated payloads;
//  - a fault-injected device produces OnOffloadRetry / OnOffloadFallback
//    and a completed-compaction payload with fell_back=true;
//  - write stalls produce paired Begin/End events per cause;
//  - a failing disk produces OnBackgroundError, and recovery produces
//    OnBackgroundErrorResumed;
//  - circuit-breaker transitions produce OnDeviceHealthChange;
//  - Options::trace_ring_size clips the ring and the drop counter shows
//    up in fcae.metrics;
//  - Options::stats_dump_period_sec emits "fcae.stats" records through
//    Options::info_log, and GetProperty("fcae.stats") carries the
//    interval section.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpga/fault_injector.h"
#include "gtest/gtest.h"
#include "host/device_health_monitor.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "mini_json.h"
#include "obs/event_listener.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "util/mem_env.h"
#include "util/mutex.h"
#include "util/random.h"

namespace fcae {
namespace {

using mini_json::Value;

Value MustParse(const std::string& text) {
  Value v;
  std::string error;
  EXPECT_TRUE(mini_json::Parse(text, &v, &error))
      << error << "\n"
      << text.substr(0, 2000);
  return v;
}

/// Records every callback as a named entry. Callbacks fire on writer
/// and background threads concurrently, so everything is under a lock.
class RecordingListener : public obs::EventListener {
 public:
  struct Event {
    std::string name;
    obs::FlushJobInfo flush;
    obs::CompactionJobInfo compaction;
    obs::OffloadRetryInfo retry;
    obs::OffloadFallbackInfo fallback;
    obs::WriteStallInfo stall;
    obs::BackgroundErrorInfo bg_error;
    obs::DeviceHealthChangeInfo health;
  };

  void OnFlushBegin(const obs::FlushJobInfo& info) override {
    Event e;
    e.name = "flush_begin";
    e.flush = info;
    Push(e);
  }
  void OnFlushCompleted(const obs::FlushJobInfo& info) override {
    Event e;
    e.name = "flush_completed";
    e.flush = info;
    Push(e);
  }
  void OnCompactionBegin(const obs::CompactionJobInfo& info) override {
    Event e;
    e.name = "compaction_begin";
    e.compaction = info;
    Push(e);
  }
  void OnCompactionCompleted(const obs::CompactionJobInfo& info) override {
    Event e;
    e.name = "compaction_completed";
    e.compaction = info;
    Push(e);
  }
  void OnOffloadRetry(const obs::OffloadRetryInfo& info) override {
    Event e;
    e.name = "offload_retry";
    e.retry = info;
    Push(e);
  }
  void OnOffloadFallback(const obs::OffloadFallbackInfo& info) override {
    Event e;
    e.name = "offload_fallback";
    e.fallback = info;
    Push(e);
  }
  void OnWriteStallBegin(const obs::WriteStallInfo& info) override {
    Event e;
    e.name = "stall_begin";
    e.stall = info;
    Push(e);
  }
  void OnWriteStallEnd(const obs::WriteStallInfo& info) override {
    Event e;
    e.name = "stall_end";
    e.stall = info;
    Push(e);
  }
  void OnBackgroundError(const obs::BackgroundErrorInfo& info) override {
    Event e;
    e.name = "bg_error";
    e.bg_error = info;
    Push(e);
  }
  void OnBackgroundErrorResumed() override {
    Event e;
    e.name = "bg_resumed";
    Push(e);
  }
  void OnDeviceHealthChange(
      const obs::DeviceHealthChangeInfo& info) override {
    Event e;
    e.name = "health_change";
    e.health = info;
    Push(e);
  }

  std::vector<Event> events() const {
    MutexLock lock(&mutex_);
    return events_;
  }
  std::vector<Event> Named(const std::string& name) const {
    std::vector<Event> out;
    for (const Event& e : events()) {
      if (e.name == name) out.push_back(e);
    }
    return out;
  }
  int Count(const std::string& name) const {
    return static_cast<int>(Named(name).size());
  }
  /// Index of the first event with `name`, or -1.
  int FirstIndex(const std::string& name) const {
    const std::vector<Event> all = events();
    for (size_t i = 0; i < all.size(); i++) {
      if (all[i].name == name) return static_cast<int>(i);
    }
    return -1;
  }

 private:
  void Push(const Event& e) {
    MutexLock lock(&mutex_);
    events_.push_back(e);
  }

  mutable Mutex mutex_;
  std::vector<Event> events_;
};

class EventListenerTest : public testing::Test {
 public:
  EventListenerTest() : env_(NewMemEnv(Env::Default())) {}

  std::unique_ptr<DB> OpenDb(Options options) {
    options.env = options.env != nullptr ? options.env : env_.get();
    options.create_if_missing = true;
    if (options.write_buffer_size == Options().write_buffer_size) {
      options.write_buffer_size = 64 * 1024;
    }
    options.listeners.push_back(&listener_);
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/listener_db", &db).ok());
    return std::unique_ptr<DB>(db);
  }

  void RunWorkload(DB* db, int writes = 4000) {
    Random rnd(301);
    WriteOptions wo;
    for (int i = 0; i < writes; i++) {
      std::string key = "user" + std::to_string(rnd.Uniform(800));
      ASSERT_TRUE(
          db->Put(wo, key, std::string(64 + rnd.Uniform(100), 'v')).ok());
    }
    auto* impl = reinterpret_cast<DBImpl*>(db);
    impl->TEST_CompactMemTable().IgnoreError();
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  std::unique_ptr<Env> env_;
  RecordingListener listener_;
};

TEST_F(EventListenerTest, FlushAndCompactionLifecycle) {
  {
    std::unique_ptr<DB> db = OpenDb(Options());
    RunWorkload(db.get());
  }  // Close the DB so no event is still in flight.

  // Flushes: begins and completions pair up, and the first begin
  // precedes the first completion.
  const int flush_begins = listener_.Count("flush_begin");
  const int flush_completions = listener_.Count("flush_completed");
  EXPECT_GT(flush_begins, 0);
  EXPECT_EQ(flush_begins, flush_completions);
  EXPECT_LT(listener_.FirstIndex("flush_begin"),
            listener_.FirstIndex("flush_completed"));
  for (const auto& e : listener_.Named("flush_completed")) {
    EXPECT_TRUE(e.flush.status.ok());
    EXPECT_EQ("/listener_db", e.flush.db_name);
    EXPECT_GT(e.flush.output_file_number, 0u);
    EXPECT_GT(e.flush.output_bytes, 0u);
  }

  const int compaction_begins = listener_.Count("compaction_begin");
  EXPECT_GT(compaction_begins, 0);
  EXPECT_EQ(compaction_begins, listener_.Count("compaction_completed"));
  EXPECT_LT(listener_.FirstIndex("compaction_begin"),
            listener_.FirstIndex("compaction_completed"));
  for (const auto& e : listener_.Named("compaction_completed")) {
    EXPECT_TRUE(e.compaction.status.ok());
    EXPECT_EQ("/listener_db", e.compaction.db_name);
    EXPECT_EQ(e.compaction.base_level + 1, e.compaction.output_level);
    EXPECT_GT(e.compaction.input_files, 0);
    EXPECT_GE(e.compaction.shards, 1);
    EXPECT_GT(e.compaction.input_bytes, 0u);
  }
}

TEST_F(EventListenerTest, OffloadRetryAndFallback) {
  // Two armed kernel timeouts with max_attempts=2: the first offloaded
  // compaction retries once, gives up, and reruns on the CPU.
  fpga::DeviceFaultConfig fault_config;
  fpga::DeviceFaultInjector injector(fault_config);
  injector.ArmOneShot(fpga::DeviceFaultClass::kKernelTimeout, 1);
  injector.ArmOneShot(fpga::DeviceFaultClass::kKernelTimeout, 2);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 9;
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);
  host::FcaeExecutorOptions exec_options;
  exec_options.max_attempts = 2;
  exec_options.backoff_base_micros = 10;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  {
    Options options;
    options.compaction_threads = 1;  // Faults land on one job, in order.
    options.compaction_executor = &executor;
    std::unique_ptr<DB> db = OpenDb(options);
    RunWorkload(db.get());
  }

  const auto retries = listener_.Named("offload_retry");
  ASSERT_GE(retries.size(), 1u);
  EXPECT_EQ(1, retries[0].retry.attempt);
  EXPECT_FALSE(retries[0].retry.reason.empty());

  const auto fallbacks = listener_.Named("offload_fallback");
  ASSERT_GE(fallbacks.size(), 1u);
  EXPECT_FALSE(fallbacks[0].fallback.reason.empty());
  EXPECT_LT(listener_.FirstIndex("offload_retry"),
            listener_.FirstIndex("offload_fallback"));

  // The failed job's completion payload records the fallback; at least
  // one later compaction completed on the device.
  bool saw_fallback_completion = false;
  bool saw_offloaded_completion = false;
  for (const auto& e : listener_.Named("compaction_completed")) {
    saw_fallback_completion |= e.compaction.fell_back;
    saw_offloaded_completion |= e.compaction.offloaded;
  }
  EXPECT_TRUE(saw_fallback_completion);
  EXPECT_TRUE(saw_offloaded_completion);
}

TEST_F(EventListenerTest, WriteStallBeginEndPairs) {
  {
    Options options;
    // Hair-trigger L0 limits so the workload crosses the slowdown and
    // stop thresholds.
    options.l0_slowdown_writes_trigger = 2;
    options.l0_stop_writes_trigger = 6;
    std::unique_ptr<DB> db = OpenDb(options);
    RunWorkload(db.get(), 8000);
  }

  const auto begins = listener_.Named("stall_begin");
  const auto ends = listener_.Named("stall_end");
  ASSERT_GT(begins.size(), 0u);
  EXPECT_EQ(begins.size(), ends.size());
  EXPECT_LT(listener_.FirstIndex("stall_begin"),
            listener_.FirstIndex("stall_end"));

  // Begin/End counts match per cause too (stalls of different causes
  // can interleave only with themselves on the single writer thread).
  std::map<obs::WriteStallCause, int> begin_by_cause;
  std::map<obs::WriteStallCause, int> end_by_cause;
  for (const auto& e : begins) begin_by_cause[e.stall.cause]++;
  for (const auto& e : ends) end_by_cause[e.stall.cause]++;
  EXPECT_EQ(begin_by_cause, end_by_cause);

  for (const auto& e : begins) {
    EXPECT_EQ(0u, e.stall.micros);  // Duration is an End-side fact.
  }
  uint64_t total_stall_micros = 0;
  for (const auto& e : ends) total_stall_micros += e.stall.micros;
  EXPECT_GT(total_stall_micros, 0u);

  // The cause names render (used by listeners that log).
  for (const auto& entry : begin_by_cause) {
    EXPECT_NE(nullptr, obs::WriteStallCauseName(entry.first));
  }
}

// Env wrapper whose write paths can be poisoned at runtime; trimmed
// copy of the one in fault_injection_test.cc.
class FailingWritableFile : public WritableFile {
 public:
  FailingWritableFile(WritableFile* target, std::atomic<bool>* fail)
      : target_(target), fail_(fail) {}
  Status Append(const Slice& data) override {
    if (fail_->load()) return Status::IOError("injected write fault");
    return target_->Append(data);
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override {
    if (fail_->load()) return Status::IOError("injected flush fault");
    return target_->Flush();
  }
  Status Sync() override {
    if (fail_->load()) return Status::IOError("injected sync fault");
    return target_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> target_;
  std::atomic<bool>* fail_;
};

class FailingEnv : public Env {
 public:
  explicit FailingEnv(Env* target) : target_(target) {}
  void StartFailingWrites() { fail_.store(true); }
  void StopFailingWrites() { fail_.store(false); }

  Status NewSequentialFile(const std::string& f,
                           SequentialFile** r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f,
                             RandomAccessFile** r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  // Only table (.ldb) creation fails: the WAL keeps rotating, so the
  // failure surfaces in the background flush — the path that records a
  // background error — rather than synchronously in the writer.
  static bool IsTableFile(const std::string& f) {
    return f.size() > 4 && f.compare(f.size() - 4, 4, ".ldb") == 0;
  }
  Status NewWritableFile(const std::string& f, WritableFile** r) override {
    if (fail_.load() && IsTableFile(f)) {
      *r = nullptr;
      return Status::IOError("injected create fault");
    }
    WritableFile* inner;
    Status s = target_->NewWritableFile(f, &inner);
    if (s.ok()) *r = new FailingWritableFile(inner, &fail_);
    return s;
  }
  Status NewAppendableFile(const std::string& f, WritableFile** r) override {
    if (fail_.load() && IsTableFile(f)) {
      *r = nullptr;
      return Status::IOError("injected create fault");
    }
    WritableFile* inner;
    Status s = target_->NewAppendableFile(f, &inner);
    if (s.ok()) *r = new FailingWritableFile(inner, &fail_);
    return s;
  }
  bool FileExists(const std::string& f) override {
    return target_->FileExists(f);
  }
  Status GetChildren(const std::string& d,
                     std::vector<std::string>* r) override {
    return target_->GetChildren(d, r);
  }
  Status RemoveFile(const std::string& f) override {
    return target_->RemoveFile(f);
  }
  Status CreateDir(const std::string& d) override {
    return target_->CreateDir(d);
  }
  Status RemoveDir(const std::string& d) override {
    return target_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    return target_->GetFileSize(f, s);
  }
  Status RenameFile(const std::string& a, const std::string& b) override {
    if (fail_.load()) return Status::IOError("injected rename fault");
    return target_->RenameFile(a, b);
  }
  Status LockFile(const std::string& f, FileLock** l) override {
    return target_->LockFile(f, l);
  }
  Status UnlockFile(FileLock* l) override { return target_->UnlockFile(l); }
  void Schedule(void (*fn)(void*), void* arg) override {
    target_->Schedule(fn, arg);
  }
  void SchedulePool(const char* pool, int max_threads, void (*fn)(void*),
                    void* arg) override {
    target_->SchedulePool(pool, max_threads, fn, arg);
  }
  void StartThread(void (*fn)(void*), void* arg) override {
    target_->StartThread(fn, arg);
  }
  uint64_t NowMicros() override { return target_->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    target_->SleepForMicroseconds(micros);
  }

 private:
  Env* target_;
  std::atomic<bool> fail_{false};
};

TEST_F(EventListenerTest, BackgroundErrorAndResume) {
  FailingEnv failing_env(env_.get());
  std::unique_ptr<DB> db;
  {
    Options options;
    options.env = &failing_env;
    db = OpenDb(options);
  }
  WriteOptions wo;
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db->Put(wo, "k" + std::to_string(i), "v").ok());
  }

  failing_env.StartFailingWrites();
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  EXPECT_FALSE(impl->TEST_CompactMemTable().ok());
  EXPECT_GE(listener_.Count("bg_error"), 1);
  const auto errors = listener_.Named("bg_error");
  EXPECT_FALSE(errors[0].bg_error.status.ok());
  EXPECT_FALSE(errors[0].bg_error.hard);  // Retryable I/O is soft.

  failing_env.StopFailingWrites();
  ASSERT_TRUE(db->Resume().ok());
  EXPECT_GE(listener_.Count("bg_resumed"), 1);
  EXPECT_LT(listener_.FirstIndex("bg_error"),
            listener_.FirstIndex("bg_resumed"));
  db.reset();
}

TEST_F(EventListenerTest, DeviceHealthChangeOnBreakerTransitions) {
  obs::EventNotifier notifier({&listener_});
  host::DeviceHealthOptions health_options;
  health_options.quarantine_threshold = 2;
  health_options.probe_interval = 1;
  host::DeviceHealthMonitor monitor(health_options);
  monitor.AttachNotifier(&notifier);

  monitor.RecordJobFailure(/*sticky=*/false);
  EXPECT_EQ(0, listener_.Count("health_change"));  // Below threshold.
  monitor.RecordJobFailure(/*sticky=*/false);
  auto changes = listener_.Named("health_change");
  ASSERT_EQ(1u, changes.size());
  EXPECT_TRUE(changes[0].health.quarantined);
  EXPECT_EQ(2, changes[0].health.consecutive_failures);

  // A successful probe closes the breaker and fires the counterpart.
  EXPECT_TRUE(monitor.Admit());  // probe_interval=1: first ask probes.
  monitor.RecordJobSuccess();
  changes = listener_.Named("health_change");
  ASSERT_EQ(2u, changes.size());
  EXPECT_FALSE(changes[1].health.quarantined);
  EXPECT_EQ(0, changes[1].health.consecutive_failures);
  EXPECT_FALSE(monitor.quarantined());
}

TEST_F(EventListenerTest, TraceRingSizeClipsAndCountsDrops) {
  Options options;
  // Far below one workload's event count. The DB clamps the knob to a
  // floor of 16, so ask for less and expect the floor.
  options.trace_ring_size = 8;
  std::unique_ptr<DB> db = OpenDb(options);
  RunWorkload(db.get());

  std::string json;
  ASSERT_TRUE(db->GetProperty("fcae.trace", &json));
  Value trace = MustParse(json);
  EXPECT_LE(trace["traceEvents"].array.size(), 16u);
  EXPECT_GT(trace["eventsDropped"].number, 0.0);

  ASSERT_TRUE(db->GetProperty("fcae.metrics", &json));
  Value metrics = MustParse(json);
  EXPECT_GT(metrics["counters"]["obs.trace.dropped_events"].number, 0.0);
}

class CapturingLogger : public obs::Logger {
 public:
  void Log(const obs::LogRecord& record) override {
    MutexLock lock(&mutex_);
    records_.push_back(record);
  }
  std::vector<obs::LogRecord> records() const {
    MutexLock lock(&mutex_);
    return records_;
  }

 private:
  mutable Mutex mutex_;
  std::vector<obs::LogRecord> records_;
};

TEST_F(EventListenerTest, StatsDumperEmitsThroughInfoLog) {
  CapturingLogger logger;
  Options options;
  options.stats_dump_period_sec = 1;
  options.info_log = &logger;
  std::unique_ptr<DB> db = OpenDb(options);

  WriteOptions wo;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db->Put(wo, "k" + std::to_string(i), "v").ok());
  }
  // Two periods with headroom; the dumper wakes in 10ms slices.
  Env::Default()->SleepForMicroseconds(2500 * 1000);
  db.reset();  // Stops the dumper; no records arrive after this.

  const std::vector<obs::LogRecord> records = logger.records();
  ASSERT_GE(records.size(), 1u);
  for (const obs::LogRecord& r : records) {
    EXPECT_EQ("fcae.stats", r.tag);
    EXPECT_EQ(obs::LogRecord::Level::kInfo, r.level);
    EXPECT_NE(std::string::npos, r.message.find("Interval"));
    ASSERT_EQ(1u, r.fields.size());
    EXPECT_EQ("seq", r.fields[0].first);
  }
  // Sequence numbers are 1-based and increasing.
  EXPECT_EQ("1", records[0].fields[0].second);

  // The canonical rendering carries the tag and the key/value fields.
  const std::string line = obs::FormatLogRecord(records[0]);
  EXPECT_NE(std::string::npos, line.find("fcae.stats"));
  EXPECT_NE(std::string::npos, line.find("seq=1"));
}

TEST_F(EventListenerTest, StatsPropertyHasIntervalSection) {
  std::unique_ptr<DB> db = OpenDb(Options());
  RunWorkload(db.get(), 2000);

  std::string first;
  ASSERT_TRUE(db->GetProperty("fcae.stats", &first));
  EXPECT_NE(std::string::npos, first.find("Interval"));

  // Quiet window: the second read's interval section reports zero new
  // flushes while the cumulative section still shows the history.
  std::string second;
  ASSERT_TRUE(db->GetProperty("fcae.stats", &second));
  EXPECT_NE(std::string::npos, second.find("Interval"));
  EXPECT_NE(std::string::npos, second.find("flush"));
}

}  // namespace
}  // namespace fcae
