#include "fpga/compaction_engine.h"

#include <algorithm>
#include <map>
#include <memory>

#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "host/cpu_compactor.h"
#include "util/mem_env.h"

namespace fcae {
namespace fpga {

using fpga_test::BuildDeviceInput;
using fpga_test::FlattenOutput;
using fpga_test::MakeRun;
using fpga_test::TestKv;

class FpgaEngineTest : public testing::Test {
 public:
  FpgaEngineTest() : env_(NewMemEnv(Env::Default())) {
    options_.env = env_.get();
    config_.num_inputs = 2;
    config_.value_width = 16;
  }

  /// Stages each run as one DeviceInput.
  void Stage(const std::vector<std::vector<std::vector<TestKv>>>& runs) {
    inputs_.clear();
    for (size_t i = 0; i < runs.size(); i++) {
      auto input = std::make_unique<DeviceInput>();
      ASSERT_TRUE(BuildDeviceInput(env_.get(), options_, runs[i],
                                   static_cast<int>(i), input.get())
                      .ok());
      inputs_.push_back(std::move(input));
    }
  }

  /// Runs the engine over the staged inputs.
  Status RunEngine(uint64_t snapshot, bool drop_deletions,
                   DeviceOutput* output, EngineStats* stats) {
    std::vector<const DeviceInput*> ptrs;
    for (const auto& in : inputs_) ptrs.push_back(in.get());
    CompactionEngine engine(config_, ptrs, snapshot, drop_deletions, output);
    Status s = engine.Run();
    if (s.ok()) *stats = engine.stats();
    return s;
  }

  std::unique_ptr<Env> env_;
  Options options_;
  EngineConfig config_;
  std::vector<std::unique_ptr<DeviceInput>> inputs_;
};

TEST_F(FpgaEngineTest, MergesTwoDisjointRuns) {
  auto run_a = MakeRun("key", 0, 500, 2, 1000, 64);     // Even keys.
  auto run_b = MakeRun("key", 1, 500, 2, 2000, 64);     // Odd keys.
  Stage({{run_a}, {run_b}});

  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());

  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(1000u, got.size());
  EXPECT_EQ(1000u, stats.records_in);
  EXPECT_EQ(1000u, stats.records_out);
  EXPECT_EQ(0u, stats.records_dropped);
  EXPECT_GT(stats.cycles, 0u);

  // Sorted by internal key and matching the interleaved expectation.
  for (size_t i = 1; i < got.size(); i++) {
    ASSERT_LT(ExtractUserKey(got[i - 1].first).ToString(),
              ExtractUserKey(got[i].first).ToString());
  }
}

TEST_F(FpgaEngineTest, DropsSupersededVersions) {
  // Input A (newer sequence numbers) overwrites keys in input B.
  auto newer = MakeRun("key", 0, 300, 1, 5000, 32);
  auto older = MakeRun("key", 0, 300, 1, 1000, 32);
  Stage({{newer}, {older}});

  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());

  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(300u, got.size());
  EXPECT_EQ(600u, stats.records_in);
  EXPECT_EQ(300u, stats.records_dropped);
  for (const auto& kv : got) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(kv.first, &parsed));
    EXPECT_GE(parsed.sequence, 5000u);  // Only the new versions survive.
  }
}

TEST_F(FpgaEngineTest, SnapshotPreservesOldVersions) {
  auto newer = MakeRun("key", 0, 100, 1, 5000, 32);
  auto older = MakeRun("key", 0, 100, 1, 1000, 32);
  Stage({{newer}, {older}});

  DeviceOutput output;
  EngineStats stats;
  // A snapshot at sequence 3000 pins the old versions.
  ASSERT_TRUE(RunEngine(3000, true, &output, &stats).ok());

  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(200u, got.size());
  EXPECT_EQ(0u, stats.records_dropped);
}

TEST_F(FpgaEngineTest, DeletionMarkersDroppedOnlyAtBaseLevel) {
  auto deletions = MakeRun("key", 0, 200, 1, 5000, 0, kTypeDeletion);
  auto values = MakeRun("key", 0, 200, 1, 1000, 32);

  {
    // drop_deletions = true: everything vanishes.
    Stage({{deletions}, {values}});
    DeviceOutput output;
    EngineStats stats;
    ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
    std::vector<std::pair<std::string, std::string>> got;
    ASSERT_TRUE(FlattenOutput(output, &got).ok());
    EXPECT_EQ(0u, got.size());
    EXPECT_EQ(400u, stats.records_dropped);
    EXPECT_TRUE(output.tables.empty());
  }
  {
    // drop_deletions = false: markers must survive (deeper levels may
    // hold the deleted keys).
    Stage({{deletions}, {values}});
    DeviceOutput output;
    EngineStats stats;
    ASSERT_TRUE(RunEngine(kNoSnapshot, false, &output, &stats).ok());
    std::vector<std::pair<std::string, std::string>> got;
    ASSERT_TRUE(FlattenOutput(output, &got).ok());
    EXPECT_EQ(200u, got.size());  // Markers kept, old values dropped.
    for (const auto& kv : got) {
      ParsedInternalKey parsed;
      ASSERT_TRUE(ParseInternalKey(kv.first, &parsed));
      EXPECT_EQ(kTypeDeletion, parsed.type);
    }
  }
}

TEST_F(FpgaEngineTest, MultiSstableRunsConcatenate) {
  // One input made of three 2-MB-ish tables forming one sorted run.
  std::vector<std::vector<TestKv>> run;
  run.push_back(MakeRun("key", 0, 400, 1, 100, 128));
  run.push_back(MakeRun("key", 400, 400, 1, 500, 128));
  run.push_back(MakeRun("key", 800, 400, 1, 900, 128));
  auto other = MakeRun("key", 1200, 100, 1, 2000, 128);
  Stage({run, {other}});

  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(1300u, got.size());
}

TEST_F(FpgaEngineTest, NineInputOverlappingRuns) {
  config_.num_inputs = 9;
  config_.input_width = 8;
  config_.value_width = 8;

  std::vector<std::vector<std::vector<TestKv>>> runs;
  std::map<std::string, std::string> model;  // user key -> value
  for (int i = 0; i < 9; i++) {
    // Overlapping strided runs with distinct sequence ranges.
    auto run = MakeRun("key", i, 150, 9, 1000 * (i + 1), 64);
    for (const TestKv& kv : run) {
      model[kv.user_key] = kv.value;  // All user keys distinct here.
    }
    runs.push_back({run});
  }
  Stage(runs);

  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(model.size(), got.size());
  auto expected = model.begin();
  for (const auto& kv : got) {
    ASSERT_EQ(expected->first, ExtractUserKey(kv.first).ToString());
    ASSERT_EQ(expected->second, kv.second);
    ++expected;
  }
}

TEST_F(FpgaEngineTest, SstableRolloverAtThreshold) {
  config_.sstable_threshold = 64 * 1024;  // Small, to force rollover.
  config_.compress_output = false;        // Keep output sizes predictable.
  auto run_a = MakeRun("key", 0, 600, 2, 1000, 256);
  auto run_b = MakeRun("key", 1, 600, 2, 2000, 256);
  Stage({{run_a}, {run_b}});

  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
  ASSERT_GT(output.tables.size(), 1u);
  for (const DeviceOutputTable& t : output.tables) {
    ASSERT_FALSE(t.index_entries.empty());
    ASSERT_GT(t.num_entries, 0u);
    // Bounds recorded for MetaOut must bracket the table contents.
    ASSERT_LE(t.smallest_key, t.largest_key);
  }
  // Tables are ordered and non-overlapping.
  for (size_t i = 1; i < output.tables.size(); i++) {
    ASSERT_LT(ExtractUserKey(output.tables[i - 1].largest_key).ToString(),
              ExtractUserKey(output.tables[i].smallest_key).ToString());
  }
}

TEST_F(FpgaEngineTest, MatchesCpuCompactorBitExactly) {
  auto run_a = MakeRun("alpha", 0, 700, 3, 9000, 100);
  auto run_b = MakeRun("alpha", 1, 700, 3, 4000, 100);
  // Some overlapping keys too.
  auto run_b2 = MakeRun("alpha", 0, 100, 3, 100, 100);

  Stage({{run_a}, {run_b, run_b2}});

  DeviceOutput engine_out;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &engine_out, &stats).ok());

  std::vector<const DeviceInput*> ptrs;
  for (const auto& in : inputs_) ptrs.push_back(in.get());
  host::CpuCompactorOptions cpu_options;
  cpu_options.smallest_snapshot = kNoSnapshot;
  cpu_options.drop_deletions = true;
  DeviceOutput cpu_out;
  host::CpuCompactStats cpu_stats;
  ASSERT_TRUE(
      host::CpuCompactImages(ptrs, cpu_options, &cpu_out, &cpu_stats).ok());

  // The two execution paths must produce identical tables: same count,
  // same data bytes, same index entries, same bounds.
  ASSERT_EQ(cpu_out.tables.size(), engine_out.tables.size());
  for (size_t i = 0; i < cpu_out.tables.size(); i++) {
    EXPECT_EQ(cpu_out.tables[i].data_memory, engine_out.tables[i].data_memory)
        << "table " << i;
    EXPECT_EQ(cpu_out.tables[i].smallest_key,
              engine_out.tables[i].smallest_key);
    EXPECT_EQ(cpu_out.tables[i].largest_key, engine_out.tables[i].largest_key);
    ASSERT_EQ(cpu_out.tables[i].index_entries.size(),
              engine_out.tables[i].index_entries.size());
  }
  EXPECT_EQ(cpu_stats.records_in, stats.records_in);
  EXPECT_EQ(cpu_stats.records_dropped, stats.records_dropped);
}

TEST_F(FpgaEngineTest, AllOptLevelsProduceIdenticalOutput) {
  auto run_a = MakeRun("key", 0, 400, 2, 1000, 128);
  auto run_b = MakeRun("key", 1, 400, 2, 2000, 128);

  std::vector<std::pair<std::string, std::string>> reference;
  uint64_t prev_cycles = 0;
  std::vector<uint64_t> cycles_per_level;
  for (OptLevel level :
       {OptLevel::kBasic, OptLevel::kBlockSeparation,
        OptLevel::kKeyValueSeparation, OptLevel::kFullBandwidth}) {
    config_.opt_level = level;
    Stage({{run_a}, {run_b}});
    DeviceOutput output;
    EngineStats stats;
    ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
    std::vector<std::pair<std::string, std::string>> got;
    ASSERT_TRUE(FlattenOutput(output, &got).ok());
    if (reference.empty()) {
      reference = got;
    } else {
      ASSERT_EQ(reference, got) << "opt level " << static_cast<int>(level);
    }
    cycles_per_level.push_back(stats.cycles);
    (void)prev_cycles;
  }
  // Each optimization must speed the engine up (paper Sections V-B..D).
  for (size_t i = 1; i < cycles_per_level.size(); i++) {
    EXPECT_LT(cycles_per_level[i], cycles_per_level[i - 1])
        << "optimization level " << i << " did not improve cycles";
  }
}

TEST_F(FpgaEngineTest, EmptyInputsProduceEmptyOutput) {
  Stage({{std::vector<TestKv>{}}, {std::vector<TestKv>{}}});
  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
  EXPECT_TRUE(output.tables.empty());
  EXPECT_EQ(0u, stats.records_in);
}

TEST_F(FpgaEngineTest, SingleInputPassThrough) {
  config_.num_inputs = 2;
  auto run = MakeRun("key", 0, 300, 1, 64, 64);
  Stage({{run}});
  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(300u, got.size());
}

TEST_F(FpgaEngineTest, CorruptStagedDataSurfacesError) {
  auto run = MakeRun("key", 0, 100, 1, 64, 64);
  Stage({{run}});
  // Flip a byte in the staged data region.
  inputs_[0]->data_memory[20] ^= 0x80;
  DeviceOutput output;
  EngineStats stats;
  Status s = RunEngine(kNoSnapshot, true, &output, &stats);
  ASSERT_FALSE(s.ok());
}

// Value-length sweep: the engine must stay functional across the
// paper's whole parameter range (Table V rows).
class FpgaEngineValueSweep : public FpgaEngineTest,
                             public testing::WithParamInterface<int> {};

TEST_P(FpgaEngineValueSweep, MergeCorrectAcrossValueLengths) {
  const int value_len = GetParam();
  const int n = 3000000 / (value_len + 24) / 10;  // Keep runtime modest.
  auto run_a = MakeRun("key", 0, n, 2, 1000, value_len);
  auto run_b = MakeRun("key", 1, n, 2, 2000, value_len);
  Stage({{run_a}, {run_b}});

  DeviceOutput output;
  EngineStats stats;
  ASSERT_TRUE(RunEngine(kNoSnapshot, true, &output, &stats).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  ASSERT_EQ(static_cast<size_t>(2 * n), got.size());
  EXPECT_GT(stats.CompactionSpeedMBps(config_), 0.0);
}

INSTANTIATE_TEST_SUITE_P(ValueLengths, FpgaEngineValueSweep,
                         testing::Values(64, 128, 256, 512, 1024, 2048));

TEST_F(FpgaEngineTest, KeyBoundsRestrictMergeToShard) {
  // Sharded offload: the engine's Key-Value Transfer must drop every
  // record outside (lower, upper] and account it separately, so the
  // records_in == records_out + records_dropped invariant still holds.
  auto run_a = MakeRun("key", 0, 400, 2, 1000, 64);  // Even keys 0..798.
  auto run_b = MakeRun("key", 1, 400, 2, 2000, 64);  // Odd keys 1..799.
  Stage({{run_a}, {run_b}});

  KeyBounds bounds;
  bounds.has_lower = true;
  bounds.lower = "key00000199";  // Exclusive.
  bounds.has_upper = true;
  bounds.upper = "key00000599";  // Inclusive.
  ASSERT_TRUE(bounds.active());

  std::vector<const DeviceInput*> ptrs;
  for (const auto& in : inputs_) ptrs.push_back(in.get());
  DeviceOutput output;
  CompactionEngine engine(config_, ptrs, kNoSnapshot,
                          /*drop_deletions=*/true, &output, &bounds);
  ASSERT_TRUE(engine.Run().ok());
  const EngineStats stats = engine.stats();

  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  // Exactly the user keys in (key00000199, key00000599]: 200..599.
  ASSERT_EQ(400u, got.size());
  for (const auto& kv : got) {
    const std::string user_key = kv.first.substr(0, kv.first.size() - 8);
    EXPECT_GT(user_key, bounds.lower);
    EXPECT_LE(user_key, bounds.upper);
  }
  EXPECT_EQ(800u, stats.records_in);
  EXPECT_EQ(400u, stats.records_out);
  EXPECT_EQ(400u, stats.records_bounds_dropped);
  EXPECT_EQ(stats.records_in, stats.records_out + stats.records_dropped);
}

TEST_F(FpgaEngineTest, InactiveKeyBoundsChangeNothing) {
  auto run_a = MakeRun("key", 0, 300, 2, 1000, 64);
  auto run_b = MakeRun("key", 1, 300, 2, 2000, 64);
  Stage({{run_a}, {run_b}});

  KeyBounds bounds;  // Neither side set: the merge is unrestricted.
  ASSERT_FALSE(bounds.active());
  std::vector<const DeviceInput*> ptrs;
  for (const auto& in : inputs_) ptrs.push_back(in.get());
  DeviceOutput output;
  CompactionEngine engine(config_, ptrs, kNoSnapshot,
                          /*drop_deletions=*/true, &output, &bounds);
  ASSERT_TRUE(engine.Run().ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(output, &got).ok());
  EXPECT_EQ(600u, got.size());
  EXPECT_EQ(0u, engine.stats().records_bounds_dropped);
}

}  // namespace fpga
}  // namespace fcae
