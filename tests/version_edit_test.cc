#include "lsm/version_edit.h"

#include "gtest/gtest.h"

namespace fcae {

static void TestEncodeDecode(const VersionEdit& edit) {
  std::string encoded, encoded2;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  Status s = parsed.DecodeFrom(encoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  parsed.EncodeTo(&encoded2);
  ASSERT_EQ(encoded, encoded2);
}

TEST(VersionEditTest, EncodeDecode) {
  static const uint64_t kBig = 1ull << 50;

  VersionEdit edit;
  for (int i = 0; i < 4; i++) {
    TestEncodeDecode(edit);
    edit.AddFile(3, kBig + 300 + i, kBig + 400 + i,
                 InternalKey("foo", kBig + 500 + i, kTypeValue),
                 InternalKey("zoo", kBig + 600 + i, kTypeDeletion));
    edit.RemoveFile(4, kBig + 700 + i);
    edit.SetCompactPointer(i, InternalKey("x", kBig + 900 + i, kTypeValue));
  }

  edit.SetComparatorName("foo");
  edit.SetLogNumber(kBig + 100);
  edit.SetNextFile(kBig + 200);
  edit.SetLastSequence(kBig + 1000);
  TestEncodeDecode(edit);
}

TEST(VersionEditTest, EmptyEditRoundTrips) {
  VersionEdit edit;
  TestEncodeDecode(edit);
}

TEST(VersionEditTest, RejectsTruncation) {
  VersionEdit edit;
  edit.SetComparatorName("cmp");
  edit.AddFile(1, 10, 100, InternalKey("a", 1, kTypeValue),
               InternalKey("b", 2, kTypeValue));
  std::string encoded;
  edit.EncodeTo(&encoded);
  for (size_t cut = 1; cut < encoded.size(); cut++) {
    VersionEdit parsed;
    Status s = parsed.DecodeFrom(Slice(encoded.data(), encoded.size() - cut));
    // Some prefixes happen to end exactly on a record boundary and
    // decode fine; none may crash, and cutting inside the AddFile
    // record must fail.
    (void)s;
  }
  VersionEdit parsed;
  ASSERT_FALSE(
      parsed.DecodeFrom(Slice(encoded.data(), encoded.size() - 1)).ok());
}

TEST(VersionEditTest, RejectsUnknownTag) {
  std::string bad;
  PutVarint32(&bad, 999);  // No such tag.
  VersionEdit parsed;
  Status s = parsed.DecodeFrom(bad);
  ASSERT_TRUE(s.IsCorruption());
  ASSERT_NE(std::string::npos, s.ToString().find("unknown tag"));
}

TEST(VersionEditTest, RejectsLevelOutOfRange) {
  VersionEdit edit;
  edit.RemoveFile(kNumLevels - 1, 7);  // Valid level encodes fine.
  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());

  // Hand-craft a deleted-file record with an invalid level.
  std::string bad;
  PutVarint32(&bad, 6);            // kDeletedFile tag.
  PutVarint32(&bad, kNumLevels);   // Out of range.
  PutVarint64(&bad, 1);
  ASSERT_FALSE(parsed.DecodeFrom(bad).ok());
}

TEST(VersionEditTest, FileChecksumSurvivesRoundTrip) {
  FileMetaData f;
  f.number = 17;
  f.file_size = 4096;
  f.smallest = InternalKey("aaa", 5, kTypeValue);
  f.largest = InternalKey("mmm", 6, kTypeValue);
  f.file_checksum = 0xdeadbeef;
  f.has_file_checksum = true;

  VersionEdit edit;
  edit.AddFile(2, f);
  // A second file without a checksum mixes in fine.
  edit.AddFile(3, 18, 1000, InternalKey("n", 7, kTypeValue),
               InternalKey("z", 8, kTypeValue));
  TestEncodeDecode(edit);

  std::string encoded;
  edit.EncodeTo(&encoded);
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(encoded).ok());
  std::string debug = parsed.DebugString();
  EXPECT_NE(std::string::npos,
            debug.find("crc32c=" + std::to_string(0xdeadbeefu)));
}

TEST(VersionEditTest, UnknownSkippableTagIsSteppedOver) {
  // A record from a hypothetical newer writer: tag 9 with a
  // length-prefixed payload. An old decoder (this one) must skip it and
  // keep reading the records it does understand.
  VersionEdit edit;
  edit.AddFile(1, 42, 512, InternalKey("a", 1, kTypeValue),
               InternalKey("b", 2, kTypeValue));
  std::string encoded;
  edit.EncodeTo(&encoded);
  PutVarint32(&encoded, 9);  // Future skippable tag.
  PutLengthPrefixedSlice(&encoded, "future payload bytes");
  PutVarint32(&encoded, 2);  // kLogNumber, after the unknown record.
  PutVarint64(&encoded, 77);

  VersionEdit parsed;
  Status s = parsed.DecodeFrom(encoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  std::string debug = parsed.DebugString();
  EXPECT_NE(std::string::npos, debug.find("AddFile: 1 42"));
  EXPECT_NE(std::string::npos, debug.find("LogNumber: 77"));
}

TEST(VersionEditTest, SkippableTagWithTruncatedPayloadFails) {
  std::string bad;
  PutVarint32(&bad, 9);
  PutVarint32(&bad, 100);  // Length prefix longer than what follows.
  bad.append("short");
  VersionEdit parsed;
  ASSERT_TRUE(parsed.DecodeFrom(bad).IsCorruption());
}

TEST(VersionEditTest, UnmatchedChecksumRecordIsIgnored) {
  // A checksum record for a file the edit does not add must be
  // harmless (skippable convention), not an error.
  std::string encoded;
  PutVarint32(&encoded, 8);  // kFileChecksum.
  std::string payload;
  PutVarint32(&payload, 3);    // level
  PutVarint64(&payload, 999);  // file number with no kNewFile record
  PutVarint32(&payload, 0xabcd);
  PutLengthPrefixedSlice(&encoded, payload);
  PutVarint32(&encoded, 2);  // kLogNumber still decodes after it.
  PutVarint64(&encoded, 11);

  VersionEdit parsed;
  Status s = parsed.DecodeFrom(encoded);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_NE(std::string::npos, parsed.DebugString().find("LogNumber: 11"));
}

TEST(VersionEditTest, DebugStringMentionsEverything) {
  VersionEdit edit;
  edit.SetComparatorName("the-comparator");
  edit.SetLogNumber(42);
  edit.AddFile(2, 7, 1234, InternalKey("aaa", 1, kTypeValue),
               InternalKey("zzz", 2, kTypeValue));
  edit.RemoveFile(1, 9);
  std::string debug = edit.DebugString();
  EXPECT_NE(std::string::npos, debug.find("the-comparator"));
  EXPECT_NE(std::string::npos, debug.find("42"));
  EXPECT_NE(std::string::npos, debug.find("aaa"));
  EXPECT_NE(std::string::npos, debug.find("RemoveFile"));
}

}  // namespace fcae
