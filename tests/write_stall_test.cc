// Deterministic tests of the overload-protection layer (DESIGN.md §10):
// WriteController unit coverage of the debt/delay model, then DB-level
// tests driven by a hooked Env whose clock only advances on
// SleepForMicroseconds and whose background pools queue tasks for the
// test to drain by hand — write delays, L0 stops, wakeup-on-install,
// and the global memory budget all run with zero wall-clock sleeps and
// no scheduling races.

#include "util/write_controller.h"

#include <atomic>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/mem_env.h"

namespace fcae {

namespace {

/// Forwards file operations to a wrapped (mem) Env, but owns time and
/// background execution: NowMicros is a counter that advances only via
/// SleepForMicroseconds, and SchedulePool enqueues tasks per pool for
/// the test to run explicitly.
class HookedEnv : public Env {
 public:
  explicit HookedEnv(Env* target) : target_(target) {}

  // --- clock ---
  uint64_t NowMicros() override {
    return micros_.load(std::memory_order_acquire);
  }
  void SleepForMicroseconds(int micros) override {
    micros_.fetch_add(micros, std::memory_order_acq_rel);
  }

  // --- background pools ---
  void Schedule(void (*function)(void*), void* arg) override {
    SchedulePool("default", 1, function, arg);
  }
  void SchedulePool(const char* pool, int max_threads,
                    void (*function)(void*), void* arg) override {
    std::lock_guard<std::mutex> l(mu_);
    queues_[pool].push_back({function, arg});
  }

  /// Runs every task currently queued on `pool` (tasks those tasks
  /// enqueue are left for the next call). Returns how many ran.
  int RunQueued(const std::string& pool) {
    std::deque<Task> batch;
    {
      std::lock_guard<std::mutex> l(mu_);
      batch.swap(queues_[pool]);
    }
    for (const Task& t : batch) t.function(t.arg);
    return static_cast<int>(batch.size());
  }

  /// Drains every pool until all queues stay empty (background tasks
  /// may schedule follow-up work). Must be called before closing the DB
  /// so its destructor's background-drain wait cannot hang.
  void DrainAll() {
    bool ran = true;
    while (ran) {
      ran = false;
      std::vector<std::string> pools;
      {
        std::lock_guard<std::mutex> l(mu_);
        for (const auto& kv : queues_) pools.push_back(kv.first);
      }
      for (const std::string& p : pools) ran |= RunQueued(p) > 0;
    }
  }

  // --- forwarded file system ---
  Status NewSequentialFile(const std::string& f,
                           SequentialFile** r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f,
                             RandomAccessFile** r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  Status NewWritableFile(const std::string& f, WritableFile** r) override {
    return target_->NewWritableFile(f, r);
  }
  Status NewAppendableFile(const std::string& f, WritableFile** r) override {
    return target_->NewAppendableFile(f, r);
  }
  bool FileExists(const std::string& f) override {
    return target_->FileExists(f);
  }
  Status GetChildren(const std::string& d,
                     std::vector<std::string>* r) override {
    return target_->GetChildren(d, r);
  }
  Status RemoveFile(const std::string& f) override {
    return target_->RemoveFile(f);
  }
  Status CreateDir(const std::string& d) override {
    return target_->CreateDir(d);
  }
  Status RemoveDir(const std::string& d) override {
    return target_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    return target_->GetFileSize(f, s);
  }
  Status RenameFile(const std::string& a, const std::string& b) override {
    return target_->RenameFile(a, b);
  }
  Status SyncDir(const std::string& d) override {
    return target_->SyncDir(d);
  }
  Status LockFile(const std::string& f, FileLock** l) override {
    return target_->LockFile(f, l);
  }
  Status UnlockFile(FileLock* l) override { return target_->UnlockFile(l); }
  void StartThread(void (*function)(void*), void* arg) override {
    target_->StartThread(function, arg);
  }

 private:
  struct Task {
    void (*function)(void*);
    void* arg;
  };

  Env* const target_;
  std::atomic<uint64_t> micros_{1};
  std::mutex mu_;
  std::map<std::string, std::deque<Task>> queues_;
};

int NumL0Files(DB* db) {
  std::string v;
  if (!db->GetProperty("fcae.num-files-at-level0", &v)) return -1;
  return std::stoi(v);
}

}  // namespace

// ---------------------------------------------------------------------------
// WriteController unit tests (pure model, no DB)
// ---------------------------------------------------------------------------

TEST(WriteControllerTest, DebtScoreRampsAcrossTheL0Band) {
  WriteControllerConfig config;  // slowdown 8, stop 12.
  WriteStallConditions cond;

  cond.l0_files = 0;
  EXPECT_EQ(0.0, WriteController::DebtScore(cond, config));
  cond.l0_files = 7;
  EXPECT_EQ(0.0, WriteController::DebtScore(cond, config));
  cond.l0_files = 8;
  EXPECT_DOUBLE_EQ(0.25, WriteController::DebtScore(cond, config));
  cond.l0_files = 10;
  EXPECT_DOUBLE_EQ(0.75, WriteController::DebtScore(cond, config));
  cond.l0_files = 12;
  EXPECT_EQ(1.0, WriteController::DebtScore(cond, config));
  cond.l0_files = 50;
  EXPECT_EQ(1.0, WriteController::DebtScore(cond, config));
}

TEST(WriteControllerTest, DebtScoreIncludesPendingCompactionBytes) {
  WriteControllerConfig config;
  config.soft_pending_compaction_bytes = 100;
  config.hard_pending_compaction_bytes = 200;
  WriteStallConditions cond;

  cond.pending_compaction_bytes = 100;
  EXPECT_EQ(0.0, WriteController::DebtScore(cond, config));
  cond.pending_compaction_bytes = 150;
  EXPECT_DOUBLE_EQ(0.5, WriteController::DebtScore(cond, config));
  cond.pending_compaction_bytes = 400;
  EXPECT_EQ(1.0, WriteController::DebtScore(cond, config));

  // The two signals combine by max, not by sum.
  cond.pending_compaction_bytes = 150;
  cond.l0_files = 11;  // L0 component = 1.0.
  EXPECT_EQ(1.0, WriteController::DebtScore(cond, config));
}

TEST(WriteControllerTest, DelayCurveIsBoundedAndMonotonic) {
  WriteControllerConfig config;
  EXPECT_EQ(0u, WriteController::DelayMicrosForDebt(0.0, config));
  EXPECT_EQ(config.min_delay_micros,
            WriteController::DelayMicrosForDebt(1e-9, config));
  uint64_t prev = 0;
  for (double debt = 0.1; debt <= 1.0; debt += 0.1) {
    const uint64_t d = WriteController::DelayMicrosForDebt(debt, config);
    EXPECT_GE(d, prev);
    EXPECT_LE(d, config.max_delay_micros);
    prev = d;
  }
  EXPECT_EQ(config.max_delay_micros,
            WriteController::DelayMicrosForDebt(1.0, config));
  EXPECT_EQ(config.max_delay_micros,
            WriteController::DelayMicrosForDebt(7.0, config));  // Clamped.
}

TEST(WriteControllerTest, StateMachineAndMemoryStop) {
  WriteControllerConfig config;
  config.total_write_buffer_size = 1000;
  WriteController wc(config);
  WriteStallConditions cond;

  EXPECT_EQ(WriteController::State::kOk, wc.Update(cond));

  cond.l0_files = 9;
  EXPECT_EQ(WriteController::State::kDelayed, wc.Update(cond));

  cond.l0_files = 12;
  EXPECT_EQ(WriteController::State::kStopped, wc.Update(cond));

  // Memory budget: over budget alone is not enough — a flush must be in
  // flight to drain it, otherwise the caller rotates instead.
  cond.l0_files = 0;
  cond.memtable_bytes = 2000;
  cond.imm_in_flight = false;
  EXPECT_EQ(WriteController::State::kOk, wc.Update(cond));
  cond.imm_in_flight = true;
  EXPECT_EQ(WriteController::State::kStopped, wc.Update(cond));
  cond.memtable_bytes = 500;
  EXPECT_EQ(WriteController::State::kOk, wc.Update(cond));
}

TEST(WriteControllerTest, CreditLedgerBoundsBurstBacklog) {
  WriteControllerConfig config;
  WriteController wc(config);
  WriteStallConditions cond;
  cond.l0_files = 10;  // Debt 0.75.
  ASSERT_EQ(WriteController::State::kDelayed, wc.Update(cond));

  // A burst of writes at the same instant may queue behind each other,
  // but the ledger is capped at one max delay past now — so per-write
  // latency (the p99 the overload gate checks) stays bounded no matter
  // how deep the burst.
  const uint64_t now = 1000000;
  for (int i = 0; i < 100; i++) {
    const uint64_t delay = wc.GetDelayMicros(now);
    EXPECT_GT(delay, 0u);
    EXPECT_LE(delay, config.max_delay_micros);
  }

  // Debt cleared: the backlog is dropped, not served.
  cond.l0_files = 0;
  EXPECT_EQ(WriteController::State::kOk, wc.Update(cond));
  EXPECT_EQ(0u, wc.GetDelayMicros(now));
}

// ---------------------------------------------------------------------------
// DB-level stall behaviour with the hooked Env
// ---------------------------------------------------------------------------

class WriteStallDBTest : public testing::Test {
 protected:
  WriteStallDBTest()
      : base_(NewMemEnv(Env::Default())), env_(base_.get()) {}

  void Open(size_t total_write_buffer = 0) {
    Options options;
    options.env = &env_;
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.total_write_buffer_size = total_write_buffer;
    options.metrics_registry = &metrics_;
    DB* raw = nullptr;
    ASSERT_TRUE(DB::Open(options, "/stalldb", &raw).ok());
    db_.reset(raw);
  }

  void Close() {
    if (db_ != nullptr) {
      env_.DrainAll();
      db_.reset();
    }
  }

  ~WriteStallDBTest() override { Close(); }

  // Writes values and drains flushes (never compactions) until level 0
  // holds `files` tables. Returns false if it cannot get there.
  bool GrowL0To(int files) {
    std::string value(4000, 'v');
    for (int i = 0; i < 10000; i++) {
      if (NumL0Files(db_.get()) >= files) return true;
      if (!db_->Put(WriteOptions(), "key" + std::to_string(i % 64), value)
               .ok()) {
        return false;
      }
      env_.RunQueued("fcae-flush");
    }
    return NumL0Files(db_.get()) >= files;
  }

  uint64_t Counter(const char* name) {
    return metrics_.counter(name)->value();
  }

  std::unique_ptr<Env> base_;
  HookedEnv env_;
  obs::MetricsRegistry metrics_;
  std::unique_ptr<DB> db_;
};

TEST_F(WriteStallDBTest, DelayRampsUpWithL0Debt) {
  Open();
  ASSERT_TRUE(GrowL0To(9));  // Past the slowdown trigger (8).

  const uint64_t delayed_before = Counter("wc.delayed_writes");
  const uint64_t delay_micros_before = Counter("wc.delay_micros");
  const uint64_t clock_before = env_.NowMicros();

  ASSERT_TRUE(db_->Put(WriteOptions(), "delayed-key", "v").ok());

  EXPECT_EQ(delayed_before + 1, Counter("wc.delayed_writes"));
  const uint64_t paid = Counter("wc.delay_micros") - delay_micros_before;
  // Debt at L0=9 is 0.5: the quadratic ramp prices that well above the
  // minimum delay but below the maximum — and the fake clock shows the
  // writer actually slept it.
  EXPECT_GE(paid, 250u);
  EXPECT_LE(paid, 20000u);
  EXPECT_GE(env_.NowMicros() - clock_before, paid);

  // Debt paid per write: the next write pays again (no free rides), but
  // each individual delay stays bounded by the ledger cap.
  ASSERT_TRUE(db_->Put(WriteOptions(), "delayed-key2", "v").ok());
  EXPECT_EQ(delayed_before + 2, Counter("wc.delayed_writes"));
}

TEST_F(WriteStallDBTest, StopOnL0BlocksWriterUntilCompactionInstalls) {
  Open();
  ASSERT_TRUE(GrowL0To(12));  // At the stop trigger.

  const uint64_t stopped_before = Counter("wc.stopped_writes");
  std::atomic<bool> writer_done{false};
  Status writer_status;
  std::thread writer([&]() {
    // Big values fill the active memtable; rotation past the stop
    // trigger blocks on the condvar until a compaction installs.
    std::string value(4000, 'w');
    for (int i = 0; i < 40 && writer_status.ok(); i++) {
      writer_status =
          db_->Put(WriteOptions(), "stop" + std::to_string(i), value);
    }
    writer_done.store(true);
  });

  // The stop counter is incremented before the writer parks, so seeing
  // it move means the writer is (about to be) blocked on the condvar.
  for (int i = 0; i < 10000 && Counter("wc.stopped_writes") == stopped_before;
       i++) {
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_GT(Counter("wc.stopped_writes"), stopped_before)
      << "writer never hit the stop state";
  EXPECT_FALSE(writer_done.load());

  // Drain the compaction the stop branch scheduled: installing it clears
  // level 0 and must wake the stalled writer.
  for (int i = 0; i < 10000 && !writer_done.load(); i++) {
    env_.RunQueued("fcae-compact");
    env_.RunQueued("fcae-flush");
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_TRUE(writer_done.load()) << "install did not wake the writer";
  writer.join();
  EXPECT_TRUE(writer_status.ok()) << writer_status.ToString();
  EXPECT_LT(NumL0Files(db_.get()), 12);
}

TEST_F(WriteStallDBTest, MemoryBudgetStallsConcurrentWritersUntilFlush) {
  // Budget = exactly one live + one immutable memtable: the moment a
  // rotation leaves an imm in flight and the fresh memtable fills, the
  // budget stops writers until the flush drains.
  Open(/*total_write_buffer=*/128 * 1024);

  constexpr int kWriters = 4;
  std::atomic<int> writers_done{0};
  std::vector<Status> statuses(kWriters);
  std::vector<std::thread> writers;
  writers.reserve(kWriters);
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([this, t, &writers_done, &statuses]() {
      std::string value(4000, static_cast<char>('a' + t));
      Status s;
      for (int i = 0; i < 16 && s.ok(); i++) {
        s = db_->Put(WriteOptions(),
                     "w" + std::to_string(t) + "-" + std::to_string(i),
                     value);
      }
      statuses[t] = s;
      writers_done.fetch_add(1);
    });
  }

  // Writers together push ~256 KB at a 128 KB budget with flushes
  // queued, so at least one must hit the memory stop; keep draining
  // background work until all of them finish.
  bool saw_memory_stall = false;
  for (int i = 0; i < 100000 && writers_done.load() < kWriters; i++) {
    saw_memory_stall |= Counter("wc.memory_stalls") > 0;
    env_.RunQueued("fcae-flush");
    env_.RunQueued("fcae-compact");
    std::this_thread::sleep_for(std::chrono::microseconds(100));
  }
  ASSERT_EQ(kWriters, writers_done.load()) << "writers deadlocked";
  for (std::thread& w : writers) w.join();
  for (const Status& s : statuses) EXPECT_TRUE(s.ok()) << s.ToString();
  saw_memory_stall |= Counter("wc.memory_stalls") > 0;
  EXPECT_TRUE(saw_memory_stall);
  // Every write is durable in the memtable/L0 image despite the stalls.
  std::string value;
  ASSERT_TRUE(db_->Get(ReadOptions(), "w0-15", &value).ok());
}

}  // namespace fcae
