// Unit tests for the obs/ layer: metrics registry JSON contract,
// windowed (interval) views and the Prometheus exposition, structured
// log records, the trace ring's overwrite semantics, SpanTimer RAII
// and the sink hook.

#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "mini_json.h"
#include "obs/logger.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fcae {
namespace obs {
namespace {

mini_json::Value MustParse(const std::string& text) {
  mini_json::Value v;
  std::string error;
  EXPECT_TRUE(mini_json::Parse(text, &v, &error)) << error << "\n" << text;
  return v;
}

TEST(MetricsRegistry, CountersAndGauges) {
  MetricsRegistry registry;
  Counter* c = registry.counter("db.compaction.count");
  c->Increment();
  c->Increment(41);
  EXPECT_EQ(42u, c->value());
  // Re-registering the same name returns the same instrument.
  EXPECT_EQ(c, registry.counter("db.compaction.count"));

  Gauge* g = registry.gauge("health.quarantined");
  g->Set(1);
  g->Add(-3);
  EXPECT_EQ(-2, g->value());
  EXPECT_EQ(g, registry.gauge("health.quarantined"));
}

TEST(MetricsRegistry, HistogramSnapshot) {
  MetricsRegistry registry;
  HistogramMetric* h = registry.histogram("db.compaction.micros");
  h->Observe(100);
  h->Observe(300);
  Histogram snap = h->snapshot();
  EXPECT_EQ(2u, snap.Count());
  EXPECT_DOUBLE_EQ(100.0, snap.Min());
  EXPECT_DOUBLE_EQ(300.0, snap.Max());
}

TEST(MetricsRegistry, ToJsonIsValidAndComplete) {
  MetricsRegistry registry;
  registry.counter("z.last")->Increment(7);
  registry.counter("a.first")->Increment(1);
  registry.gauge("fpga.fifo.output_peak")->Set(63);
  registry.histogram("db.flush.micros")->Observe(2500);

  mini_json::Value root = MustParse(registry.ToJson());
  ASSERT_EQ(mini_json::Value::kObject, root.kind);
  EXPECT_EQ(1.0, root["counters"]["a.first"].number);
  EXPECT_EQ(7.0, root["counters"]["z.last"].number);
  EXPECT_EQ(63.0, root["gauges"]["fpga.fifo.output_peak"].number);
  const mini_json::Value& hist = root["histograms"]["db.flush.micros"];
  EXPECT_EQ(1.0, hist["count"].number);
  EXPECT_EQ(2500.0, hist["min"].number);
  EXPECT_EQ(2500.0, hist["max"].number);
  EXPECT_EQ(2500.0, hist["mean"].number);
  ASSERT_TRUE(hist.Has("p50"));
  ASSERT_TRUE(hist.Has("p90"));
  ASSERT_TRUE(hist.Has("p99"));
}

TEST(MetricsRegistry, EmptyRegistryAndEmptyHistogramAreValidJson) {
  MetricsRegistry registry;
  mini_json::Value root = MustParse(registry.ToJson());
  EXPECT_EQ(mini_json::Value::kObject, root["counters"].kind);

  // A registered-but-never-observed histogram must not emit NaN/inf.
  registry.histogram("db.write.stall_micros");
  root = MustParse(registry.ToJson());
  EXPECT_EQ(0.0, root["histograms"]["db.write.stall_micros"]["count"].number);
}

TEST(MetricsRegistry, SnapshotAndToJsonSinceReportDeltas) {
  MetricsRegistry registry;
  registry.counter("db.flush.count")->Increment(5);
  registry.gauge("wc.state")->Set(2);
  registry.histogram("db.flush.micros")->Observe(100);
  registry.histogram("db.flush.micros")->Observe(200);

  MetricsRegistry::Snapshot before = registry.TakeSnapshot();
  EXPECT_EQ(5u, before.CounterValue("db.flush.count"));
  EXPECT_EQ(0u, before.CounterValue("never.registered"));

  registry.counter("db.flush.count")->Increment(3);
  registry.counter("db.compaction.count")->Increment(2);  // New since.
  registry.gauge("wc.state")->Set(7);
  registry.histogram("db.flush.micros")->Observe(900);

  mini_json::Value root = MustParse(registry.ToJsonSince(before));
  // Counters: interval deltas; instruments new since the snapshot
  // report their full value.
  EXPECT_EQ(3.0, root["counters"]["db.flush.count"].number);
  EXPECT_EQ(2.0, root["counters"]["db.compaction.count"].number);
  // Gauges are point-in-time.
  EXPECT_EQ(7.0, root["gauges"]["wc.state"].number);
  // Histograms subtract the earlier window: one new sample.
  const mini_json::Value& hist = root["histograms"]["db.flush.micros"];
  EXPECT_EQ(1.0, hist["count"].number);
  EXPECT_EQ(900.0, hist["mean"].number);
}

TEST(HistogramSubtract, WindowedViewIsExact) {
  Histogram h;
  h.Add(10);
  h.Add(20);
  Histogram earlier = h;
  h.Add(30);
  h.Add(40);

  Histogram window = h;
  window.Subtract(earlier);
  EXPECT_EQ(2u, window.Count());
  EXPECT_DOUBLE_EQ(35.0, window.Average());

  // Subtracting a histogram from itself leaves an empty window.
  Histogram empty = h;
  empty.Subtract(h);
  EXPECT_EQ(0u, empty.Count());
}

TEST(MetricsRegistry, ExportPrometheusShape) {
  MetricsRegistry registry;
  registry.counter("db.flush.count")->Increment(4);
  registry.gauge("health.quarantined")->Set(1);
  registry.histogram("db.flush.micros")->Observe(100);
  registry.histogram("db.flush.micros")->Observe(300);

  const std::string text = registry.ExportPrometheus();
  // Dotted names mangle to fcae_<snake>; each family announces a TYPE.
  EXPECT_NE(std::string::npos,
            text.find("# TYPE fcae_db_flush_count counter"));
  EXPECT_NE(std::string::npos, text.find("fcae_db_flush_count 4"));
  EXPECT_NE(std::string::npos,
            text.find("# TYPE fcae_health_quarantined gauge"));
  EXPECT_NE(std::string::npos, text.find("fcae_health_quarantined 1"));
  // Histograms export as summaries: quantiles plus _sum/_count.
  EXPECT_NE(std::string::npos,
            text.find("# TYPE fcae_db_flush_micros summary"));
  EXPECT_NE(std::string::npos,
            text.find("fcae_db_flush_micros{quantile=\"0.5\"}"));
  EXPECT_NE(std::string::npos,
            text.find("fcae_db_flush_micros{quantile=\"0.99\"}"));
  EXPECT_NE(std::string::npos, text.find("fcae_db_flush_micros_count 2"));
  EXPECT_NE(std::string::npos, text.find("fcae_db_flush_micros_sum"));
}

TEST(LoggerTest, FormatLogRecordRendersFieldsAndIndentsMultiline) {
  LogRecord record;
  record.level = LogRecord::Level::kInfo;
  record.ts_micros = 1234;
  record.tag = "fcae.stats";
  record.message = "header\nrow1\nrow2";
  record.fields.emplace_back("seq", "3");

  const std::string line = FormatLogRecord(record);
  EXPECT_NE(std::string::npos, line.find("INFO"));
  EXPECT_NE(std::string::npos, line.find("fcae.stats"));
  EXPECT_NE(std::string::npos, line.find("seq=3"));
  EXPECT_NE(std::string::npos, line.find("header"));
  EXPECT_NE(std::string::npos, line.find("row2"));

  EXPECT_STREQ("INFO", LogLevelName(LogRecord::Level::kInfo));
  EXPECT_STREQ("WARN", LogLevelName(LogRecord::Level::kWarn));
  EXPECT_STREQ("ERROR", LogLevelName(LogRecord::Level::kError));
}

TEST(JsonEscapeTest, EscapesQuotesBackslashesAndControls) {
  EXPECT_EQ("plain", JsonEscape("plain"));
  EXPECT_EQ("a\\\"b", JsonEscape("a\"b"));
  EXPECT_EQ("a\\\\b", JsonEscape("a\\b"));
  EXPECT_EQ("a\\nb\\tc", JsonEscape("a\nb\tc"));
  EXPECT_EQ("x\\u0001y", JsonEscape(std::string("x\x01y", 3)));

  // Round-trip through the JSON parser.
  std::string nasty = "quote\" slash\\ nl\n tab\t";
  mini_json::Value v = MustParse("\"" + JsonEscape(nasty) + "\"");
  EXPECT_EQ(nasty, v.str);
}

TEST(TraceRecorderTest, RingKeepsNewestAndCountsDropped) {
  TraceRecorder recorder(4);
  for (int i = 0; i < 6; i++) {
    recorder.RecordInstant("e" + std::to_string(i), "db", 100 + i, 0);
  }
  EXPECT_EQ(4u, recorder.size());
  EXPECT_EQ(2u, recorder.events_dropped());

  mini_json::Value root = MustParse(recorder.ToJson());
  EXPECT_EQ(2.0, root["eventsDropped"].number);
  const auto& events = root["traceEvents"].array;
  ASSERT_EQ(4u, events.size());
  // Oldest retained first: e2..e5.
  EXPECT_EQ("e2", events[0]["name"].str);
  EXPECT_EQ("e5", events[3]["name"].str);
  EXPECT_EQ(102.0, events[0]["ts"].number);
}

TEST(TraceRecorderTest, ChromeTracingShape) {
  TraceRecorder recorder;
  recorder.RecordSpan("compaction", "db", 1000, 250, 3,
                      {{"level", "2"},
                       {"reason", TraceRecorder::Quote("seek\"limit")}});
  recorder.RecordInstant("retry", "host", 1100, 3, {{"attempt", "2"}});

  mini_json::Value root = MustParse(recorder.ToJson());
  EXPECT_EQ("ms", root["displayTimeUnit"].str);
  const auto& events = root["traceEvents"].array;
  ASSERT_EQ(2u, events.size());

  const mini_json::Value& span = events[0];
  EXPECT_EQ("X", span["ph"].str);
  EXPECT_EQ("db", span["cat"].str);
  EXPECT_EQ(1000.0, span["ts"].number);
  EXPECT_EQ(250.0, span["dur"].number);
  EXPECT_EQ(3.0, span["tid"].number);
  EXPECT_EQ(1.0, span["pid"].number);
  EXPECT_EQ(2.0, span["args"]["level"].number);
  EXPECT_EQ("seek\"limit", span["args"]["reason"].str);

  const mini_json::Value& instant = events[1];
  EXPECT_EQ("i", instant["ph"].str);
  EXPECT_EQ("t", instant["s"].str);  // Thread-scoped instant.
  EXPECT_FALSE(instant.Has("dur"));
}

class CollectingSink : public TraceSink {
 public:
  void Append(const TraceEvent& event) override {
    names.push_back(event.name);
  }
  std::vector<std::string> names;
};

TEST(TraceRecorderTest, SinkObservesEveryEvent) {
  TraceRecorder recorder(2);  // Smaller than the event count below.
  CollectingSink sink;
  recorder.set_sink(&sink);
  for (int i = 0; i < 5; i++) {
    recorder.RecordInstant("i" + std::to_string(i), "db", i, 0);
  }
  // The sink saw all five even though the ring only retains two.
  ASSERT_EQ(5u, sink.names.size());
  EXPECT_EQ("i0", sink.names.front());
  EXPECT_EQ("i4", sink.names.back());

  recorder.set_sink(nullptr);
  recorder.RecordInstant("after-detach", "db", 9, 0);
  EXPECT_EQ(5u, sink.names.size());
}

TEST(SpanTimerTest, RecordsOneSpanWithArgs) {
  TraceRecorder recorder;
  {
    SpanTimer span(&recorder, "merge", "cpu", 7);
    span.AddArg("entries_in", "123");
    span.Finish();
    span.Finish();  // Idempotent; destructor is also a no-op now.
  }
  EXPECT_EQ(1u, recorder.size());

  mini_json::Value root = MustParse(recorder.ToJson());
  const mini_json::Value& span = root["traceEvents"].array[0];
  EXPECT_EQ("merge", span["name"].str);
  EXPECT_EQ(7.0, span["tid"].number);
  EXPECT_EQ(123.0, span["args"]["entries_in"].number);
}

TEST(SpanTimerTest, NullRecorderIsNoop) {
  SpanTimer span(nullptr, "merge", "cpu", 0);
  span.AddArg("k", "1");
  span.Finish();  // Must not crash.
}

TEST(TraceNowMicrosTest, Monotonic) {
  uint64_t a = TraceNowMicros();
  uint64_t b = TraceNowMicros();
  EXPECT_LE(a, b);
}

}  // namespace
}  // namespace obs
}  // namespace fcae
