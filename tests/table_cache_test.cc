#include "lsm/table_cache.h"

#include <memory>

#include "gtest/gtest.h"
#include "lsm/dbformat.h"
#include "lsm/filename.h"
#include "table/table_builder.h"
#include "table/iterator.h"
#include "util/mem_env.h"

namespace fcae {

class TableCacheTest : public testing::Test {
 public:
  TableCacheTest()
      : env_(NewMemEnv(Env::Default())), icmp_(BytewiseComparator()) {
    options_.env = env_.get();
    options_.comparator = &icmp_;
    env_->CreateDir("/tc").IgnoreError();  // best-effort; may exist
    cache_ = std::make_unique<TableCache>("/tc", options_, 16);
  }

  /// Writes table `number` with `n` entries; returns its file size.
  uint64_t WriteTable(uint64_t number, int n) {
    WritableFile* file;
    EXPECT_TRUE(env_->NewWritableFile(TableFileName("/tc", number), &file)
                    .ok());
    TableBuilder builder(options_, file);
    for (int i = 0; i < n; i++) {
      char key[32];
      std::snprintf(key, sizeof(key), "key%06d", i);
      std::string ikey;
      AppendInternalKey(&ikey, ParsedInternalKey(key, 100, kTypeValue));
      builder.Add(ikey, "value" + std::to_string(i));
    }
    EXPECT_TRUE(builder.Finish().ok());
    uint64_t size = builder.FileSize();
    EXPECT_TRUE(file->Close().ok());
    delete file;
    return size;
  }

  std::unique_ptr<Env> env_;
  InternalKeyComparator icmp_;
  Options options_;
  std::unique_ptr<TableCache> cache_;
};

TEST_F(TableCacheTest, IterateAndGet) {
  uint64_t size = WriteTable(5, 100);

  std::unique_ptr<Iterator> iter(
      cache_->NewIterator(ReadOptions(), 5, size));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
  ASSERT_EQ(100, count);
  ASSERT_TRUE(iter->status().ok());

  struct Ctx {
    bool found = false;
    std::string value;
  } ctx;
  LookupKey lkey("key000042", kMaxSequenceNumber);
  ASSERT_TRUE(cache_
                  ->Get(ReadOptions(), 5, size, lkey.internal_key(), &ctx,
                        [](void* arg, const Slice& k, const Slice& v) {
                          auto* c = static_cast<Ctx*>(arg);
                          c->found = true;
                          c->value = v.ToString();
                        })
                  .ok());
  ASSERT_TRUE(ctx.found);
  ASSERT_EQ("value42", ctx.value);
}

TEST_F(TableCacheTest, MissingFileIsAnError) {
  std::unique_ptr<Iterator> iter(
      cache_->NewIterator(ReadOptions(), 999, 1234));
  iter->SeekToFirst();
  ASSERT_FALSE(iter->Valid());
  ASSERT_FALSE(iter->status().ok());
}

TEST_F(TableCacheTest, EvictDropsStaleReader) {
  uint64_t size = WriteTable(7, 10);
  {
    std::unique_ptr<Iterator> iter(
        cache_->NewIterator(ReadOptions(), 7, size));
    iter->SeekToFirst();
    ASSERT_TRUE(iter->Valid());
  }
  // Replace the file with a different table, evict, and re-read: the
  // new contents must be served.
  uint64_t new_size = WriteTable(7, 33);
  cache_->Evict(7);
  std::unique_ptr<Iterator> iter(
      cache_->NewIterator(ReadOptions(), 7, new_size));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
  ASSERT_EQ(33, count);
}

TEST_F(TableCacheTest, ManyTablesBeyondCacheCapacity) {
  // 16-entry cache, 40 tables: eviction churns but every table stays
  // readable.
  std::vector<uint64_t> sizes;
  for (uint64_t number = 1; number <= 40; number++) {
    sizes.push_back(WriteTable(number, 5));
  }
  for (int round = 0; round < 2; round++) {
    for (uint64_t number = 1; number <= 40; number++) {
      std::unique_ptr<Iterator> iter(
          cache_->NewIterator(ReadOptions(), number, sizes[number - 1]));
      int count = 0;
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
      ASSERT_EQ(5, count) << number;
    }
  }
}

}  // namespace fcae
