// Fault injection, two layers:
//  1. An Env wrapper that can start failing all writes at a chosen
//     moment (full disk / dying disk). Once writes fail, the DB must
//     surface errors instead of acknowledging lost data, and after the
//     "disk" recovers and the DB reopens, every previously acknowledged
//     write must still be there.
//  2. A DeviceFaultInjector storm on the FPGA offload path: under a
//     seeded transient fault rate every compaction must still complete
//     (device retry or CPU fallback) with zero lost or duplicated keys,
//     and a sticky card drop must quarantine the device while the DB
//     keeps compacting in software.

#include <atomic>
#include <map>
#include <memory>
#include <set>

#include "fpga/fault_injector.h"
#include "gtest/gtest.h"
#include "host/device_health_monitor.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/env.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(WritableFile* target, std::atomic<bool>* fail)
      : target_(target), fail_(fail) {}

  Status Append(const Slice& data) override {
    if (fail_->load(std::memory_order_acquire)) {
      return Status::IOError("injected write fault");
    }
    return target_->Append(data);
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override {
    if (fail_->load(std::memory_order_acquire)) {
      return Status::IOError("injected flush fault");
    }
    return target_->Flush();
  }
  Status Sync() override {
    if (fail_->load(std::memory_order_acquire)) {
      return Status::IOError("injected sync fault");
    }
    return target_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> target_;
  std::atomic<bool>* fail_;
};

/// Forwards everything to a wrapped Env; write paths can be poisoned.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* target) : target_(target) {}

  void StartFailingWrites() { fail_.store(true, std::memory_order_release); }
  void StopFailingWrites() { fail_.store(false, std::memory_order_release); }

  Status NewSequentialFile(const std::string& f,
                           SequentialFile** r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f,
                             RandomAccessFile** r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  Status NewWritableFile(const std::string& f, WritableFile** r) override {
    if (fail_.load(std::memory_order_acquire)) {
      *r = nullptr;
      return Status::IOError("injected create fault");
    }
    WritableFile* inner;
    Status s = target_->NewWritableFile(f, &inner);
    if (s.ok()) {
      *r = new FaultyWritableFile(inner, &fail_);
    }
    return s;
  }
  Status NewAppendableFile(const std::string& f, WritableFile** r) override {
    if (fail_.load(std::memory_order_acquire)) {
      *r = nullptr;
      return Status::IOError("injected create fault");
    }
    WritableFile* inner;
    Status s = target_->NewAppendableFile(f, &inner);
    if (s.ok()) {
      *r = new FaultyWritableFile(inner, &fail_);
    }
    return s;
  }
  bool FileExists(const std::string& f) override {
    return target_->FileExists(f);
  }
  Status GetChildren(const std::string& d,
                     std::vector<std::string>* r) override {
    return target_->GetChildren(d, r);
  }
  Status RemoveFile(const std::string& f) override {
    return target_->RemoveFile(f);
  }
  Status CreateDir(const std::string& d) override {
    return target_->CreateDir(d);
  }
  Status RemoveDir(const std::string& d) override {
    return target_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    return target_->GetFileSize(f, s);
  }
  Status RenameFile(const std::string& a, const std::string& b) override {
    if (fail_.load(std::memory_order_acquire)) {
      return Status::IOError("injected rename fault");
    }
    return target_->RenameFile(a, b);
  }
  Status LockFile(const std::string& f, FileLock** l) override {
    return target_->LockFile(f, l);
  }
  Status UnlockFile(FileLock* l) override { return target_->UnlockFile(l); }
  void Schedule(void (*fn)(void*), void* arg) override {
    target_->Schedule(fn, arg);
  }
  void StartThread(void (*fn)(void*), void* arg) override {
    target_->StartThread(fn, arg);
  }
  uint64_t NowMicros() override { return target_->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    target_->SleepForMicroseconds(micros);
  }

 private:
  Env* target_;
  std::atomic<bool> fail_{false};
};

}  // namespace

class FaultInjectionTest : public testing::Test {
 public:
  FaultInjectionTest()
      : base_env_(NewMemEnv(Env::Default())),
        env_(std::make_unique<FaultInjectionEnv>(base_env_.get())) {}

  Status OpenDb() {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    DB* db = nullptr;
    Status s = DB::Open(options, "/faulty", &db);
    db_.reset(db);
    return s;
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(FaultInjectionTest, AcknowledgedWritesSurviveDiskOutage) {
  ASSERT_TRUE(OpenDb().ok());

  // Phase 1: writes succeed.
  std::set<std::string> acknowledged;
  WriteOptions wo;
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(i);
    Status s = db_->Put(wo, key, std::string(100, 'v'));
    ASSERT_TRUE(s.ok());
    acknowledged.insert(key);
  }

  // Phase 2: the disk dies. Writes must start failing (possibly after
  // a short grace while the current memtable has room — the WAL append
  // itself fails immediately, so really at once).
  env_->StartFailingWrites();
  int failures = 0;
  for (int i = 3000; i < 3200; i++) {
    if (!db_->Put(wo, "k" + std::to_string(i), "x").ok()) {
      failures++;
    }
  }
  EXPECT_GT(failures, 150);  // The vast majority fail loudly.

  // Phase 3: disk recovers, DB reopens; every acknowledged write is
  // intact.
  env_->StopFailingWrites();
  ASSERT_TRUE(OpenDb().ok());
  std::string value;
  for (const std::string& key : acknowledged) {
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    ASSERT_EQ(std::string(100, 'v'), value);
  }
}

TEST_F(FaultInjectionTest, FailedOpenLeavesNoDb) {
  env_->StartFailingWrites();
  ASSERT_FALSE(OpenDb().ok());
  ASSERT_EQ(nullptr, db_.get());
  env_->StopFailingWrites();
  ASSERT_TRUE(OpenDb().ok());
}

TEST_F(FaultInjectionTest, FlushFailureDoesNotLoseData) {
  ASSERT_TRUE(OpenDb().ok());
  WriteOptions wo;
  // Fill most of a memtable.
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Put(wo, "pre" + std::to_string(i),
                         std::string(150, 'p'))
                    .ok());
  }
  // Fail during the flush the next writes trigger. Some writes may be
  // acknowledged into the WAL before the background flush fails.
  env_->StartFailingWrites();
  for (int i = 0; i < 500; i++) {
    // Writes are expected to start failing mid-loop; recovery is
    // asserted after reopen.
    db_->Put(wo, "mid" + std::to_string(i), std::string(150, 'm'))
        .IgnoreError();
  }
  env_->StopFailingWrites();

  // Reopen and verify the pre-outage data survived (WAL replay).
  ASSERT_TRUE(OpenDb().ok());
  std::string value;
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "pre" + std::to_string(i), &value)
                    .ok())
        << i;
    ASSERT_EQ(std::string(150, 'p'), value);
  }
}

// ---------------------------------------------------------------------
// Device-fault storms on the offload path.
// ---------------------------------------------------------------------

class DeviceFaultTest : public testing::Test {
 public:
  DeviceFaultTest() : env_(NewMemEnv(Env::Default())) {}

  /// Opens /devfault with the offload executor wired to `device`.
  std::unique_ptr<DB> OpenDb(CompactionExecutor* executor) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.compaction_executor = executor;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/devfault", &db).ok());
    return std::unique_ptr<DB>(db);
  }

  /// Runs a deterministic overwrite/delete workload, mirroring it into
  /// `model`, then compacts every level so each table moves through the
  /// executor at least once.
  void RunWorkload(DB* db, std::map<std::string, std::string>* model) {
    Random rnd(301);
    WriteOptions wo;
    for (int i = 0; i < 4000; i++) {
      std::string key = "user" + std::to_string(rnd.Uniform(800));
      if (rnd.Uniform(10) < 8) {
        std::string value(64 + rnd.Uniform(100),
                          static_cast<char>('a' + i % 26));
        ASSERT_TRUE(db->Put(wo, key, value).ok());
        (*model)[key] = value;
      } else {
        ASSERT_TRUE(db->Delete(wo, key).ok());
        model->erase(key);
      }
    }
    CompactAllLevels(db);
  }

  /// Flushes the memtable and manually compacts every level, so every
  /// table moves through the executor at least once. (A flush may land
  /// directly at level 2 when it overlaps nothing, so compacting level
  /// 0 alone would miss it.)
  void CompactAllLevels(DB* db) {
    auto* impl = reinterpret_cast<DBImpl*>(db);
    impl->TEST_CompactMemTable().IgnoreError();  // faults may be armed
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  /// Full scan: the DB must contain exactly the model — no lost keys,
  /// no duplicated/resurrected keys.
  void VerifyExactContents(DB* db,
                           const std::map<std::string, std::string>& model) {
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    auto expect = model.begin();
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      ASSERT_NE(expect, model.end())
          << "extra key in DB: " << it->key().ToString();
      EXPECT_EQ(expect->first, it->key().ToString());
      EXPECT_EQ(expect->second, it->value().ToString());
      ++expect;
    }
    EXPECT_EQ(expect, model.end()) << "lost keys starting at "
                                   << (expect == model.end()
                                           ? std::string("<none>")
                                           : expect->first);
    EXPECT_TRUE(it->status().ok());
  }

  std::unique_ptr<Env> env_;
};

TEST_F(DeviceFaultTest, TransientFaultStormLosesNothing) {
  // 10% of kernel launches draw a transient fault (DMA corruption —
  // half of it silent — kernel timeouts, device-busy). Every compaction
  // must still complete via retry or CPU fallback, with zero lost or
  // duplicated keys and no unverified device output installed.
  fpga::DeviceFaultConfig fault_config;
  fault_config.seed = 1234;
  fault_config.transient_rate = 0.10;
  fpga::DeviceFaultInjector injector(fault_config);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 2;  // Tournaments: many launches per job.
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);

  host::DeviceHealthMonitor monitor;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &monitor;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db = OpenDb(&executor);
  std::map<std::string, std::string> model;
  RunWorkload(db.get(), &model);

  // The storm actually happened...
  EXPECT_GT(injector.total_faults(), 0u);
  EXPECT_GT(injector.launches(), injector.total_faults());
  // ...and the data is exactly intact.
  VerifyExactContents(db.get(), model);

  // Writes still work (no background error poisoned the DB: every
  // failed device job must have been recovered).
  ASSERT_TRUE(db->Put(WriteOptions(), "post-storm", "ok").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "post-storm", &value).ok());

  // The retry/fault counters made it to the DB properties.
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  CompactionExecStats stats = impl->OffloadStats();
  EXPECT_GT(stats.device_attempts, 0u);
  EXPECT_GT(stats.device_faults, 0u);
  std::string health;
  ASSERT_TRUE(db->GetProperty("fcae.device-health", &health));
  EXPECT_NE(std::string::npos, health.find("executor=fcae")) << health;
  EXPECT_NE(std::string::npos, health.find("faults=")) << health;

  // The fault storm is retryable by definition; none of it may have
  // been recorded as a background error.
  std::string bg;
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=ok")) << bg;
}

TEST_F(DeviceFaultTest, StickyFaultQuarantinesDeviceAndDbCompactsOnCpu) {
  // The card drops off the bus early on. The device executor must fail
  // sticky, the circuit breaker must quarantine it, and the DB must keep
  // compacting on the CPU with nothing lost.
  fpga::DeviceFaultConfig fault_config;
  fault_config.card_drop_at_launch = 2;
  fpga::DeviceFaultInjector injector(fault_config);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 2;
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);

  host::DeviceHealthOptions health_options;
  health_options.quarantine_threshold = 3;
  health_options.sticky_weight = 3;  // One sticky fault opens the breaker.
  health_options.probe_interval = 2;  // Probe the card often.
  host::DeviceHealthMonitor monitor(health_options);
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &monitor;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db = OpenDb(&executor);
  std::map<std::string, std::string> model;
  RunWorkload(db.get(), &model);

  EXPECT_TRUE(injector.card_dropped());
  // At least the original drop; probe launches on the dead card add more.
  EXPECT_GE(injector.count(fpga::DeviceFaultClass::kCardDropped), 1u);

  // The breaker opened and subsequent compactions were denied the
  // device (modulo periodic probes, which fail fast on the dead card).
  host::DeviceHealthMonitor::Snapshot snap = monitor.snapshot();
  EXPECT_TRUE(snap.quarantined);
  EXPECT_GE(snap.quarantines, 1u);
  EXPECT_GT(snap.jobs_denied, 0u);

  // The DB soldiered on in software: data intact, compactions ran.
  VerifyExactContents(db.get(), model);
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  (void)impl;
  std::string health;
  ASSERT_TRUE(db->GetProperty("fcae.device-health", &health));
  EXPECT_NE(std::string::npos, health.find("quarantined=1")) << health;

  // Retryable device conditions (busy card, dropped card) belong to the
  // offload retry/fallback machinery — they must never surface as a
  // sticky background error, soft or hard.
  std::string bg;
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=ok")) << bg;

  // Hot reset: the card comes back; a probe job re-admits it.
  injector.RepairCard();
  bool readmitted = false;
  for (int round = 0; round < 12 && !readmitted; round++) {
    for (int i = 0; i < 20; i++) {
      std::string key = "repair" + std::to_string(i);
      std::string value(512, static_cast<char>('A' + round));
      ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok());
      model[key] = value;
    }
    CompactAllLevels(db.get());
    readmitted = !monitor.quarantined();
  }
  EXPECT_TRUE(readmitted) << monitor.ToString();
  VerifyExactContents(db.get(), model);
}

}  // namespace fcae
