// Fault injection: an Env wrapper that can start failing all writes at
// a chosen moment (simulating a full disk or dying device). Once writes
// fail, the DB must surface errors instead of acknowledging lost data,
// and after the "disk" recovers and the DB reopens, every previously
// acknowledged write must still be there.

#include <atomic>
#include <memory>
#include <set>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "util/env.h"
#include "util/mem_env.h"

namespace fcae {

namespace {

class FaultyWritableFile : public WritableFile {
 public:
  FaultyWritableFile(WritableFile* target, std::atomic<bool>* fail)
      : target_(target), fail_(fail) {}

  Status Append(const Slice& data) override {
    if (fail_->load(std::memory_order_acquire)) {
      return Status::IOError("injected write fault");
    }
    return target_->Append(data);
  }
  Status Close() override { return target_->Close(); }
  Status Flush() override {
    if (fail_->load(std::memory_order_acquire)) {
      return Status::IOError("injected flush fault");
    }
    return target_->Flush();
  }
  Status Sync() override {
    if (fail_->load(std::memory_order_acquire)) {
      return Status::IOError("injected sync fault");
    }
    return target_->Sync();
  }

 private:
  std::unique_ptr<WritableFile> target_;
  std::atomic<bool>* fail_;
};

/// Forwards everything to a wrapped Env; write paths can be poisoned.
class FaultInjectionEnv : public Env {
 public:
  explicit FaultInjectionEnv(Env* target) : target_(target) {}

  void StartFailingWrites() { fail_.store(true, std::memory_order_release); }
  void StopFailingWrites() { fail_.store(false, std::memory_order_release); }

  Status NewSequentialFile(const std::string& f,
                           SequentialFile** r) override {
    return target_->NewSequentialFile(f, r);
  }
  Status NewRandomAccessFile(const std::string& f,
                             RandomAccessFile** r) override {
    return target_->NewRandomAccessFile(f, r);
  }
  Status NewWritableFile(const std::string& f, WritableFile** r) override {
    if (fail_.load(std::memory_order_acquire)) {
      *r = nullptr;
      return Status::IOError("injected create fault");
    }
    WritableFile* inner;
    Status s = target_->NewWritableFile(f, &inner);
    if (s.ok()) {
      *r = new FaultyWritableFile(inner, &fail_);
    }
    return s;
  }
  Status NewAppendableFile(const std::string& f, WritableFile** r) override {
    if (fail_.load(std::memory_order_acquire)) {
      *r = nullptr;
      return Status::IOError("injected create fault");
    }
    WritableFile* inner;
    Status s = target_->NewAppendableFile(f, &inner);
    if (s.ok()) {
      *r = new FaultyWritableFile(inner, &fail_);
    }
    return s;
  }
  bool FileExists(const std::string& f) override {
    return target_->FileExists(f);
  }
  Status GetChildren(const std::string& d,
                     std::vector<std::string>* r) override {
    return target_->GetChildren(d, r);
  }
  Status RemoveFile(const std::string& f) override {
    return target_->RemoveFile(f);
  }
  Status CreateDir(const std::string& d) override {
    return target_->CreateDir(d);
  }
  Status RemoveDir(const std::string& d) override {
    return target_->RemoveDir(d);
  }
  Status GetFileSize(const std::string& f, uint64_t* s) override {
    return target_->GetFileSize(f, s);
  }
  Status RenameFile(const std::string& a, const std::string& b) override {
    if (fail_.load(std::memory_order_acquire)) {
      return Status::IOError("injected rename fault");
    }
    return target_->RenameFile(a, b);
  }
  Status LockFile(const std::string& f, FileLock** l) override {
    return target_->LockFile(f, l);
  }
  Status UnlockFile(FileLock* l) override { return target_->UnlockFile(l); }
  void Schedule(void (*fn)(void*), void* arg) override {
    target_->Schedule(fn, arg);
  }
  void StartThread(void (*fn)(void*), void* arg) override {
    target_->StartThread(fn, arg);
  }
  uint64_t NowMicros() override { return target_->NowMicros(); }
  void SleepForMicroseconds(int micros) override {
    target_->SleepForMicroseconds(micros);
  }

 private:
  Env* target_;
  std::atomic<bool> fail_{false};
};

}  // namespace

class FaultInjectionTest : public testing::Test {
 public:
  FaultInjectionTest()
      : base_env_(NewMemEnv(Env::Default())),
        env_(std::make_unique<FaultInjectionEnv>(base_env_.get())) {}

  Status OpenDb() {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    DB* db = nullptr;
    Status s = DB::Open(options, "/faulty", &db);
    db_.reset(db);
    return s;
  }

  std::unique_ptr<Env> base_env_;
  std::unique_ptr<FaultInjectionEnv> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(FaultInjectionTest, AcknowledgedWritesSurviveDiskOutage) {
  ASSERT_TRUE(OpenDb().ok());

  // Phase 1: writes succeed.
  std::set<std::string> acknowledged;
  WriteOptions wo;
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(i);
    Status s = db_->Put(wo, key, std::string(100, 'v'));
    ASSERT_TRUE(s.ok());
    acknowledged.insert(key);
  }

  // Phase 2: the disk dies. Writes must start failing (possibly after
  // a short grace while the current memtable has room — the WAL append
  // itself fails immediately, so really at once).
  env_->StartFailingWrites();
  int failures = 0;
  for (int i = 3000; i < 3200; i++) {
    if (!db_->Put(wo, "k" + std::to_string(i), "x").ok()) {
      failures++;
    }
  }
  EXPECT_GT(failures, 150);  // The vast majority fail loudly.

  // Phase 3: disk recovers, DB reopens; every acknowledged write is
  // intact.
  env_->StopFailingWrites();
  ASSERT_TRUE(OpenDb().ok());
  std::string value;
  for (const std::string& key : acknowledged) {
    ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
    ASSERT_EQ(std::string(100, 'v'), value);
  }
}

TEST_F(FaultInjectionTest, FailedOpenLeavesNoDb) {
  env_->StartFailingWrites();
  ASSERT_FALSE(OpenDb().ok());
  ASSERT_EQ(nullptr, db_.get());
  env_->StopFailingWrites();
  ASSERT_TRUE(OpenDb().ok());
}

TEST_F(FaultInjectionTest, FlushFailureDoesNotLoseData) {
  ASSERT_TRUE(OpenDb().ok());
  WriteOptions wo;
  // Fill most of a memtable.
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Put(wo, "pre" + std::to_string(i),
                         std::string(150, 'p'))
                    .ok());
  }
  // Fail during the flush the next writes trigger. Some writes may be
  // acknowledged into the WAL before the background flush fails.
  env_->StartFailingWrites();
  for (int i = 0; i < 500; i++) {
    db_->Put(wo, "mid" + std::to_string(i), std::string(150, 'm'));
  }
  env_->StopFailingWrites();

  // Reopen and verify the pre-outage data survived (WAL replay).
  ASSERT_TRUE(OpenDb().ok());
  std::string value;
  for (int i = 0; i < 300; i++) {
    ASSERT_TRUE(db_->Get(ReadOptions(), "pre" + std::to_string(i), &value)
                    .ok())
        << i;
    ASSERT_EQ(std::string(150, 'p'), value);
  }
}

}  // namespace fcae
