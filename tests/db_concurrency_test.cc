// Concurrency smoke tests: multiple client threads reading and writing
// while background flushes/compactions run (on both the CPU and the
// offload executor) must preserve every acknowledged write and never
// return torn values.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

/// Value encodes (thread, counter) so readers can check consistency.
std::string MakeValue(int thread, int counter) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t%02d-c%08d-", thread, counter);
  std::string v(buf);
  v.append(100, static_cast<char>('a' + thread));
  return v;
}

}  // namespace

class DbConcurrencyTest : public testing::TestWithParam<bool> {
 public:
  DbConcurrencyTest() : env_(NewMemEnv(Env::Default())) {
    if (GetParam()) {
      fpga::EngineConfig config;
      config.num_inputs = 9;
      config.input_width = 8;
      config.value_width = 8;
      device_ = std::make_unique<host::FcaeDevice>(config);
      executor_ =
          std::make_unique<host::FcaeCompactionExecutor>(device_.get());
    }
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 128 * 1024;  // Frequent background work.
    options.compaction_executor = executor_.get();
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/concurrent", &db).ok());
    db_.reset(db);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<host::FcaeDevice> device_;
  std::unique_ptr<host::FcaeCompactionExecutor> executor_;
  std::unique_ptr<DB> db_;
};

TEST_P(DbConcurrencyTest, ParallelWritersAllWritesSurvive) {
  constexpr int kThreads = 4;
  constexpr int kWritesPerThread = 1500;

  std::vector<std::thread> threads;
  std::atomic<bool> failed{false};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&, t]() {
      WriteOptions wo;
      for (int i = 0; i < kWritesPerThread; i++) {
        std::string key =
            "t" + std::to_string(t) + "-k" + std::to_string(i);
        if (!db_->Put(wo, key, MakeValue(t, i)).ok()) {
          failed.store(true);
          return;
        }
      }
    });
  }
  for (auto& t : threads) t.join();
  ASSERT_FALSE(failed.load());

  // Every acknowledged write must be present with the right value.
  std::string value;
  for (int t = 0; t < kThreads; t++) {
    for (int i = 0; i < kWritesPerThread; i += 97) {
      std::string key = "t" + std::to_string(t) + "-k" + std::to_string(i);
      ASSERT_TRUE(db_->Get(ReadOptions(), key, &value).ok()) << key;
      ASSERT_EQ(MakeValue(t, i), value);
    }
  }
}

TEST_P(DbConcurrencyTest, ReadersDuringWrites) {
  constexpr int kKeys = 400;
  // Seed every key once so readers always find something.
  for (int k = 0; k < kKeys; k++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "key" + std::to_string(k), MakeValue(0, 0))
            .ok());
  }

  std::atomic<bool> stop{false};
  std::atomic<int> torn{0};
  std::thread reader([&]() {
    Random rnd(7);
    std::string value;
    while (!stop.load(std::memory_order_acquire)) {
      std::string key = "key" + std::to_string(rnd.Uniform(kKeys));
      Status s = db_->Get(ReadOptions(), key, &value);
      if (s.ok()) {
        // Values are always "tNN-cNNNNNNNN-" + 100 letter bytes.
        if (value.size() != 14 + 100 || value[0] != 't') {
          torn.fetch_add(1);
        }
      } else if (!s.IsNotFound()) {
        torn.fetch_add(1);
      }
    }
  });

  Random rnd(13);
  for (int i = 1; i <= 6000; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(kKeys));
    ASSERT_TRUE(db_->Put(WriteOptions(), key, MakeValue(1, i)).ok());
  }
  stop.store(true, std::memory_order_release);
  reader.join();
  ASSERT_EQ(0, torn.load());
}

TEST_P(DbConcurrencyTest, IteratorStableDuringWrites) {
  for (int k = 0; k < 500; k++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "stable" + std::to_string(k),
                         MakeValue(0, k))
                    .ok());
  }
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));

  // Mutate heavily after creating the iterator.
  for (int k = 0; k < 3000; k++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "noise" + std::to_string(k % 100),
                         MakeValue(2, k))
                    .ok());
  }

  // The iterator still sees exactly the pre-mutation state for the
  // stable keys and none of the noise written after its creation.
  int stable_seen = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string key = iter->key().ToString();
    if (key.rfind("stable", 0) == 0) stable_seen++;
  }
  ASSERT_EQ(500, stable_seen);
  ASSERT_TRUE(iter->status().ok());
}

INSTANTIATE_TEST_SUITE_P(CpuExecutor, DbConcurrencyTest,
                         testing::Values(false));
INSTANTIATE_TEST_SUITE_P(FcaeExecutor, DbConcurrencyTest,
                         testing::Values(true));

}  // namespace fcae
