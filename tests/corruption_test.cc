// Table-file corruption at the DB level: flipped bits in SSTables must
// surface as errors (or NotFound), never as wrong data; the offload
// stager must reject corrupt inputs before the device consumes them.

#include <memory>

#include "gtest/gtest.h"
#include "fpga/compaction_engine.h"
#include "host/sstable_stager.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "table/iterator.h"
#include "util/env.h"
#include "util/mem_env.h"

namespace fcae {

class CorruptionTest : public testing::Test {
 public:
  CorruptionTest() : env_(NewMemEnv(Env::Default())), dbname_("/corrupt") {
    Open();
  }

  void Open() {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.paranoid_checks = true;
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, dbname_, &db).ok());
    db_.reset(db);
  }

  void FillAndFlush(int n) {
    for (int i = 0; i < n; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      ASSERT_TRUE(
          db_->Put(WriteOptions(), key, std::string(100, 'v')).ok());
    }
    // Best-effort: later builds may run against corrupted state.
    reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable()
        .IgnoreError();
  }

  std::vector<std::string> TableFiles() {
    std::vector<std::string> children, result;
    EXPECT_TRUE(env_->GetChildren(dbname_, &children).ok());
    for (const std::string& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kTableFile) {
        result.push_back(dbname_ + "/" + child);
      }
    }
    return result;
  }

  void CorruptFile(const std::string& fname, size_t offset) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), fname, &contents).ok());
    ASSERT_LT(offset, contents.size());
    contents[offset] ^= 0x40;
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, fname).ok());
  }

  std::unique_ptr<Env> env_;
  std::string dbname_;
  std::unique_ptr<DB> db_;
};

TEST_F(CorruptionTest, FlippedDataBlockByteNeverReturnsWrongData) {
  FillAndFlush(2000);
  auto tables = TableFiles();
  ASSERT_FALSE(tables.empty());
  // Corrupt a byte inside the data region (early in the file). Reopen
  // so the table cache does not serve a stale reader.
  CorruptFile(tables[0], 100);
  Open();

  ReadOptions ro;
  ro.verify_checksums = true;
  std::string value;
  int wrong = 0, errors = 0;
  for (int i = 0; i < 2000; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    Status s = db_->Get(ro, key, &value);
    if (s.ok()) {
      if (value != std::string(100, 'v')) wrong++;
    } else if (!s.IsNotFound()) {
      errors++;
    }
  }
  EXPECT_EQ(0, wrong);  // Never wrong data.
  EXPECT_GT(errors, 0);  // The corrupt block is reported.
}

TEST_F(CorruptionTest, ScanSurfacesCorruption) {
  FillAndFlush(2000);
  auto tables = TableFiles();
  ASSERT_FALSE(tables.empty());
  CorruptFile(tables[0], 5000);
  Open();

  ReadOptions ro;
  ro.verify_checksums = true;
  std::unique_ptr<Iterator> iter(db_->NewIterator(ro));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
  }
  EXPECT_FALSE(iter->status().ok());
}

TEST_F(CorruptionTest, StagerRejectsCorruptIndexBlock) {
  FillAndFlush(2000);
  auto tables = TableFiles();
  ASSERT_FALSE(tables.empty());
  // Corrupt near the end of the file (index block region, before the
  // footer).
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(tables[0], &size).ok());
  CorruptFile(tables[0], size - 100);

  host::SstableStager stager(env_.get());
  fpga::DeviceInput input;
  Status s = stager.AddTable(tables[0], &input);
  if (s.ok()) {
    // Staging reads bytes verbatim; the engine's trailer check must
    // then catch the flip.
    fpga::DeviceOutput out;
    fpga::EngineConfig config;
    fpga::CompactionEngine engine(config, {&input}, 1ull << 40, true, &out);
    ASSERT_FALSE(engine.Run().ok());
  }
}

TEST_F(CorruptionTest, CompactionOverCorruptTableFails) {
  FillAndFlush(2000);
  auto tables = TableFiles();
  ASSERT_FALSE(tables.empty());
  CorruptFile(tables[0], 200);
  Open();
  // A manual compaction touching the corrupt file must not succeed
  // silently; afterwards reads are still never wrong.
  db_->CompactRange(nullptr, nullptr);
  ReadOptions ro;
  ro.verify_checksums = true;
  std::string value;
  for (int i = 0; i < 2000; i += 101) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    Status s = db_->Get(ro, key, &value);
    if (s.ok()) {
      ASSERT_EQ(std::string(100, 'v'), value);
    }
  }
}

}  // namespace fcae
