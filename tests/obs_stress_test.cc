// Multi-threaded stress of the obs/ layer, run under TSan via
// `ctest -C stress`: writers hammer counters/gauges/histograms and the
// trace ring while readers continuously export JSON. Exercises the
// registration race (many threads demanding the same names), the ring
// overwrite path and the sink hand-off.

#include <atomic>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fcae {
namespace obs {
namespace {

TEST(ObsStressTest, RegistryConcurrentWritersAndExporters) {
  MetricsRegistry registry;
  constexpr int kWriters = 8;
  constexpr int kOpsPerWriter = 20000;

  std::atomic<bool> stop{false};
  std::thread exporter([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      std::string json = registry.ToJson();
      ASSERT_FALSE(json.empty());
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&registry, t]() {
      // Half the threads share instruments, half use their own, so both
      // the lookup race and concurrent updates are exercised.
      std::string suffix = (t % 2 == 0) ? "shared" : std::to_string(t);
      Counter* c = registry.counter("stress.ops." + suffix);
      Gauge* g = registry.gauge("stress.depth." + suffix);
      HistogramMetric* h = registry.histogram("stress.micros." + suffix);
      for (int i = 0; i < kOpsPerWriter; i++) {
        c->Increment();
        g->Set(i);
        if (i % 64 == 0) h->Observe(i);
        // Periodically re-register to stress the map lookup under load.
        if (i % 1024 == 0) {
          ASSERT_EQ(c, registry.counter("stress.ops." + suffix));
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  exporter.join();

  uint64_t shared = registry.counter("stress.ops.shared")->value();
  EXPECT_EQ(static_cast<uint64_t>(kWriters / 2) * kOpsPerWriter, shared);
}

class CountingSink : public TraceSink {
 public:
  void Append(const TraceEvent& event) override {
    (void)event;
    appended.fetch_add(1, std::memory_order_relaxed);
  }
  std::atomic<uint64_t> appended{0};
};

TEST(ObsStressTest, TraceRingConcurrentRecordAndExport) {
  TraceRecorder recorder(256);  // Small ring: constant overwrite.
  CountingSink sink;
  recorder.set_sink(&sink);

  constexpr int kWriters = 6;
  constexpr int kEventsPerWriter = 10000;

  std::atomic<bool> stop{false};
  std::thread exporter([&]() {
    while (!stop.load(std::memory_order_acquire)) {
      std::string json = recorder.ToJson();
      ASSERT_FALSE(json.empty());
    }
  });

  std::vector<std::thread> writers;
  for (int t = 0; t < kWriters; t++) {
    writers.emplace_back([&recorder, t]() {
      for (int i = 0; i < kEventsPerWriter; i++) {
        if (i % 3 == 0) {
          recorder.RecordInstant("instant", "stress", i, t);
        } else {
          SpanTimer span(&recorder, "span", "stress", t);
          span.AddArg("i", std::to_string(i));
        }
      }
    });
  }
  for (auto& w : writers) w.join();
  stop.store(true, std::memory_order_release);
  exporter.join();
  recorder.set_sink(nullptr);

  const uint64_t total = static_cast<uint64_t>(kWriters) * kEventsPerWriter;
  EXPECT_EQ(total, sink.appended.load());
  EXPECT_EQ(256u, recorder.size());
  EXPECT_EQ(total - 256, recorder.events_dropped());
}

}  // namespace
}  // namespace obs
}  // namespace fcae
