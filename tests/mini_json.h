#ifndef FCAE_TESTS_MINI_JSON_H_
#define FCAE_TESTS_MINI_JSON_H_

// A minimal strict JSON parser for test assertions on the obs/ exports
// (fcae.metrics, fcae.trace). Recursive descent, no extensions: exactly
// what "valid JSON" means in the acceptance criteria. Parse failures
// carry a byte offset so a malformed emitter is easy to localize.

#include <cctype>
#include <cstdlib>
#include <map>
#include <string>
#include <vector>

namespace fcae {
namespace mini_json {

struct Value {
  enum Kind { kNull, kBool, kNumber, kString, kArray, kObject };
  Kind kind = kNull;

  bool boolean = false;
  double number = 0;
  std::string str;
  std::vector<Value> array;
  std::map<std::string, Value> object;

  bool Has(const std::string& key) const {
    return kind == kObject && object.count(key) > 0;
  }
  const Value& operator[](const std::string& key) const {
    static const Value kMissing;
    auto it = object.find(key);
    return it == object.end() ? kMissing : it->second;
  }
};

class Parser {
 public:
  explicit Parser(const std::string& text) : text_(text) {}

  bool Parse(Value* out) {
    pos_ = 0;
    if (!ParseValue(out)) return false;
    SkipSpace();
    if (pos_ != text_.size()) return Fail("trailing characters");
    return true;
  }

  const std::string& error() const { return error_; }

 private:
  bool Fail(const std::string& what) {
    if (error_.empty()) {
      error_ = what + " at offset " + std::to_string(pos_);
    }
    return false;
  }

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      pos_++;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      pos_++;
      return true;
    }
    return Fail(std::string("expected '") + c + "'");
  }

  bool ParseValue(Value* out) {
    SkipSpace();
    if (pos_ >= text_.size()) return Fail("unexpected end");
    char c = text_[pos_];
    if (c == '{') return ParseObject(out);
    if (c == '[') return ParseArray(out);
    if (c == '"') {
      out->kind = Value::kString;
      return ParseString(&out->str);
    }
    if (c == 't' || c == 'f') return ParseLiteral(out);
    if (c == 'n') return ParseLiteral(out);
    return ParseNumber(out);
  }

  bool ParseLiteral(Value* out) {
    auto match = [&](const char* word) {
      size_t len = std::string(word).size();
      if (text_.compare(pos_, len, word) == 0) {
        pos_ += len;
        return true;
      }
      return false;
    };
    if (match("true")) {
      out->kind = Value::kBool;
      out->boolean = true;
      return true;
    }
    if (match("false")) {
      out->kind = Value::kBool;
      out->boolean = false;
      return true;
    }
    if (match("null")) {
      out->kind = Value::kNull;
      return true;
    }
    return Fail("bad literal");
  }

  bool ParseNumber(Value* out) {
    size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') pos_++;
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) ||
            text_[pos_] == '.' || text_[pos_] == 'e' || text_[pos_] == 'E' ||
            text_[pos_] == '+' || text_[pos_] == '-')) {
      pos_++;
    }
    if (pos_ == start) return Fail("bad number");
    char* end = nullptr;
    std::string token = text_.substr(start, pos_ - start);
    out->kind = Value::kNumber;
    out->number = std::strtod(token.c_str(), &end);
    if (end == nullptr || *end != '\0') return Fail("bad number");
    return true;
  }

  bool ParseString(std::string* out) {
    SkipSpace();
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return Fail("expected string");
    }
    pos_++;
    out->clear();
    while (pos_ < text_.size()) {
      char c = text_[pos_++];
      if (c == '"') return true;
      if (static_cast<unsigned char>(c) < 0x20) {
        return Fail("raw control character in string");
      }
      if (c != '\\') {
        out->push_back(c);
        continue;
      }
      if (pos_ >= text_.size()) return Fail("bad escape");
      char e = text_[pos_++];
      switch (e) {
        case '"': out->push_back('"'); break;
        case '\\': out->push_back('\\'); break;
        case '/': out->push_back('/'); break;
        case 'b': out->push_back('\b'); break;
        case 'f': out->push_back('\f'); break;
        case 'n': out->push_back('\n'); break;
        case 'r': out->push_back('\r'); break;
        case 't': out->push_back('\t'); break;
        case 'u': {
          if (pos_ + 4 > text_.size()) return Fail("bad \\u escape");
          unsigned code = 0;
          for (int i = 0; i < 4; i++) {
            char h = text_[pos_++];
            code <<= 4;
            if (h >= '0' && h <= '9') code |= h - '0';
            else if (h >= 'a' && h <= 'f') code |= h - 'a' + 10;
            else if (h >= 'A' && h <= 'F') code |= h - 'A' + 10;
            else return Fail("bad \\u escape");
          }
          // Tests only emit codes below 0x80; encode as a single byte.
          out->push_back(static_cast<char>(code & 0x7f));
          break;
        }
        default: return Fail("bad escape");
      }
    }
    return Fail("unterminated string");
  }

  bool ParseObject(Value* out) {
    if (!Consume('{')) return false;
    out->kind = Value::kObject;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == '}') {
      pos_++;
      return true;
    }
    while (true) {
      std::string key;
      if (!ParseString(&key)) return false;
      if (!Consume(':')) return false;
      Value v;
      if (!ParseValue(&v)) return false;
      out->object[key] = v;
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        pos_++;
        continue;
      }
      return Consume('}');
    }
  }

  bool ParseArray(Value* out) {
    if (!Consume('[')) return false;
    out->kind = Value::kArray;
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == ']') {
      pos_++;
      return true;
    }
    while (true) {
      Value v;
      if (!ParseValue(&v)) return false;
      out->array.push_back(v);
      SkipSpace();
      if (pos_ < text_.size() && text_[pos_] == ',') {
        pos_++;
        continue;
      }
      return Consume(']');
    }
  }

  const std::string& text_;
  size_t pos_ = 0;
  std::string error_;
};

/// Parses `text`; on failure returns false and sets `error`.
inline bool Parse(const std::string& text, Value* out, std::string* error) {
  Parser parser(text);
  bool ok = parser.Parse(out);
  if (!ok && error != nullptr) *error = parser.error();
  return ok;
}

}  // namespace mini_json
}  // namespace fcae

#endif  // FCAE_TESTS_MINI_JSON_H_
