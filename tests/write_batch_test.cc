#include "lsm/write_batch.h"

#include <memory>

#include "gtest/gtest.h"
#include "lsm/memtable.h"
#include "table/iterator.h"

namespace fcae {

static std::string PrintContents(WriteBatch* b) {
  InternalKeyComparator cmp(BytewiseComparator());
  MemTable* mem = new MemTable(cmp);
  mem->Ref();
  std::string state;
  Status s = WriteBatchInternal::InsertInto(b, mem);
  int count = 0;
  Iterator* iter = mem->NewIterator();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey ikey;
    EXPECT_TRUE(ParseInternalKey(iter->key(), &ikey));
    switch (ikey.type) {
      case kTypeValue:
        state.append("Put(");
        state.append(ikey.user_key.ToString());
        state.append(", ");
        state.append(iter->value().ToString());
        state.append(")");
        count++;
        break;
      case kTypeDeletion:
        state.append("Delete(");
        state.append(ikey.user_key.ToString());
        state.append(")");
        count++;
        break;
    }
    state.append("@");
    state.append(std::to_string(ikey.sequence));
  }
  delete iter;
  if (!s.ok()) {
    state.append("ParseError()");
  } else if (count != WriteBatchInternal::Count(b)) {
    state.append("CountMismatch()");
  }
  mem->Unref();
  return state;
}

TEST(WriteBatchTest, Empty) {
  WriteBatch batch;
  ASSERT_EQ("", PrintContents(&batch));
  ASSERT_EQ(0, WriteBatchInternal::Count(&batch));
}

TEST(WriteBatchTest, Multiple) {
  WriteBatch batch;
  batch.Put(Slice("foo"), Slice("bar"));
  batch.Delete(Slice("box"));
  batch.Put(Slice("baz"), Slice("boo"));
  WriteBatchInternal::SetSequence(&batch, 100);
  ASSERT_EQ(100u, WriteBatchInternal::Sequence(&batch));
  ASSERT_EQ(3, WriteBatchInternal::Count(&batch));
  ASSERT_EQ(
      "Put(baz, boo)@102"
      "Delete(box)@101"
      "Put(foo, bar)@100",
      PrintContents(&batch));
}

TEST(WriteBatchTest, Corruption) {
  WriteBatch batch;
  batch.Put(Slice("foo"), Slice("bar"));
  batch.Delete(Slice("box"));
  WriteBatchInternal::SetSequence(&batch, 200);
  Slice contents = WriteBatchInternal::Contents(&batch);
  WriteBatch batch2;
  WriteBatchInternal::SetContents(&batch2,
                                  Slice(contents.data(), contents.size() - 1));
  ASSERT_EQ(
      "Put(foo, bar)@200"
      "ParseError()",
      PrintContents(&batch2));
}

TEST(WriteBatchTest, Append) {
  WriteBatch b1, b2;
  WriteBatchInternal::SetSequence(&b1, 200);
  WriteBatchInternal::SetSequence(&b2, 300);
  b1.Append(b2);
  ASSERT_EQ("", PrintContents(&b1));
  b2.Put("a", "va");
  b1.Append(b2);
  ASSERT_EQ("Put(a, va)@200", PrintContents(&b1));
  b2.Clear();
  b2.Put("b", "vb");
  b1.Append(b2);
  ASSERT_EQ(
      "Put(a, va)@200"
      "Put(b, vb)@201",
      PrintContents(&b1));
  b2.Delete("foo");
  b1.Append(b2);
  ASSERT_EQ(
      "Put(a, va)@200"
      "Put(b, vb)@202"  // Same user key: newer sequence iterates first.
      "Put(b, vb)@201"
      "Delete(foo)@203",
      PrintContents(&b1));
}

TEST(WriteBatchTest, ApproximateSize) {
  WriteBatch batch;
  size_t empty_size = batch.ApproximateSize();

  batch.Put(Slice("foo"), Slice("bar"));
  size_t one_key_size = batch.ApproximateSize();
  ASSERT_LT(empty_size, one_key_size);

  batch.Put(Slice("baz"), Slice("boo"));
  size_t two_keys_size = batch.ApproximateSize();
  ASSERT_LT(one_key_size, two_keys_size);

  batch.Delete(Slice("box"));
  size_t post_delete_size = batch.ApproximateSize();
  ASSERT_LT(two_keys_size, post_delete_size);
}

TEST(WriteBatchTest, ClearResets) {
  WriteBatch batch;
  batch.Put("k", "v");
  batch.Clear();
  ASSERT_EQ(0, WriteBatchInternal::Count(&batch));
  ASSERT_EQ("", PrintContents(&batch));
}

}  // namespace fcae
