// Property-based equivalence fuzzing: for randomized workloads (random
// key distributions, overlaps, deletions, duplicate user keys across
// runs, snapshots, multi-table runs, random engine configurations) the
// cycle-level engine, the software compactor and a std::map-based model
// must agree exactly.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpga/compaction_engine.h"
#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "host/cpu_compactor.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {
namespace fpga {

using fpga_test::BuildDeviceInput;
using fpga_test::FlattenOutput;
using fpga_test::TestKv;

namespace {

/// Generates one sorted run with random keys/values; sequences are drawn
/// from [seq_base, seq_base + count) so runs have distinct sequence
/// ranges (as distinct SSTables always do).
std::vector<TestKv> RandomRun(Random* rnd, uint64_t seq_base, int max_records,
                              int key_space) {
  std::map<std::string, TestKv> sorted;  // Dedup user keys within a run.
  const int n = 1 + rnd->Uniform(max_records);
  uint64_t seq = seq_base;
  for (int i = 0; i < n; i++) {
    TestKv kv;
    char key[32];
    std::snprintf(key, sizeof(key), "k%08u", rnd->Uniform(key_space));
    kv.user_key = key;
    kv.sequence = seq++;
    kv.type = rnd->OneIn(5) ? kTypeDeletion : kTypeValue;
    if (kv.type == kTypeValue) {
      kv.value.assign(1 + rnd->Uniform(600),
                      static_cast<char>('a' + rnd->Uniform(26)));
    }
    sorted[kv.user_key] = kv;  // Later sequence wins inside the run.
  }
  std::vector<TestKv> run;
  for (auto& kv : sorted) run.push_back(std::move(kv.second));
  return run;
}

/// The reference semantics: merge all records, keep per user key every
/// version above the snapshot plus the newest at-or-below it; drop
/// deletion markers at/below the snapshot only when drop_deletions.
std::vector<std::pair<std::string, std::string>> ModelMerge(
    const std::vector<std::vector<TestKv>>& runs, uint64_t snapshot,
    bool drop_deletions) {
  // Collect all (internal key -> value) sorted by user key asc, seq desc.
  struct Entry {
    TestKv kv;
  };
  std::map<std::pair<std::string, uint64_t>, TestKv> all;  // (ukey, ~seq)
  for (const auto& run : runs) {
    for (const TestKv& kv : run) {
      all[{kv.user_key, ~kv.sequence}] = kv;
    }
  }

  std::vector<std::pair<std::string, std::string>> result;
  std::string current_key;
  bool has_current = false;
  uint64_t last_seq = kMaxSequenceNumber;
  for (auto& [key_pair, kv] : all) {
    if (!has_current || kv.user_key != current_key) {
      current_key = kv.user_key;
      has_current = true;
      last_seq = kMaxSequenceNumber;
    }
    bool drop = false;
    if (last_seq <= snapshot) {
      drop = true;
    } else if (kv.type == kTypeDeletion && kv.sequence <= snapshot &&
               drop_deletions) {
      drop = true;
    }
    last_seq = kv.sequence;
    if (!drop) {
      result.emplace_back(kv.InternalKey(), kv.value);
    }
  }
  return result;
}

}  // namespace

class EnginePropertyTest : public testing::TestWithParam<int> {};

TEST_P(EnginePropertyTest, EngineEqualsCpuEqualsModel) {
  Random rnd(GetParam() * 7919);
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  // Random shape.
  const int num_runs = 1 + rnd.Uniform(6);
  const bool drop_deletions = rnd.OneIn(2);
  const uint64_t snapshot = rnd.OneIn(3)
                                ? 1000 + rnd.Uniform(5000)  // Pins versions.
                                : (1ull << 40);             // No snapshots.

  std::vector<std::vector<TestKv>> runs;
  std::vector<std::unique_ptr<DeviceInput>> inputs;
  for (int r = 0; r < num_runs; r++) {
    // Multi-table runs sometimes: split one sorted run across tables.
    auto run = RandomRun(&rnd, 1000 * (r + 1), 400, 300);
    runs.push_back(run);
    std::vector<std::vector<TestKv>> tables;
    if (run.size() > 10 && rnd.OneIn(3)) {
      size_t split = run.size() / 2;
      tables.emplace_back(run.begin(), run.begin() + split);
      tables.emplace_back(run.begin() + split, run.end());
    } else {
      tables.push_back(run);
    }
    auto input = std::make_unique<DeviceInput>();
    ASSERT_TRUE(
        BuildDeviceInput(env.get(), options, tables, r, input.get()).ok());
    inputs.push_back(std::move(input));
  }

  std::vector<const DeviceInput*> ptrs;
  for (auto& in : inputs) ptrs.push_back(in.get());

  // Random engine configuration.
  EngineConfig config;
  config.num_inputs = num_runs < 2 ? 2 : num_runs;
  const int widths[] = {8, 16, 32, 64};
  config.value_width = widths[rnd.Uniform(4)];
  config.input_width = widths[rnd.Uniform(4)];
  config.compress_output = !rnd.OneIn(4);
  if (rnd.OneIn(4)) {
    config.sstable_threshold = 32 * 1024;  // Force table rollovers.
  }
  const OptLevel levels[] = {OptLevel::kBasic, OptLevel::kBlockSeparation,
                             OptLevel::kKeyValueSeparation,
                             OptLevel::kFullBandwidth};
  config.opt_level = levels[rnd.Uniform(4)];

  // 1. Engine.
  DeviceOutput engine_out;
  CompactionEngine engine(config, ptrs, snapshot, drop_deletions,
                          &engine_out);
  ASSERT_TRUE(engine.Run().ok());
  std::vector<std::pair<std::string, std::string>> engine_entries;
  ASSERT_TRUE(FlattenOutput(engine_out, &engine_entries).ok());

  // 2. Software compactor (same thresholds).
  host::CpuCompactorOptions cpu_options;
  cpu_options.smallest_snapshot = snapshot;
  cpu_options.drop_deletions = drop_deletions;
  cpu_options.compress_output = config.compress_output;
  cpu_options.sstable_threshold = config.sstable_threshold;
  cpu_options.data_block_threshold = config.data_block_threshold;
  DeviceOutput cpu_out;
  host::CpuCompactStats cpu_stats;
  ASSERT_TRUE(
      host::CpuCompactImages(ptrs, cpu_options, &cpu_out, &cpu_stats).ok());
  std::vector<std::pair<std::string, std::string>> cpu_entries;
  ASSERT_TRUE(FlattenOutput(cpu_out, &cpu_entries).ok());

  // 3. Model.
  auto model_entries = ModelMerge(runs, snapshot, drop_deletions);

  ASSERT_EQ(model_entries, cpu_entries) << "cpu diverged from model";
  ASSERT_EQ(model_entries, engine_entries) << "engine diverged from model";

  // Byte-level equality of the produced tables across the two real
  // executors.
  ASSERT_EQ(cpu_out.tables.size(), engine_out.tables.size());
  for (size_t i = 0; i < cpu_out.tables.size(); i++) {
    ASSERT_EQ(cpu_out.tables[i].data_memory,
              engine_out.tables[i].data_memory);
    ASSERT_EQ(cpu_out.tables[i].smallest_key,
              engine_out.tables[i].smallest_key);
    ASSERT_EQ(cpu_out.tables[i].largest_key,
              engine_out.tables[i].largest_key);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, EnginePropertyTest, testing::Range(1, 33));

}  // namespace fpga
}  // namespace fcae
