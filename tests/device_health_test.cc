// Unit tests of the fault-tolerant offload building blocks: the seeded
// DeviceFaultInjector (deterministic streams, one-shots, sticky drops),
// the DeviceHealthMonitor circuit breaker, the host output verifier
// that keeps silently corrupt device results out of the manifest, and
// the device-level kernel deadline watchdog.

#include <memory>
#include <vector>

#include "fpga/fault_injector.h"
#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "host/device_health_monitor.h"
#include "host/fcae_device.h"
#include "host/output_verifier.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "lsm/dbformat.h"
#include "util/mem_env.h"

namespace fcae {
namespace host {

using fpga_test::BuildDeviceInput;
using fpga_test::MakeRun;

// ---------------------------------------------------------------------
// DeviceFaultInjector
// ---------------------------------------------------------------------

TEST(DeviceFaultInjectorTest, DeterministicFromSeed) {
  fpga::DeviceFaultConfig config;
  config.seed = 99;
  config.transient_rate = 0.3;

  fpga::DeviceFaultInjector a(config);
  fpga::DeviceFaultInjector b(config);
  for (int i = 0; i < 500; i++) {
    fpga::FaultDecision da = a.NextLaunch();
    fpga::FaultDecision db = b.NextLaunch();
    EXPECT_EQ(da.cls, db.cls) << "launch " << i;
    EXPECT_EQ(da.silent, db.silent) << "launch " << i;
    EXPECT_EQ(da.corruption_seed, db.corruption_seed) << "launch " << i;
  }
  EXPECT_EQ(a.total_faults(), b.total_faults());
  EXPECT_GT(a.total_faults(), 0u);
  EXPECT_LT(a.total_faults(), 500u);
  EXPECT_EQ(500u, a.launches());
}

TEST(DeviceFaultInjectorTest, ZeroRateDrawsNothing) {
  fpga::DeviceFaultInjector injector(fpga::DeviceFaultConfig{});
  for (int i = 0; i < 200; i++) {
    EXPECT_EQ(fpga::DeviceFaultClass::kNone, injector.NextLaunch().cls);
  }
  EXPECT_EQ(0u, injector.total_faults());
}

TEST(DeviceFaultInjectorTest, RateIsRoughlyHonored) {
  fpga::DeviceFaultConfig config;
  config.seed = 7;
  config.transient_rate = 0.10;
  fpga::DeviceFaultInjector injector(config);
  const int n = 5000;
  for (int i = 0; i < n; i++) injector.NextLaunch();
  // 10% +- generous slack.
  EXPECT_GT(injector.total_faults(), n / 20u);
  EXPECT_LT(injector.total_faults(), n / 5u);
  // All three transient classes occur with equal default weights.
  EXPECT_GT(injector.count(fpga::DeviceFaultClass::kDmaCorruption), 0u);
  EXPECT_GT(injector.count(fpga::DeviceFaultClass::kKernelTimeout), 0u);
  EXPECT_GT(injector.count(fpga::DeviceFaultClass::kDeviceBusy), 0u);
  EXPECT_EQ(0u, injector.count(fpga::DeviceFaultClass::kCardDropped));
}

TEST(DeviceFaultInjectorTest, OneShotOverridesStream) {
  fpga::DeviceFaultInjector injector(fpga::DeviceFaultConfig{});
  injector.ArmOneShot(fpga::DeviceFaultClass::kDeviceBusy, 3);
  EXPECT_EQ(fpga::DeviceFaultClass::kNone, injector.NextLaunch().cls);
  EXPECT_EQ(fpga::DeviceFaultClass::kNone, injector.NextLaunch().cls);
  EXPECT_EQ(fpga::DeviceFaultClass::kDeviceBusy, injector.NextLaunch().cls);
  EXPECT_EQ(fpga::DeviceFaultClass::kNone, injector.NextLaunch().cls);
  EXPECT_EQ(1u, injector.total_faults());
}

TEST(DeviceFaultInjectorTest, CardDropIsSticky) {
  fpga::DeviceFaultConfig config;
  config.card_drop_at_launch = 2;
  fpga::DeviceFaultInjector injector(config);
  EXPECT_EQ(fpga::DeviceFaultClass::kNone, injector.NextLaunch().cls);
  EXPECT_EQ(fpga::DeviceFaultClass::kCardDropped, injector.NextLaunch().cls);
  // Every subsequent launch keeps failing until the card is repaired.
  for (int i = 0; i < 5; i++) {
    EXPECT_EQ(fpga::DeviceFaultClass::kCardDropped,
              injector.NextLaunch().cls);
  }
  EXPECT_TRUE(injector.card_dropped());
  injector.RepairCard();
  EXPECT_FALSE(injector.card_dropped());
  EXPECT_EQ(fpga::DeviceFaultClass::kNone, injector.NextLaunch().cls);
}

// ---------------------------------------------------------------------
// DeviceHealthMonitor
// ---------------------------------------------------------------------

TEST(DeviceHealthMonitorTest, OpensAfterConsecutiveFailures) {
  DeviceHealthOptions options;
  options.quarantine_threshold = 3;
  DeviceHealthMonitor monitor(options);

  EXPECT_TRUE(monitor.Admit());
  monitor.RecordJobFailure(false);
  monitor.RecordJobFailure(false);
  EXPECT_FALSE(monitor.quarantined());  // 2 < threshold.
  // A success in between resets the streak.
  monitor.RecordJobSuccess();
  monitor.RecordJobFailure(false);
  monitor.RecordJobFailure(false);
  EXPECT_FALSE(monitor.quarantined());
  monitor.RecordJobFailure(false);
  EXPECT_TRUE(monitor.quarantined());
  EXPECT_EQ(1u, monitor.snapshot().quarantines);
}

TEST(DeviceHealthMonitorTest, StickyFailureOpensImmediately) {
  DeviceHealthOptions options;
  options.quarantine_threshold = 3;
  options.sticky_weight = 3;
  DeviceHealthMonitor monitor(options);
  monitor.RecordJobFailure(/*sticky=*/true);
  EXPECT_TRUE(monitor.quarantined());
}

TEST(DeviceHealthMonitorTest, ProbeAndReadmission) {
  DeviceHealthOptions options;
  options.quarantine_threshold = 1;
  options.probe_interval = 4;
  DeviceHealthMonitor monitor(options);
  monitor.RecordJobFailure(false);
  ASSERT_TRUE(monitor.quarantined());

  // Denied until the probe_interval-th request, which is let through.
  int admitted = 0;
  for (int i = 0; i < 4; i++) {
    if (monitor.Admit()) admitted++;
  }
  EXPECT_EQ(1, admitted);
  DeviceHealthMonitor::Snapshot snap = monitor.snapshot();
  EXPECT_EQ(3u, snap.jobs_denied);
  EXPECT_EQ(1u, snap.probes);

  // A failed probe keeps the breaker open...
  monitor.RecordJobFailure(false);
  EXPECT_TRUE(monitor.quarantined());
  // ...a successful one closes it.
  for (int i = 0; i < 4; i++) monitor.Admit();
  monitor.RecordJobSuccess();
  EXPECT_FALSE(monitor.quarantined());
  EXPECT_EQ(1u, monitor.snapshot().readmissions);
  // Closed breaker admits everything without counting denials.
  EXPECT_TRUE(monitor.Admit());
  EXPECT_TRUE(monitor.Admit());
}

TEST(DeviceHealthMonitorTest, CardBoundMonitorPublishesPerCardNames) {
  // A monitor bound to card 2 of a DeviceSet must publish its gauges
  // under health.card2.* (never the legacy unbound names) and stamp the
  // card id on every OnDeviceHealthChange event, so per-card breakers
  // never alias in the registry or in listener callbacks.
  class CaptureListener : public obs::EventListener {
   public:
    void OnDeviceHealthChange(
        const obs::DeviceHealthChangeInfo& info) override {
      MutexLock lock(&mutex_);
      events_.push_back(info);
    }
    std::vector<obs::DeviceHealthChangeInfo> events() const {
      MutexLock lock(&mutex_);
      return events_;
    }

   private:
    mutable Mutex mutex_;
    std::vector<obs::DeviceHealthChangeInfo> events_;
  };

  obs::MetricsRegistry metrics;
  CaptureListener listener;
  obs::EventNotifier notifier({&listener});

  DeviceHealthOptions options;
  options.quarantine_threshold = 1;
  options.sticky_weight = 1;
  DeviceHealthMonitor monitor(options, /*card_id=*/2);
  EXPECT_EQ(2, monitor.card_id());
  monitor.AttachObservability(&metrics, nullptr);
  monitor.AttachNotifier(&notifier);

  monitor.RecordJobFailure(/*sticky=*/true);
  ASSERT_TRUE(monitor.quarantined());
  EXPECT_EQ(1, metrics.gauge("health.card2.quarantined")->value());
  EXPECT_EQ(1, metrics.gauge("health.card2.sticky_failures")->value());
  EXPECT_EQ(1, metrics.gauge("health.card2.quarantines")->value());
  // The legacy unbound names were never registered by this monitor.
  obs::MetricsRegistry::Snapshot snap = metrics.TakeSnapshot();
  EXPECT_EQ(0u, snap.gauges.count("health.quarantined"));

  // The breaker closing again fires a second event, same card id.
  monitor.RecordJobSuccess();
  ASSERT_FALSE(monitor.quarantined());
  std::vector<obs::DeviceHealthChangeInfo> events = listener.events();
  ASSERT_EQ(2u, events.size());
  EXPECT_EQ(2, events[0].card_id);
  EXPECT_TRUE(events[0].quarantined);
  EXPECT_EQ(2, events[1].card_id);
  EXPECT_FALSE(events[1].quarantined);

  // ToString names the card so multi-card health dumps stay readable.
  EXPECT_NE(std::string::npos, monitor.ToString().find("card2"))
      << monitor.ToString();

  // An unbound monitor keeps the legacy behaviour: card_id -1 events.
  DeviceHealthMonitor unbound(options);
  unbound.AttachNotifier(&notifier);
  unbound.RecordJobFailure(/*sticky=*/true);
  events = listener.events();
  ASSERT_EQ(3u, events.size());
  EXPECT_EQ(-1, events[2].card_id);
}

TEST(DeviceHealthMonitorTest, ToStringCarriesCounters) {
  DeviceHealthMonitor monitor;
  monitor.RecordJobSuccess();
  monitor.RecordJobFailure(false);
  std::string s = monitor.ToString();
  EXPECT_NE(std::string::npos, s.find("quarantined=0")) << s;
  EXPECT_NE(std::string::npos, s.find("ok=1")) << s;
  EXPECT_NE(std::string::npos, s.find("failed=1")) << s;
}

// ---------------------------------------------------------------------
// Output verification
// ---------------------------------------------------------------------

class OutputVerifierTest : public testing::Test {
 public:
  OutputVerifierTest()
      : env_(NewMemEnv(Env::Default())), icmp_(BytewiseComparator()) {
    options_.env = env_.get();
  }

  /// Produces a genuine device output by merging two staged runs.
  fpga::DeviceOutput MakeOutput() {
    std::vector<std::unique_ptr<fpga::DeviceInput>> inputs;
    for (int i = 0; i < 2; i++) {
      auto input = std::make_unique<fpga::DeviceInput>();
      auto run = MakeRun("key", i, 400, 2, 1000 * (i + 1), 48);
      EXPECT_TRUE(
          BuildDeviceInput(env_.get(), options_, {run}, i, input.get()).ok());
      inputs.push_back(std::move(input));
    }
    fpga::EngineConfig config;
    config.num_inputs = 2;
    FcaeDevice device(config);
    fpga::DeviceOutput output;
    DeviceRunStats stats;
    EXPECT_TRUE(device
                    .ExecuteCompaction({inputs[0].get(), inputs[1].get()},
                                       kNoSnapshot, true, &output, &stats)
                    .ok());
    EXPECT_FALSE(output.tables.empty());
    return output;
  }

  std::unique_ptr<Env> env_;
  InternalKeyComparator icmp_;
  Options options_;
};

TEST_F(OutputVerifierTest, CleanOutputPasses) {
  fpga::DeviceOutput output = MakeOutput();
  OutputVerifyStats stats;
  Status s = VerifyDeviceOutput(output, icmp_, &stats);
  EXPECT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(static_cast<uint64_t>(output.tables.size()), stats.tables);
  EXPECT_GT(stats.blocks, 0u);
  EXPECT_EQ(800u, stats.entries);
}

TEST_F(OutputVerifierTest, FlippedPayloadByteIsCaught) {
  fpga::DeviceOutput output = MakeOutput();
  // Flip one byte in the middle of the first table's data memory — a
  // silent DMA corruption the link CRC missed.
  fpga::DeviceOutputTable& table = output.tables.front();
  table.data_memory[table.data_memory.size() / 2] ^= 0x40;
  OutputVerifyStats stats;
  Status s = VerifyDeviceOutput(output, icmp_, &stats);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(OutputVerifierTest, EveryCorruptedBytePositionIsCaught) {
  // Byte flips anywhere in the output (payload, trailer, restart
  // array) must be caught by some check: CRC, ordering, or bounds.
  fpga::DeviceOutput clean = MakeOutput();
  ASSERT_FALSE(clean.tables.empty());
  const size_t size = clean.tables[0].data_memory.size();
  for (size_t pos = 0; pos < size; pos += 97) {
    fpga::DeviceOutput copy = clean;
    copy.tables[0].data_memory[pos] ^= 0x01;
    OutputVerifyStats stats;
    Status s = VerifyDeviceOutput(copy, icmp_, &stats);
    EXPECT_FALSE(s.ok()) << "flip at byte " << pos << " went undetected";
  }
}

TEST_F(OutputVerifierTest, EntryCountMismatchIsCaught) {
  fpga::DeviceOutput output = MakeOutput();
  output.tables[0].num_entries += 1;
  OutputVerifyStats stats;
  EXPECT_TRUE(VerifyDeviceOutput(output, icmp_, &stats).IsCorruption());
}

TEST_F(OutputVerifierTest, BoundsMismatchIsCaught) {
  fpga::DeviceOutput output = MakeOutput();
  // Claim a larger largest-key than the data holds.
  std::string fake;
  AppendInternalKey(&fake, ParsedInternalKey("zzzz", 1, kTypeValue));
  output.tables[0].largest_key = fake;
  OutputVerifyStats stats;
  EXPECT_TRUE(VerifyDeviceOutput(output, icmp_, &stats).IsCorruption());
}

TEST_F(OutputVerifierTest, SilentDeviceCorruptionIsCaughtBeforeInstall) {
  // End to end at the device layer: a silent DMA corruption makes the
  // kernel call SUCCEED with flipped bytes; only the verifier stands
  // between it and the manifest.
  std::vector<std::unique_ptr<fpga::DeviceInput>> inputs;
  for (int i = 0; i < 2; i++) {
    auto input = std::make_unique<fpga::DeviceInput>();
    auto run = MakeRun("key", i, 400, 2, 1000 * (i + 1), 48);
    ASSERT_TRUE(
        BuildDeviceInput(env_.get(), options_, {run}, i, input.get()).ok());
    inputs.push_back(std::move(input));
  }
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  fpga::DeviceFaultInjector injector(fpga::DeviceFaultConfig{});
  device.set_fault_injector(&injector);
  injector.ArmOneShot(fpga::DeviceFaultClass::kDmaCorruption, 1,
                      /*silent=*/true);

  fpga::DeviceOutput output;
  DeviceRunStats stats;
  Status s = device.ExecuteCompaction({inputs[0].get(), inputs[1].get()},
                                      kNoSnapshot, true, &output, &stats);
  ASSERT_TRUE(s.ok()) << "silent corruption must not fail the kernel call";
  EXPECT_EQ(1u, stats.faults_injected);

  OutputVerifyStats verify_stats;
  Status vs = VerifyDeviceOutput(output, icmp_, &verify_stats);
  EXPECT_TRUE(vs.IsCorruption())
      << "silent corruption evaded the verifier: " << vs.ToString();
}

// ---------------------------------------------------------------------
// Kernel deadline watchdog
// ---------------------------------------------------------------------

TEST_F(OutputVerifierTest, NaturalDeadlineOverrunKillsKernel) {
  std::vector<std::unique_ptr<fpga::DeviceInput>> inputs;
  for (int i = 0; i < 2; i++) {
    auto input = std::make_unique<fpga::DeviceInput>();
    auto run = MakeRun("key", i, 400, 2, 1000 * (i + 1), 48);
    ASSERT_TRUE(
        BuildDeviceInput(env_.get(), options_, {run}, i, input.get()).ok());
    inputs.push_back(std::move(input));
  }
  fpga::EngineConfig config;
  config.num_inputs = 2;
  config.kernel_deadline_cycles = 10;  // Impossibly tight watchdog.
  FcaeDevice device(config);

  fpga::DeviceOutput output;
  DeviceRunStats stats;
  Status s = device.ExecuteCompaction({inputs[0].get(), inputs[1].get()},
                                      kNoSnapshot, true, &output, &stats);
  EXPECT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(output.tables.empty());
  EXPECT_EQ(1u, device.deadline_kills());
}

}  // namespace host
}  // namespace fcae
