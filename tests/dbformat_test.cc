#include "lsm/dbformat.h"

#include "gtest/gtest.h"

namespace fcae {

static std::string IKey(const std::string& user_key, uint64_t seq,
                        ValueType vt) {
  std::string encoded;
  AppendInternalKey(&encoded, ParsedInternalKey(user_key, seq, vt));
  return encoded;
}

static std::string Shorten(const std::string& s, const std::string& l) {
  std::string result = s;
  InternalKeyComparator(BytewiseComparator()).FindShortestSeparator(&result, l);
  return result;
}

static std::string ShortSuccessor(const std::string& s) {
  std::string result = s;
  InternalKeyComparator(BytewiseComparator()).FindShortSuccessor(&result);
  return result;
}

static void TestKey(const std::string& key, uint64_t seq, ValueType vt) {
  std::string encoded = IKey(key, seq, vt);

  Slice in(encoded);
  ParsedInternalKey decoded("", 0, kTypeValue);

  ASSERT_TRUE(ParseInternalKey(in, &decoded));
  ASSERT_EQ(key, decoded.user_key.ToString());
  ASSERT_EQ(seq, decoded.sequence);
  ASSERT_EQ(vt, decoded.type);

  ASSERT_TRUE(!ParseInternalKey(Slice("bar"), &decoded));
}

TEST(FormatTest, InternalKey_EncodeDecode) {
  const char* keys[] = {"", "k", "hello", "longggggggggggggggggggggg"};
  const uint64_t seq[] = {1,
                          2,
                          3,
                          (1ull << 8) - 1,
                          1ull << 8,
                          (1ull << 8) + 1,
                          (1ull << 16) - 1,
                          1ull << 16,
                          (1ull << 16) + 1,
                          (1ull << 32) - 1,
                          1ull << 32,
                          (1ull << 32) + 1};
  for (unsigned int k = 0; k < sizeof(keys) / sizeof(keys[0]); k++) {
    for (unsigned int s = 0; s < sizeof(seq) / sizeof(seq[0]); s++) {
      TestKey(keys[k], seq[s], kTypeValue);
      TestKey("hello", 1, kTypeDeletion);
    }
  }
}

TEST(FormatTest, InternalKey_DecodeFromEmpty) {
  InternalKey internal_key;
  ASSERT_TRUE(!internal_key.DecodeFrom(""));
}

TEST(FormatTest, InternalKeyOrdering) {
  InternalKeyComparator icmp(BytewiseComparator());

  // Same user key: larger sequence sorts first (is "smaller").
  ASSERT_LT(icmp.Compare(IKey("a", 100, kTypeValue), IKey("a", 99, kTypeValue)),
            0);
  // Different user keys: user-key order dominates.
  ASSERT_LT(icmp.Compare(IKey("a", 1, kTypeValue), IKey("b", 100, kTypeValue)),
            0);
  // Same user key and sequence: value sorts before deletion (type desc).
  ASSERT_LT(
      icmp.Compare(IKey("a", 5, kTypeValue), IKey("a", 5, kTypeDeletion)), 0);
}

TEST(FormatTest, MarkFieldPacking) {
  // The paper's "mark fields" footnote: L_key = 16 real + 8 mark. Verify
  // that the trailing 8 bytes encode (seq << 8) | type.
  std::string k = IKey("0123456789abcdef", 0x123456, kTypeValue);
  ASSERT_EQ(24u, k.size());
  ASSERT_EQ((0x123456ull << 8) | kTypeValue, ExtractMark(k));
  ASSERT_EQ("0123456789abcdef", ExtractUserKey(k).ToString());
}

TEST(FormatTest, InternalKeyShortSeparator) {
  // When user keys are same.
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue), IKey("foo", 99, kTypeValue)));
  ASSERT_EQ(
      IKey("foo", 100, kTypeValue),
      Shorten(IKey("foo", 100, kTypeValue), IKey("foo", 101, kTypeValue)));
  ASSERT_EQ(
      IKey("foo", 100, kTypeValue),
      Shorten(IKey("foo", 100, kTypeValue), IKey("foo", 100, kTypeValue)));

  // When user keys are misordered.
  ASSERT_EQ(IKey("foo", 100, kTypeValue),
            Shorten(IKey("foo", 100, kTypeValue), IKey("bar", 99, kTypeValue)));

  // When user keys are different, but correctly ordered.
  ASSERT_EQ(
      IKey("g", kMaxSequenceNumber, kValueTypeForSeek),
      Shorten(IKey("foo", 100, kTypeValue), IKey("hello", 200, kTypeValue)));

  // When start user key is prefix of limit user key.
  ASSERT_EQ(
      IKey("foo", 100, kTypeValue),
      Shorten(IKey("foo", 100, kTypeValue), IKey("foobar", 200, kTypeValue)));

  // When limit user key is prefix of start user key.
  ASSERT_EQ(
      IKey("foobar", 100, kTypeValue),
      Shorten(IKey("foobar", 100, kTypeValue), IKey("foo", 200, kTypeValue)));
}

TEST(FormatTest, InternalKeyShortestSuccessor) {
  ASSERT_EQ(IKey("g", kMaxSequenceNumber, kValueTypeForSeek),
            ShortSuccessor(IKey("foo", 100, kTypeValue)));
  ASSERT_EQ(IKey("\xff\xff", 100, kTypeValue),
            ShortSuccessor(IKey("\xff\xff", 100, kTypeValue)));
}

TEST(FormatTest, LookupKey) {
  LookupKey lkey("user_key", 42);
  ASSERT_EQ("user_key", lkey.user_key().ToString());
  Slice ikey = lkey.internal_key();
  ParsedInternalKey parsed;
  ASSERT_TRUE(ParseInternalKey(ikey, &parsed));
  ASSERT_EQ("user_key", parsed.user_key.ToString());
  ASSERT_EQ(42u, parsed.sequence);

  // Memtable key is length-prefixed internal key.
  Slice mkey = lkey.memtable_key();
  uint32_t len;
  const char* p = GetVarint32Ptr(mkey.data(), mkey.data() + 5, &len);
  ASSERT_NE(nullptr, p);
  ASSERT_EQ(ikey.size(), len);

  // Long keys take the heap path.
  std::string long_key(500, 'k');
  LookupKey lkey2(long_key, 7);
  ASSERT_EQ(long_key, lkey2.user_key().ToString());
}

}  // namespace fcae
