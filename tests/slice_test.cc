#include "util/slice.h"

#include "gtest/gtest.h"

namespace fcae {

TEST(Slice, Empty) {
  Slice s;
  ASSERT_TRUE(s.empty());
  ASSERT_EQ(0u, s.size());
  ASSERT_EQ("", s.ToString());
}

TEST(Slice, FromString) {
  std::string str("hello");
  Slice s(str);
  ASSERT_EQ(5u, s.size());
  ASSERT_EQ("hello", s.ToString());
  ASSERT_EQ('h', s[0]);
  ASSERT_EQ('o', s[4]);
}

TEST(Slice, FromCString) {
  Slice s("abc");
  ASSERT_EQ(3u, s.size());
  ASSERT_EQ("abc", s.ToString());
}

TEST(Slice, RemovePrefix) {
  Slice s("hello world");
  s.RemovePrefix(6);
  ASSERT_EQ("world", s.ToString());
  s.RemovePrefix(5);
  ASSERT_TRUE(s.empty());
}

TEST(Slice, Clear) {
  Slice s("abc");
  s.Clear();
  ASSERT_TRUE(s.empty());
}

TEST(Slice, Compare) {
  ASSERT_EQ(0, Slice("abc").Compare(Slice("abc")));
  ASSERT_LT(Slice("abc").Compare(Slice("abd")), 0);
  ASSERT_GT(Slice("abd").Compare(Slice("abc")), 0);
  // Prefix ordering: shorter sorts first.
  ASSERT_LT(Slice("ab").Compare(Slice("abc")), 0);
  ASSERT_GT(Slice("abc").Compare(Slice("ab")), 0);
  ASSERT_EQ(0, Slice("").Compare(Slice("")));
  ASSERT_LT(Slice("").Compare(Slice("a")), 0);
}

TEST(Slice, CompareUnsignedBytes) {
  // Bytes must compare as unsigned: 0xff > 0x01.
  char high[] = {static_cast<char>(0xff)};
  char low[] = {0x01};
  ASSERT_GT(Slice(high, 1).Compare(Slice(low, 1)), 0);
}

TEST(Slice, Equality) {
  ASSERT_TRUE(Slice("abc") == Slice("abc"));
  ASSERT_TRUE(Slice("abc") != Slice("abd"));
  ASSERT_TRUE(Slice("abc") != Slice("ab"));
  ASSERT_TRUE(Slice("") == Slice());
}

TEST(Slice, StartsWith) {
  Slice s("hello world");
  ASSERT_TRUE(s.StartsWith(Slice("")));
  ASSERT_TRUE(s.StartsWith(Slice("hello")));
  ASSERT_TRUE(s.StartsWith(Slice("hello world")));
  ASSERT_FALSE(s.StartsWith(Slice("hello world!")));
  ASSERT_FALSE(s.StartsWith(Slice("world")));
}

TEST(Slice, EmbeddedNul) {
  std::string str("a\0b", 3);
  Slice s(str);
  ASSERT_EQ(3u, s.size());
  ASSERT_EQ(str, s.ToString());
  ASSERT_TRUE(s == Slice(str));
}

}  // namespace fcae
