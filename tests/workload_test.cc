#include <map>
#include <set>

#include "compress/snappy.h"
#include "gtest/gtest.h"
#include "workload/key_generator.h"
#include "workload/ycsb.h"
#include "workload/zipfian.h"

namespace fcae {
namespace workload {

TEST(ZipfianTest, SamplesInRange) {
  ZipfianGenerator gen(1000, 42);
  for (int i = 0; i < 10000; i++) {
    uint64_t v = gen.Next();
    ASSERT_LT(v, 1000u);
  }
}

TEST(ZipfianTest, HeadIsHot) {
  ZipfianGenerator gen(100000, 42);
  uint64_t head_hits = 0;  // Items 0..99 (0.1% of the keyspace).
  const int kSamples = 100000;
  for (int i = 0; i < kSamples; i++) {
    if (gen.Next() < 100) head_hits++;
  }
  // With theta=0.99 the top 0.1% of items draw a large share (>25%).
  EXPECT_GT(head_hits, kSamples / 4u);
}

TEST(ZipfianTest, Deterministic) {
  ZipfianGenerator a(5000, 7);
  ZipfianGenerator b(5000, 7);
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(a.Next(), b.Next());
  }
}

TEST(ZipfianTest, LargeKeySpaceApproximation) {
  // > 10M items exercises the zeta tail approximation.
  ZipfianGenerator gen(50'000'000, 3);
  for (int i = 0; i < 1000; i++) {
    ASSERT_LT(gen.Next(), 50'000'000u);
  }
}

TEST(ScrambledZipfianTest, SpreadsHotItems) {
  ScrambledZipfianGenerator gen(100000, 42);
  // The hottest items must not cluster at the low end of the keyspace.
  uint64_t low_half = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; i++) {
    if (gen.Next() < 50000) low_half++;
  }
  EXPECT_GT(low_half, kSamples / 4u);
  EXPECT_LT(low_half, 3u * kSamples / 4);
}

TEST(LatestTest, FavorsRecentItems) {
  LatestGenerator gen(100000, 42);
  uint64_t recent = 0;
  const int kSamples = 20000;
  for (int i = 0; i < kSamples; i++) {
    // Items within the most recent 1%.
    if (gen.Next() >= 99000) recent++;
  }
  EXPECT_GT(recent, kSamples / 4u);
}

TEST(LatestTest, TracksInsertions) {
  LatestGenerator gen(1000, 42);
  gen.SetMax(2000);
  bool saw_new = false;
  for (int i = 0; i < 5000; i++) {
    if (gen.Next() >= 1000) {
      saw_new = true;
      break;
    }
  }
  EXPECT_TRUE(saw_new);
}

TEST(KeyFormatterTest, FixedWidth) {
  KeyFormatter fmt(16);
  EXPECT_EQ(16u, fmt.Format(0).size());
  EXPECT_EQ(16u, fmt.Format(~0ull).size());
  EXPECT_EQ("0000000000000042", fmt.Format(42));

  KeyFormatter wide(256);
  EXPECT_EQ(256u, wide.Format(7).size());
  EXPECT_LT(wide.Format(7), wide.Format(8));

  KeyFormatter narrow(8);
  EXPECT_EQ(8u, narrow.Format(12345).size());
}

TEST(KeyFormatterTest, PreservesOrder) {
  KeyFormatter fmt(16);
  for (uint64_t i = 1; i < 10000; i += 97) {
    ASSERT_LT(fmt.Format(i - 1), fmt.Format(i));
  }
}

TEST(ValueGeneratorTest, LengthAndCompressibility) {
  ValueGenerator gen(301, 0.5);
  std::string v = gen.Generate(4096);
  ASSERT_EQ(4096u, v.size());

  std::string compressed;
  snappy::Compress(v.data(), v.size(), &compressed);
  // Target ratio is ~0.5; accept a broad band.
  EXPECT_LT(compressed.size(), v.size() * 0.8);
  EXPECT_GT(compressed.size(), v.size() * 0.2);
}

TEST(YcsbTest, LoadIsAllInserts) {
  YcsbGenerator gen(YcsbWorkload::kLoad, 1000, 1);
  std::set<uint64_t> ids;
  for (int i = 0; i < 100; i++) {
    auto op = gen.Next();
    ASSERT_EQ(YcsbOp::kInsert, op.type);
    ASSERT_TRUE(ids.insert(op.key_id).second);  // Sequential, distinct.
  }
}

TEST(YcsbTest, MixesMatchTableIX) {
  struct Expectation {
    YcsbWorkload w;
    double write_fraction;
  };
  const Expectation cases[] = {
      {YcsbWorkload::kA, 0.5}, {YcsbWorkload::kB, 0.05},
      {YcsbWorkload::kC, 0.0}, {YcsbWorkload::kD, 0.05},
      {YcsbWorkload::kE, 0.05}, {YcsbWorkload::kF, 0.5},
  };
  for (const auto& c : cases) {
    YcsbGenerator gen(c.w, 10000, 99);
    int writes = 0;
    const int kOps = 20000;
    int scans = 0;
    for (int i = 0; i < kOps; i++) {
      auto op = gen.Next();
      if (op.type == YcsbOp::kUpdate || op.type == YcsbOp::kInsert ||
          op.type == YcsbOp::kReadModifyWrite) {
        writes++;
      }
      if (op.type == YcsbOp::kScan) scans++;
    }
    EXPECT_NEAR(c.write_fraction, static_cast<double>(writes) / kOps, 0.02)
        << YcsbWorkloadName(c.w);
    if (c.w == YcsbWorkload::kE) {
      EXPECT_GT(scans, kOps * 9 / 10 - 500);  // ~95% scans.
    }
    EXPECT_DOUBLE_EQ(c.write_fraction, YcsbWriteFraction(c.w));
  }
}

TEST(YcsbTest, ScanLengthsBounded) {
  YcsbGenerator gen(YcsbWorkload::kE, 10000, 5);
  for (int i = 0; i < 2000; i++) {
    auto op = gen.Next();
    if (op.type == YcsbOp::kScan) {
      ASSERT_GE(op.scan_length, 1);
      ASSERT_LE(op.scan_length, 100);
    }
  }
}

TEST(YcsbTest, WorkloadNames) {
  EXPECT_STREQ("Load", YcsbWorkloadName(YcsbWorkload::kLoad));
  EXPECT_STREQ("A", YcsbWorkloadName(YcsbWorkload::kA));
  EXPECT_STREQ("F", YcsbWorkloadName(YcsbWorkload::kF));
}

}  // namespace workload
}  // namespace fcae
