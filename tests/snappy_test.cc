#include "compress/snappy.h"

#include <string>

#include "gtest/gtest.h"
#include "util/random.h"

namespace fcae {
namespace snappy {

namespace {

std::string RoundTrip(const std::string& input) {
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  std::string output;
  EXPECT_TRUE(Uncompress(compressed.data(), compressed.size(), &output));
  return output;
}

/// Generates text with repeated fragments so copies are exercised.
std::string CompressibleString(Random* rnd, size_t len) {
  static const char* kFragments[] = {"the quick ", "brown fox ", "jumps ",
                                     "over the lazy dog ", "lorem ipsum "};
  std::string result;
  while (result.size() < len) {
    result += kFragments[rnd->Uniform(5)];
  }
  result.resize(len);
  return result;
}

std::string RandomString(Random* rnd, size_t len) {
  std::string result;
  result.reserve(len);
  for (size_t i = 0; i < len; i++) {
    result.push_back(static_cast<char>(rnd->Uniform(256)));
  }
  return result;
}

}  // namespace

TEST(Snappy, EmptyInput) {
  std::string compressed;
  Compress("", 0, &compressed);
  std::string output = "sentinel";
  ASSERT_TRUE(Uncompress(compressed.data(), compressed.size(), &output));
  ASSERT_EQ("", output);
}

TEST(Snappy, TinyInputs) {
  for (size_t len = 1; len <= 20; len++) {
    std::string input(len, 'x');
    ASSERT_EQ(input, RoundTrip(input)) << "len=" << len;
  }
}

TEST(Snappy, SimpleText) {
  std::string input = "hello hello hello hello world world world";
  ASSERT_EQ(input, RoundTrip(input));
}

TEST(Snappy, HighlyCompressible) {
  std::string input(100000, 'a');
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  // A run of one character must compress dramatically.
  ASSERT_LT(compressed.size(), input.size() / 20);
  std::string output;
  ASSERT_TRUE(Uncompress(compressed.data(), compressed.size(), &output));
  ASSERT_EQ(input, output);
}

TEST(Snappy, RepeatedFragments) {
  Random rnd(301);
  std::string input = CompressibleString(&rnd, 65536);
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  ASSERT_LT(compressed.size(), input.size() / 2);
  std::string output;
  ASSERT_TRUE(Uncompress(compressed.data(), compressed.size(), &output));
  ASSERT_EQ(input, output);
}

TEST(Snappy, IncompressibleRandomData) {
  Random rnd(42);
  std::string input = RandomString(&rnd, 65536);
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  // Incompressible data must stay within the documented bound.
  ASSERT_LE(compressed.size(), MaxCompressedLength(input.size()));
  ASSERT_EQ(input, RoundTrip(input));
}

TEST(Snappy, GetUncompressedLength) {
  std::string input(12345, 'q');
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  size_t len;
  ASSERT_TRUE(GetUncompressedLength(compressed.data(), compressed.size(),
                                    &len));
  ASSERT_EQ(12345u, len);
}

TEST(Snappy, CorruptHeaderRejected) {
  std::string output;
  // All continuation bits set: varint never terminates.
  std::string bad("\xff\xff\xff\xff\xff\xff", 6);
  ASSERT_FALSE(Uncompress(bad.data(), bad.size(), &output));
}

TEST(Snappy, TruncatedStreamRejected) {
  std::string input = "some reasonably long input string to compress, with "
                      "repeats repeats repeats repeats";
  std::string compressed;
  Compress(input.data(), input.size(), &compressed);
  for (size_t cut = 1; cut < compressed.size(); cut++) {
    std::string output;
    // Either rejected or produces the wrong length, never a crash.
    bool ok = Uncompress(compressed.data(), compressed.size() - cut, &output);
    if (ok) {
      ASSERT_NE(input, output);
    }
  }
}

TEST(Snappy, CorruptOffsetRejected) {
  // Hand-craft a stream: length 4, then a copy with offset 0 (invalid).
  std::string bad;
  bad.push_back(4);                       // uncompressed length 4
  bad.push_back(0x01);                    // copy1: len=4, offset high bits 0
  bad.push_back(0x00);                    // offset low byte = 0 -> invalid
  std::string output;
  ASSERT_FALSE(Uncompress(bad.data(), bad.size(), &output));
}

// Property sweep: round-trip across sizes and data characters.
class SnappyRoundTripTest : public testing::TestWithParam<int> {};

TEST_P(SnappyRoundTripTest, RoundTripCompressible) {
  Random rnd(GetParam());
  size_t len = 1 + rnd.Uniform(1 << 17);
  std::string input = CompressibleString(&rnd, len);
  ASSERT_EQ(input, RoundTrip(input));
}

TEST_P(SnappyRoundTripTest, RoundTripRandom) {
  Random rnd(GetParam() + 1000);
  size_t len = 1 + rnd.Uniform(1 << 16);
  std::string input = RandomString(&rnd, len);
  ASSERT_EQ(input, RoundTrip(input));
}

TEST_P(SnappyRoundTripTest, RoundTripStructured) {
  // Key-value-like content: mostly ascending keys + fixed-pattern values,
  // the shape the SSTable blocks will feed through this codec.
  Random rnd(GetParam() + 2000);
  std::string input;
  int n = 100 + rnd.Uniform(400);
  for (int i = 0; i < n; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%016d", i);
    input.append(key);
    input.append(rnd.Uniform(100) + 1, static_cast<char>('A' + (i % 26)));
  }
  ASSERT_EQ(input, RoundTrip(input));
}

INSTANTIATE_TEST_SUITE_P(Seeds, SnappyRoundTripTest,
                         testing::Range(1, 21));

}  // namespace snappy
}  // namespace fcae
