#include "lsm/filename.h"

#include "gtest/gtest.h"

namespace fcae {

TEST(FileNameTest, Parse) {
  Slice db;
  FileType type;
  uint64_t number;

  // Successful parses.
  static const struct {
    const char* fname;
    uint64_t number;
    FileType type;
  } cases[] = {
      {"100.log", 100, FileType::kLogFile},
      {"0.log", 0, FileType::kLogFile},
      {"0.sst", 0, FileType::kTableFile},
      {"0.ldb", 0, FileType::kTableFile},
      {"CURRENT", 0, FileType::kCurrentFile},
      {"LOCK", 0, FileType::kDBLockFile},
      {"MANIFEST-2", 2, FileType::kDescriptorFile},
      {"MANIFEST-7", 7, FileType::kDescriptorFile},
      {"LOG", 0, FileType::kInfoLogFile},
      {"LOG.old", 0, FileType::kInfoLogFile},
      {"18446744073709551615.log", 18446744073709551615ull,
       FileType::kLogFile},
  };
  for (const auto& c : cases) {
    std::string f = c.fname;
    ASSERT_TRUE(ParseFileName(f, &number, &type)) << f;
    ASSERT_EQ(c.type, type) << f;
    ASSERT_EQ(c.number, number) << f;
  }

  // Errors.
  static const char* errors[] = {"",
                                 "foo",
                                 "foo-dx-100.log",
                                 ".log",
                                 "",
                                 "manifest",
                                 "CURREN",
                                 "CURRENTX",
                                 "MANIFES",
                                 "MANIFEST",
                                 "MANIFEST-",
                                 "XMANIFEST-3",
                                 "MANIFEST-3x",
                                 "LOC",
                                 "LOCKx",
                                 "LO",
                                 "LOGx",
                                 "100",
                                 "100.",
                                 "100.lop"};
  for (const char* e : errors) {
    std::string f = e;
    ASSERT_FALSE(ParseFileName(f, &number, &type)) << f;
  }
}

TEST(FileNameTest, Construction) {
  uint64_t number;
  FileType type;
  std::string fname;

  fname = CurrentFileName("foo");
  ASSERT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(0u, number);
  ASSERT_EQ(FileType::kCurrentFile, type);

  fname = LockFileName("foo");
  ASSERT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(0u, number);
  ASSERT_EQ(FileType::kDBLockFile, type);

  fname = LogFileName("foo", 192);
  ASSERT_EQ("foo/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(192u, number);
  ASSERT_EQ(FileType::kLogFile, type);

  fname = TableFileName("bar", 200);
  ASSERT_EQ("bar/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(200u, number);
  ASSERT_EQ(FileType::kTableFile, type);

  fname = DescriptorFileName("bar", 100);
  ASSERT_EQ("bar/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(100u, number);
  ASSERT_EQ(FileType::kDescriptorFile, type);

  fname = TempFileName("tmp", 999);
  ASSERT_EQ("tmp/", std::string(fname.data(), 4));
  ASSERT_TRUE(ParseFileName(fname.c_str() + 4, &number, &type));
  ASSERT_EQ(999u, number);
  ASSERT_EQ(FileType::kTempFile, type);
}

}  // namespace fcae
