// WAL fuzzing: random record streams subjected to random mutations
// (truncation, byte flips, zero fills). The reader must never crash or
// loop, must recover a prefix-consistent subsequence, and with no
// corruption must recover everything.

#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "util/env.h"
#include "util/random.h"

namespace fcae {
namespace log {

namespace {

class StringDest : public WritableFile {
 public:
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  Status Append(const Slice& slice) override {
    contents_.append(slice.data(), slice.size());
    return Status::OK();
  }
  std::string contents_;
};

class StringSource : public SequentialFile {
 public:
  explicit StringSource(const std::string& contents)
      : contents_(contents), pos_(0) {}

  Status Read(size_t n, Slice* result, char* scratch) override {
    if (pos_ >= contents_.size()) {
      *result = Slice();
      return Status::OK();
    }
    n = std::min(n, contents_.size() - pos_);
    memcpy(scratch, contents_.data() + pos_, n);
    *result = Slice(scratch, n);
    pos_ += n;
    return Status::OK();
  }

  Status Skip(uint64_t n) override {
    pos_ = std::min(contents_.size(), pos_ + static_cast<size_t>(n));
    return Status::OK();
  }

 private:
  std::string contents_;
  size_t pos_;
};

class NullReporter : public Reader::Reporter {
 public:
  void Corruption(size_t bytes, const Status& status) override {
    corruptions++;
  }
  int corruptions = 0;
};

std::string RecordPayload(int i, Random* rnd) {
  // Mix of tiny, block-spanning and huge records.
  size_t len;
  switch (rnd->Uniform(4)) {
    case 0:
      len = rnd->Uniform(32);
      break;
    case 1:
      len = 100 + rnd->Uniform(4000);
      break;
    case 2:
      len = kBlockSize - kHeaderSize + rnd->Uniform(40) - 20;
      break;
    default:
      len = kBlockSize + rnd->Uniform(3 * kBlockSize);
      break;
  }
  std::string payload = "rec" + std::to_string(i) + ":";
  payload.resize(std::max(payload.size(), len),
                 static_cast<char>('A' + (i % 26)));
  return payload;
}

}  // namespace

class LogFuzzTest : public testing::TestWithParam<int> {};

TEST_P(LogFuzzTest, CleanStreamRecoversEverything) {
  Random rnd(GetParam());
  StringDest dest;
  Writer writer(&dest);
  std::vector<std::string> records;
  const int n = 1 + rnd.Uniform(60);
  for (int i = 0; i < n; i++) {
    records.push_back(RecordPayload(i, &rnd));
    ASSERT_TRUE(writer.AddRecord(records.back()).ok());
  }

  StringSource source(dest.contents_);
  NullReporter reporter;
  Reader reader(&source, &reporter, true);
  Slice record;
  std::string scratch;
  size_t got = 0;
  while (reader.ReadRecord(&record, &scratch)) {
    ASSERT_LT(got, records.size());
    ASSERT_EQ(records[got], record.ToString());
    got++;
  }
  ASSERT_EQ(records.size(), got);
  ASSERT_EQ(0, reporter.corruptions);
}

TEST_P(LogFuzzTest, MutatedStreamNeverCrashesOrFabricates) {
  Random rnd(GetParam() + 1000);
  StringDest dest;
  Writer writer(&dest);
  std::vector<std::string> records;
  const int n = 1 + rnd.Uniform(40);
  for (int i = 0; i < n; i++) {
    records.push_back(RecordPayload(i, &rnd));
    ASSERT_TRUE(writer.AddRecord(records.back()).ok());
  }

  std::string mutated = dest.contents_;
  // Apply 1..5 random mutations.
  const int mutations = 1 + rnd.Uniform(5);
  for (int m = 0; m < mutations; m++) {
    if (mutated.empty()) break;
    switch (rnd.Uniform(3)) {
      case 0:  // Byte flip.
        mutated[rnd.Uniform(mutated.size())] ^=
            static_cast<char>(1 + rnd.Uniform(255));
        break;
      case 1:  // Truncate tail.
        mutated.resize(mutated.size() - rnd.Uniform(mutated.size() / 4 + 1));
        break;
      case 2: {  // Zero-fill a small range.
        size_t start = rnd.Uniform(mutated.size());
        size_t len = std::min<size_t>(1 + rnd.Uniform(64),
                                      mutated.size() - start);
        for (size_t i = 0; i < len; i++) mutated[start + i] = 0;
        break;
      }
    }
  }

  StringSource source(mutated);
  NullReporter reporter;
  Reader reader(&source, &reporter, true);
  Slice record;
  std::string scratch;
  int got = 0;
  int guard = 0;
  while (reader.ReadRecord(&record, &scratch)) {
    // Every surviving record must be one of the originals, in order
    // (no fabricated bytes: checksums guarantee integrity).
    std::string r = record.ToString();
    bool matched = false;
    for (int i = got; i < n; i++) {
      if (records[i] == r) {
        got = i + 1;
        matched = true;
        break;
      }
    }
    ASSERT_TRUE(matched) << "fabricated or reordered record";
    ASSERT_LT(++guard, 10000) << "reader did not terminate";
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogFuzzTest, testing::Range(1, 26));

}  // namespace log
}  // namespace fcae
