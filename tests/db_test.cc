#include "lsm/db.h"

#include <map>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "lsm/db_impl.h"
#include "lsm/dbformat.h"
#include "lsm/write_batch.h"
#include "table/iterator.h"
#include "util/env.h"
#include "util/filter_policy.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

std::string RandomValue(Random* rnd, size_t len) {
  std::string v;
  v.reserve(len);
  for (size_t i = 0; i < len; i++) {
    v.push_back(static_cast<char>(' ' + rnd->Uniform(95)));
  }
  return v;
}

}  // namespace

class DBTest : public testing::Test {
 public:
  DBTest() : env_(NewMemEnv(Env::Default())), db_(nullptr) {
    dbname_ = "/dbtest";
    options_.env = env_.get();
    options_.create_if_missing = true;
    Reopen();
  }

  ~DBTest() override {
    delete db_;
    DestroyDB(dbname_, options_).IgnoreError();  // best-effort teardown
  }

  void Reopen(Options* new_options = nullptr) {
    delete db_;
    db_ = nullptr;
    Options opts = (new_options != nullptr) ? *new_options : options_;
    opts.env = env_.get();
    opts.create_if_missing = true;
    ASSERT_TRUE(DB::Open(opts, dbname_, &db_).ok());
  }

  void DestroyAndReopen(Options* new_options = nullptr) {
    delete db_;
    db_ = nullptr;
    ASSERT_TRUE(DestroyDB(dbname_, options_).ok());
    Reopen(new_options);
  }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }

  Status Delete(const std::string& k) {
    return db_->Delete(WriteOptions(), k);
  }

  std::string Get(const std::string& k, const Snapshot* snapshot = nullptr) {
    ReadOptions options;
    if (snapshot != nullptr) {
      // Snapshot handles expose sequence numbers via the impl.
      options.snapshot_sequence =
          static_cast<const SnapshotImpl*>(snapshot)->sequence_number();
    }
    std::string result;
    Status s = db_->Get(options, k, &result);
    if (s.IsNotFound()) {
      result = "NOT_FOUND";
    } else if (!s.ok()) {
      result = s.ToString();
    }
    return result;
  }

  int NumTableFilesAtLevel(int level) {
    std::string property;
    EXPECT_TRUE(db_->GetProperty(
        "fcae.num-files-at-level" + std::to_string(level), &property));
    return std::stoi(property);
  }

  int TotalTableFiles() {
    int result = 0;
    for (int level = 0; level < kNumLevels; level++) {
      result += NumTableFilesAtLevel(level);
    }
    return result;
  }

  DBImpl* dbfull() { return reinterpret_cast<DBImpl*>(db_); }

  /// Flushes the memtable and merges every level downward so the whole
  /// key space ends up fully compacted (memtable flushes may skip to
  /// level 2, so a single level-0 pass is not enough).
  void CompactAllLevels() {
    ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
    for (int level = 0; level < kNumLevels - 1; level++) {
      dbfull()->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  /// Returns the DB contents as "(k1->v1)(k2->v2)..." via an iterator.
  std::string Contents() {
    std::string result;
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      result += "(" + iter->key().ToString() + "->" +
                iter->value().ToString() + ")";
    }
    EXPECT_TRUE(iter->status().ok());
    return result;
  }

  std::unique_ptr<Env> env_;
  std::string dbname_;
  Options options_;
  DB* db_;
};

TEST_F(DBTest, Empty) {
  ASSERT_TRUE(db_ != nullptr);
  ASSERT_EQ("NOT_FOUND", Get("foo"));
}

TEST_F(DBTest, ReadWrite) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("bar", "v2").ok());
  ASSERT_TRUE(Put("foo", "v3").ok());
  ASSERT_EQ("v3", Get("foo"));
  ASSERT_EQ("v2", Get("bar"));
}

TEST_F(DBTest, PutDeleteGet) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_TRUE(Put("foo", "v2").ok());
  ASSERT_EQ("v2", Get("foo"));
  ASSERT_TRUE(Delete("foo").ok());
  ASSERT_EQ("NOT_FOUND", Get("foo"));
}

TEST_F(DBTest, GetFromImmutableLayer) {
  Options options = options_;
  options.write_buffer_size = 100000;  // Small write buffer
  DestroyAndReopen(&options);

  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_EQ("v1", Get("foo"));

  // Fill the memtable so "foo" lands in an sstable.
  ASSERT_TRUE(Put("k1", std::string(100000, 'x')).ok());
  ASSERT_TRUE(Put("k2", std::string(100000, 'y')).ok());
  ASSERT_EQ("v1", Get("foo"));
}

TEST_F(DBTest, GetFromVersions) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_GE(TotalTableFiles(), 1);
}

TEST_F(DBTest, GetPicksCorrectFile) {
  // Arrange to have multiple files in a non-level-0 level.
  ASSERT_TRUE(Put("a", "va").ok());
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  dbfull()->TEST_CompactRange(0, nullptr, nullptr);
  ASSERT_TRUE(Put("x", "vx").ok());
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  dbfull()->TEST_CompactRange(0, nullptr, nullptr);
  ASSERT_TRUE(Put("f", "vf").ok());
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  dbfull()->TEST_CompactRange(0, nullptr, nullptr);
  ASSERT_EQ("va", Get("a"));
  ASSERT_EQ("vf", Get("f"));
  ASSERT_EQ("vx", Get("x"));
}

TEST_F(DBTest, GetMemUsage) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  std::string val;
  ASSERT_TRUE(db_->GetProperty("fcae.approximate-memory-usage", &val));
  int mem_usage = std::stoi(val);
  ASSERT_GT(mem_usage, 0);
  ASSERT_LT(mem_usage, 5 * 1024 * 1024);
}

TEST_F(DBTest, IterEmpty) {
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_FALSE(iter->Valid());
  iter->SeekToLast();
  ASSERT_FALSE(iter->Valid());
  iter->Seek("foo");
  ASSERT_FALSE(iter->Valid());
}

TEST_F(DBTest, IterSingle) {
  ASSERT_TRUE(Put("a", "va").ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));

  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_FALSE(iter->Valid());

  iter->SeekToLast();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("a", iter->key().ToString());
  iter->Prev();
  ASSERT_FALSE(iter->Valid());
}

TEST_F(DBTest, IterMulti) {
  ASSERT_TRUE(Put("a", "va").ok());
  ASSERT_TRUE(Put("b", "vb").ok());
  ASSERT_TRUE(Put("c", "vc").ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));

  iter->SeekToFirst();
  ASSERT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("b", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("c", iter->key().ToString());
  iter->Next();
  ASSERT_FALSE(iter->Valid());

  iter->SeekToLast();
  ASSERT_EQ("c", iter->key().ToString());
  iter->Prev();
  ASSERT_EQ("b", iter->key().ToString());
  iter->Prev();
  ASSERT_EQ("a", iter->key().ToString());
  iter->Prev();
  ASSERT_FALSE(iter->Valid());

  iter->Seek("b");
  ASSERT_EQ("b", iter->key().ToString());
  iter->Seek("b1");
  ASSERT_EQ("c", iter->key().ToString());

  // Switch directions mid-iteration.
  iter->Seek("b");
  iter->Prev();
  ASSERT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("b", iter->key().ToString());
}

TEST_F(DBTest, IterSnapshotSemantics) {
  ASSERT_TRUE(Put("a", "v1").ok());
  std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
  ASSERT_TRUE(Put("a", "v2").ok());
  ASSERT_TRUE(Put("b", "vb").ok());

  // Iterator sees the state at creation time.
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("a", iter->key().ToString());
  ASSERT_EQ("v1", iter->value().ToString());
  iter->Next();
  ASSERT_FALSE(iter->Valid());
}

TEST_F(DBTest, IterHidesDeletions) {
  ASSERT_TRUE(Put("a", "va").ok());
  ASSERT_TRUE(Put("b", "vb").ok());
  ASSERT_TRUE(Put("c", "vc").ok());
  ASSERT_TRUE(Delete("b").ok());
  ASSERT_EQ("(a->va)(c->vc)", Contents());
}

TEST_F(DBTest, Recover) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(Put("baz", "v5").ok());

  Reopen();
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_EQ("v5", Get("baz"));
  ASSERT_TRUE(Put("bar", "v2").ok());
  ASSERT_TRUE(Put("foo", "v3").ok());

  Reopen();
  ASSERT_EQ("v3", Get("foo"));
  ASSERT_TRUE(Put("foo", "v4").ok());
  ASSERT_EQ("v4", Get("foo"));
  ASSERT_EQ("v2", Get("bar"));
  ASSERT_EQ("v5", Get("baz"));
}

TEST_F(DBTest, RecoveryWithEmptyLog) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(Put("foo", "v2").ok());
  Reopen();
  Reopen();
  ASSERT_TRUE(Put("foo", "v3").ok());
  Reopen();
  ASSERT_EQ("v3", Get("foo"));
}

TEST_F(DBTest, RecoverDuringMemtableCompaction) {
  Options options = options_;
  options.write_buffer_size = 1000000;
  DestroyAndReopen(&options);

  // Trigger a long memtable compaction and reopen the database during
  // it.
  ASSERT_TRUE(Put("foo", "v1").ok());  // Goes to 1st log file
  ASSERT_TRUE(
      Put("big1", std::string(10000000, 'x')).ok());        // Fills memtable
  ASSERT_TRUE(Put("big2", std::string(1000, 'y')).ok());    // Triggers comp.
  ASSERT_TRUE(Put("bar", "v2").ok());

  Reopen(&options);
  ASSERT_EQ("v1", Get("foo"));
  ASSERT_EQ("v2", Get("bar"));
  ASSERT_EQ(std::string(10000000, 'x'), Get("big1"));
  ASSERT_EQ(std::string(1000, 'y'), Get("big2"));
}

TEST_F(DBTest, MinorCompactionsHappen) {
  Options options = options_;
  options.write_buffer_size = 10000;
  DestroyAndReopen(&options);

  const int N = 500;

  int starting_num_tables = TotalTableFiles();
  for (int i = 0; i < N; i++) {
    ASSERT_TRUE(
        Put("k" + std::to_string(i), std::to_string(i) + std::string(1000, 'v'))
            .ok());
  }
  int ending_num_tables = TotalTableFiles();
  ASSERT_GT(ending_num_tables, starting_num_tables);

  for (int i = 0; i < N; i++) {
    ASSERT_EQ(std::to_string(i) + std::string(1000, 'v'),
              Get("k" + std::to_string(i)));
  }

  Reopen(&options);
  for (int i = 0; i < N; i++) {
    ASSERT_EQ(std::to_string(i) + std::string(1000, 'v'),
              Get("k" + std::to_string(i)));
  }
}

TEST_F(DBTest, CompactionsGenerateMultipleFiles) {
  Options options = options_;
  options.write_buffer_size = 100000000;  // Large write buffer
  options.max_file_size = 1 << 20;
  DestroyAndReopen(&options);

  Random rnd(301);

  // Write 8MB (80 values, each 100K).
  ASSERT_EQ(NumTableFilesAtLevel(0), 0);
  std::vector<std::string> values;
  for (int i = 0; i < 80; i++) {
    values.push_back(RandomValue(&rnd, 100000));
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(Put(key, values[i]).ok());
  }

  // Reopening moves updates to level-0.
  Reopen(&options);
  dbfull()->TEST_CompactRange(0, nullptr, nullptr);

  ASSERT_EQ(NumTableFilesAtLevel(0), 0);
  ASSERT_GT(NumTableFilesAtLevel(1), 1);
  for (int i = 0; i < 80; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_EQ(Get(key), values[i]);
  }
}

TEST_F(DBTest, DeletionMarkersAreCompactedAway) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  ASSERT_TRUE(Delete("foo").ok());

  // Push everything through every level of the tree.
  CompactAllLevels();

  ASSERT_EQ("NOT_FOUND", Get("foo"));
  // After full compaction the deletion marker itself must be gone:
  // scanning the internal state should yield nothing.
  std::unique_ptr<Iterator> iter(dbfull()->TEST_NewInternalIterator());
  iter->SeekToFirst();
  int internal_entries = 0;
  for (; iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    if (parsed.user_key == Slice("foo")) internal_entries++;
  }
  ASSERT_EQ(0, internal_entries);
}

TEST_F(DBTest, OverwritesAreCollapsedByCompaction) {
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(Put("key", "v" + std::to_string(i)).ok());
  }
  CompactAllLevels();
  ASSERT_EQ("v9", Get("key"));

  std::unique_ptr<Iterator> iter(dbfull()->TEST_NewInternalIterator());
  int versions = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    if (parsed.user_key == Slice("key")) versions++;
  }
  ASSERT_EQ(1, versions);
}

TEST_F(DBTest, Snapshot) {
  ASSERT_TRUE(Put("foo", "v1").ok());
  const Snapshot* s1 = db_->GetSnapshot();
  ASSERT_TRUE(Put("foo", "v2").ok());
  const Snapshot* s2 = db_->GetSnapshot();
  ASSERT_TRUE(Put("foo", "v3").ok());

  ASSERT_EQ("v1", Get("foo", s1));
  ASSERT_EQ("v2", Get("foo", s2));
  ASSERT_EQ("v3", Get("foo"));

  db_->ReleaseSnapshot(s1);
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  ASSERT_EQ("v2", Get("foo", s2));
  ASSERT_EQ("v3", Get("foo"));

  db_->ReleaseSnapshot(s2);
  ASSERT_EQ("v3", Get("foo"));
}

TEST_F(DBTest, HiddenValuesAreRemoved) {
  Random rnd(301);
  std::string big = RandomValue(&rnd, 50000);
  ASSERT_TRUE(Put("foo", big).ok());
  ASSERT_TRUE(Put("pastfoo", "v").ok());
  const Snapshot* snapshot = db_->GetSnapshot();
  ASSERT_TRUE(Put("foo", "tiny").ok());
  // Advance sequence number one more
  ASSERT_TRUE(Put("pastfoo2", "v2").ok());

  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  ASSERT_GT(TotalTableFiles(), 0);  // Flush may skip to level 2.

  ASSERT_EQ(big, Get("foo", snapshot));
  db_->ReleaseSnapshot(snapshot);
  CompactAllLevels();
  ASSERT_EQ("tiny", Get("foo"));
}

TEST_F(DBTest, WriteBatchAtomicity) {
  WriteBatch batch;
  batch.Put("a", "1");
  batch.Put("b", "2");
  batch.Delete("a");
  batch.Put("c", "3");
  ASSERT_TRUE(db_->Write(WriteOptions(), &batch).ok());
  ASSERT_EQ("NOT_FOUND", Get("a"));
  ASSERT_EQ("2", Get("b"));
  ASSERT_EQ("3", Get("c"));
}

TEST_F(DBTest, GetApproximateSizes) {
  Options options = options_;
  options.write_buffer_size = 100000000;
  options.compression = kNoCompression;
  DestroyAndReopen(&options);

  Random rnd(301);
  for (int i = 0; i < 40; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "k%06d", i);
    ASSERT_TRUE(Put(key, RandomValue(&rnd, 10000)).ok());
  }
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());

  Range r1("k000000", "k000020");
  Range r2("k000020", "k000040");
  uint64_t size1, size2;
  db_->GetApproximateSizes(&r1, 1, &size1);
  db_->GetApproximateSizes(&r2, 1, &size2);
  // Each half covers ~200KB.
  ASSERT_GT(size1, 100000u);
  ASSERT_GT(size2, 100000u);
  ASSERT_LT(size1, 400000u);
}

TEST_F(DBTest, BloomFilterOptionWorks) {
  Options options = options_;
  std::unique_ptr<const FilterPolicy> policy(NewBloomFilterPolicy(10));
  options.filter_policy = policy.get();
  DestroyAndReopen(&options);

  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(Put("key" + std::to_string(i), std::to_string(i)).ok());
  }
  ASSERT_TRUE(dbfull()->TEST_CompactMemTable().ok());
  for (int i = 0; i < 1000; i++) {
    ASSERT_EQ(std::to_string(i), Get("key" + std::to_string(i)));
  }
  ASSERT_EQ("NOT_FOUND", Get("absent-key"));

  delete db_;
  db_ = nullptr;
  // Must also reopen fine with the same policy.
  Reopen(&options);
  ASSERT_EQ("7", Get("key7"));
}

TEST_F(DBTest, DestroyDBRemovesEverything) {
  ASSERT_TRUE(Put("foo", "v").ok());
  delete db_;
  db_ = nullptr;
  ASSERT_TRUE(DestroyDB(dbname_, options_).ok());

  Options no_create = options_;
  no_create.create_if_missing = false;
  no_create.env = env_.get();
  DB* db = nullptr;
  ASSERT_FALSE(DB::Open(no_create, dbname_, &db).ok());
  ASSERT_EQ(nullptr, db);
  Reopen();
  ASSERT_EQ("NOT_FOUND", Get("foo"));
}

TEST_F(DBTest, SecondOpenOfSameDbIsRejected) {
  // The LOCK file guards the directory: a second DB instance on the
  // same name must fail instead of corrupting state.
  Options opts = options_;
  opts.env = env_.get();
  DB* second = nullptr;
  Status s = DB::Open(opts, dbname_, &second);
  ASSERT_FALSE(s.ok());
  ASSERT_EQ(nullptr, second);
  ASSERT_NE(std::string::npos, s.ToString().find("lock"));

  // Releasing the first instance frees the lock.
  delete db_;
  db_ = nullptr;
  ASSERT_TRUE(DB::Open(opts, dbname_, &second).ok());
  delete second;
  Reopen();
}

TEST_F(DBTest, OpenRespectsErrorIfExists) {
  Options opts = options_;
  opts.env = env_.get();
  opts.error_if_exists = true;
  DB* db = nullptr;
  ASSERT_FALSE(DB::Open(opts, dbname_, &db).ok());
}

// Randomized model check: DB behaviour must match std::map through
// mixed operations, compactions and reopens.
class DBModelTest : public DBTest, public testing::WithParamInterface<int> {};

TEST_F(DBTest, RandomizedAgainstModel) {
  for (int seed = 1; seed <= 4; seed++) {
    Options options = options_;
    options.write_buffer_size = 10000;  // Force frequent flushes.
    DestroyAndReopen(&options);

    Random rnd(seed);
    std::map<std::string, std::string> model;
    const int kOps = 2000;
    for (int i = 0; i < kOps; i++) {
      std::string key = "key" + std::to_string(rnd.Uniform(200));
      switch (rnd.Uniform(4)) {
        case 0:
        case 1: {  // Put
          std::string value = RandomValue(&rnd, rnd.Uniform(300));
          model[key] = value;
          ASSERT_TRUE(Put(key, value).ok());
          break;
        }
        case 2: {  // Delete
          model.erase(key);
          ASSERT_TRUE(Delete(key).ok());
          break;
        }
        case 3: {  // Get
          auto it = model.find(key);
          std::string got = Get(key);
          if (it == model.end()) {
            ASSERT_EQ("NOT_FOUND", got) << key;
          } else {
            ASSERT_EQ(it->second, got) << key;
          }
          break;
        }
      }
      if (i % 500 == 499) {
        Reopen(&options);
      }
    }

    // Full scan must match the model exactly.
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    auto expected = model.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ASSERT_NE(expected, model.end());
      ASSERT_EQ(expected->first, iter->key().ToString());
      ASSERT_EQ(expected->second, iter->value().ToString());
      ++expected;
    }
    ASSERT_EQ(expected, model.end());
  }
}

}  // namespace fcae
