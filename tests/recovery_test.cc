// Crash-recovery scenarios: truncated WAL tails, lost CURRENT files,
// corrupt log records and deleted table files must either recover
// cleanly or fail loudly — never return wrong data.

#include <memory>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "util/env.h"
#include "util/mem_env.h"

namespace fcae {

class RecoveryTest : public testing::Test {
 public:
  RecoveryTest() : env_(NewMemEnv(Env::Default())), dbname_("/recovery") {
    Open();
  }

  ~RecoveryTest() override { db_.reset(); }

  void Open() {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, dbname_, &db).ok());
    db_.reset(db);
  }

  Status TryOpen() {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    DB* db = nullptr;
    Status s = DB::Open(options, dbname_, &db);
    db_.reset(db);
    return s;
  }

  void Close() { db_.reset(); }

  Status Put(const std::string& k, const std::string& v) {
    return db_->Put(WriteOptions(), k, v);
  }

  std::string Get(const std::string& k) {
    std::string result;
    Status s = db_->Get(ReadOptions(), k, &result);
    return s.ok() ? result : (s.IsNotFound() ? "NOT_FOUND" : s.ToString());
  }

  /// Returns names of files of the given type in the db dir.
  std::vector<std::string> FilesOfType(FileType type) {
    std::vector<std::string> children;
    EXPECT_TRUE(env_->GetChildren(dbname_, &children).ok());
    std::vector<std::string> result;
    for (const std::string& child : children) {
      uint64_t number;
      FileType t;
      if (ParseFileName(child, &number, &t) && t == type) {
        result.push_back(dbname_ + "/" + child);
      }
    }
    return result;
  }

  void TruncateFile(const std::string& fname, uint64_t keep) {
    std::string contents;
    ASSERT_TRUE(ReadFileToString(env_.get(), fname, &contents).ok());
    contents.resize(keep);
    ASSERT_TRUE(WriteStringToFile(env_.get(), contents, fname).ok());
  }

  std::unique_ptr<Env> env_;
  std::string dbname_;
  std::unique_ptr<DB> db_;
};

TEST_F(RecoveryTest, UnflushedWritesSurviveReopen) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  Open();  // Recovers from the WAL; nothing was flushed.
  ASSERT_EQ("1", Get("a"));
  ASSERT_EQ("2", Get("b"));
}

TEST_F(RecoveryTest, TruncatedWalTailDropsOnlyTail) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", "2").ok());
  Close();

  // Chop bytes off the live log: a crash mid-write. The earlier records
  // must survive; the torn tail is dropped silently.
  auto logs = FilesOfType(FileType::kLogFile);
  ASSERT_FALSE(logs.empty());
  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(logs.back(), &size).ok());
  TruncateFile(logs.back(), size - 3);

  Open();
  ASSERT_EQ("1", Get("a"));
  // "b" may or may not survive depending on record boundaries, but the
  // DB must open and serve consistent data.
  std::string b = Get("b");
  ASSERT_TRUE(b == "2" || b == "NOT_FOUND");
}

TEST_F(RecoveryTest, CorruptWalRecordIsSkipped) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(Put("b", std::string(2000, 'x')).ok());
  ASSERT_TRUE(Put("c", "3").ok());
  Close();

  auto logs = FilesOfType(FileType::kLogFile);
  ASSERT_FALSE(logs.empty());
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env_.get(), logs.back(), &contents).ok());
  // Flip a byte in the middle record's payload.
  contents[contents.size() / 2] ^= 0x40;
  ASSERT_TRUE(WriteStringToFile(env_.get(), contents, logs.back()).ok());

  Open();  // Must open despite the bad record.
  ASSERT_EQ("1", Get("a"));
}

TEST_F(RecoveryTest, MissingCurrentFileFailsCleanly) {
  ASSERT_TRUE(Put("a", "1").ok());
  Close();
  ASSERT_TRUE(env_->RemoveFile(CurrentFileName(dbname_)).ok());
  // create_if_missing re-initializes an empty database.
  ASSERT_TRUE(TryOpen().ok());
}

TEST_F(RecoveryTest, GarbageCurrentFileIsRejected) {
  ASSERT_TRUE(Put("a", "1").ok());
  Close();
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), "no newline", CurrentFileName(dbname_))
          .ok());
  Status s = TryOpen();
  ASSERT_FALSE(s.ok());
  ASSERT_TRUE(s.IsCorruption()) << s.ToString();
}

TEST_F(RecoveryTest, MissingTableFileIsDetected) {
  ASSERT_TRUE(Put("a", "1").ok());
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  Close();

  auto tables = FilesOfType(FileType::kTableFile);
  ASSERT_FALSE(tables.empty());
  ASSERT_TRUE(env_->RemoveFile(tables[0]).ok());

  Status s = TryOpen();
  ASSERT_FALSE(s.ok());
  ASSERT_NE(std::string::npos, s.ToString().find("missing files"));
}

TEST_F(RecoveryTest, ManyReopensKeepSequenceMonotonic) {
  for (int round = 0; round < 8; round++) {
    ASSERT_TRUE(Put("round", std::to_string(round)).ok());
    Open();
    ASSERT_EQ(std::to_string(round), Get("round"));
  }
}

TEST_F(RecoveryTest, FlushedAndUnflushedMix) {
  ASSERT_TRUE(Put("flushed", "f").ok());
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  ASSERT_TRUE(Put("unflushed", "u").ok());
  Open();
  ASSERT_EQ("f", Get("flushed"));
  ASSERT_EQ("u", Get("unflushed"));
}

}  // namespace fcae
