#include "fpga/device_memory.h"

#include "gtest/gtest.h"

namespace fcae {
namespace fpga {

TEST(DeviceMemoryTest, MetaInRoundTrip) {
  std::vector<SstableDescriptor> tables;
  for (int i = 0; i < 5; i++) {
    SstableDescriptor d;
    d.index_offset = i * 1000;
    d.index_size = 100 + i;
    d.data_offset = i * 2000000;
    d.data_size = 2000000;
    tables.push_back(d);
  }
  std::string encoded;
  EncodeMetaIn(tables, &encoded);

  std::vector<SstableDescriptor> decoded;
  ASSERT_TRUE(DecodeMetaIn(encoded, &decoded).ok());
  ASSERT_EQ(tables.size(), decoded.size());
  for (size_t i = 0; i < tables.size(); i++) {
    EXPECT_EQ(tables[i].index_offset, decoded[i].index_offset);
    EXPECT_EQ(tables[i].index_size, decoded[i].index_size);
    EXPECT_EQ(tables[i].data_offset, decoded[i].data_offset);
    EXPECT_EQ(tables[i].data_size, decoded[i].data_size);
  }
}

TEST(DeviceMemoryTest, MetaInEmpty) {
  std::string encoded;
  EncodeMetaIn({}, &encoded);
  std::vector<SstableDescriptor> decoded;
  ASSERT_TRUE(DecodeMetaIn(encoded, &decoded).ok());
  ASSERT_TRUE(decoded.empty());
}

TEST(DeviceMemoryTest, MetaInRejectsTruncation) {
  std::vector<SstableDescriptor> tables(3);
  tables[0].index_size = 12345678;
  std::string encoded;
  EncodeMetaIn(tables, &encoded);
  for (size_t cut = 1; cut < encoded.size(); cut++) {
    std::vector<SstableDescriptor> decoded;
    ASSERT_FALSE(
        DecodeMetaIn(Slice(encoded.data(), encoded.size() - cut), &decoded)
            .ok());
  }
}

TEST(DeviceMemoryTest, MetaInRejectsTrailingBytes) {
  std::string encoded;
  EncodeMetaIn({}, &encoded);
  encoded.push_back('x');
  std::vector<SstableDescriptor> decoded;
  ASSERT_FALSE(DecodeMetaIn(encoded, &decoded).ok());
}

TEST(DeviceMemoryTest, OutputIndexRoundTrip) {
  std::vector<OutputIndexEntry> entries;
  for (int i = 0; i < 10; i++) {
    OutputIndexEntry e;
    e.last_key = "key" + std::to_string(i) + std::string(8, '\x01');
    e.offset = i * 4096;
    e.size = 4000 + i;
    entries.push_back(e);
  }
  std::string encoded;
  EncodeOutputIndex(entries, &encoded);

  std::vector<OutputIndexEntry> decoded;
  ASSERT_TRUE(DecodeOutputIndex(encoded, &decoded).ok());
  ASSERT_EQ(entries.size(), decoded.size());
  for (size_t i = 0; i < entries.size(); i++) {
    EXPECT_EQ(entries[i].last_key, decoded[i].last_key);
    EXPECT_EQ(entries[i].offset, decoded[i].offset);
    EXPECT_EQ(entries[i].size, decoded[i].size);
  }
}

TEST(DeviceMemoryTest, OutputIndexRejectsGarbage) {
  std::vector<OutputIndexEntry> decoded;
  ASSERT_FALSE(DecodeOutputIndex(Slice("\xff\xff\xff", 3), &decoded).ok());
}

TEST(DeviceMemoryTest, TotalBytesAccounting) {
  DeviceInput input;
  input.index_memory = std::string(100, 'i');
  input.data_memory = std::string(1000, 'd');
  ASSERT_EQ(1100u, input.TotalBytes());

  DeviceOutput output;
  DeviceOutputTable t;
  t.data_memory = std::string(500, 'x');
  OutputIndexEntry e;
  e.last_key = "0123456789";
  t.index_entries.push_back(e);
  output.tables.push_back(std::move(t));
  ASSERT_EQ(500u + 10 + 16, output.TotalBytes());
}

}  // namespace fpga
}  // namespace fcae
