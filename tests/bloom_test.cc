#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/coding.h"
#include "util/filter_policy.h"

namespace fcae {

namespace {

Slice Key(int i, char* buffer) {
  EncodeFixed32(buffer, i);
  return Slice(buffer, sizeof(uint32_t));
}

}  // namespace

class BloomTest : public testing::Test {
 public:
  BloomTest() : policy_(NewBloomFilterPolicy(10)) {}

  void Reset() {
    keys_.clear();
    filter_.clear();
  }

  void Add(const Slice& s) { keys_.push_back(s.ToString()); }

  void Build() {
    std::vector<Slice> key_slices;
    for (size_t i = 0; i < keys_.size(); i++) {
      key_slices.push_back(Slice(keys_[i]));
    }
    filter_.clear();
    policy_->CreateFilter(key_slices.data(),
                          static_cast<int>(key_slices.size()), &filter_);
    keys_.clear();
  }

  size_t FilterSize() const { return filter_.size(); }

  bool Matches(const Slice& s) {
    if (!keys_.empty()) {
      Build();
    }
    return policy_->KeyMayMatch(s, filter_);
  }

  double FalsePositiveRate() {
    char buffer[sizeof(int)];
    int result = 0;
    for (int i = 0; i < 10000; i++) {
      if (Matches(Key(i + 1000000000, buffer))) {
        result++;
      }
    }
    return result / 10000.0;
  }

 private:
  std::unique_ptr<const FilterPolicy> policy_;
  std::string filter_;
  std::vector<std::string> keys_;
};

TEST_F(BloomTest, EmptyFilter) {
  ASSERT_FALSE(Matches("hello"));
  ASSERT_FALSE(Matches("world"));
}

TEST_F(BloomTest, Small) {
  Add("hello");
  Add("world");
  ASSERT_TRUE(Matches("hello"));
  ASSERT_TRUE(Matches("world"));
  ASSERT_FALSE(Matches("x"));
  ASSERT_FALSE(Matches("foo"));
}

namespace {
int NextLength(int length) {
  if (length < 10) {
    length += 1;
  } else if (length < 100) {
    length += 10;
  } else if (length < 1000) {
    length += 100;
  } else {
    length += 1000;
  }
  return length;
}
}  // namespace

TEST_F(BloomTest, VaryingLengths) {
  char buffer[sizeof(int)];

  int mediocre_filters = 0;
  int good_filters = 0;

  for (int length = 1; length <= 10000; length = NextLength(length)) {
    Reset();
    for (int i = 0; i < length; i++) {
      Add(Key(i, buffer));
    }
    Build();

    ASSERT_LE(FilterSize(), static_cast<size_t>((length * 10 / 8) + 40))
        << length;

    // All added keys must match.
    for (int i = 0; i < length; i++) {
      ASSERT_TRUE(Matches(Key(i, buffer)))
          << "Length " << length << "; key " << i;
    }

    // Check false positive rate.
    double rate = FalsePositiveRate();
    ASSERT_LE(rate, 0.04);  // Must not be over 4%.
    if (rate > 0.0125) {
      mediocre_filters++;  // Allowed, but not too often.
    } else {
      good_filters++;
    }
  }
  ASSERT_LE(mediocre_filters, good_filters / 5);
}

TEST_F(BloomTest, NoFalseNegativesOnStringKeys) {
  std::vector<std::string> keys;
  for (int i = 0; i < 500; i++) {
    keys.push_back("user_key_" + std::to_string(i * 7919));
  }
  for (const auto& k : keys) {
    Add(k);
  }
  Build();
  for (const auto& k : keys) {
    ASSERT_TRUE(Matches(k)) << k;
  }
}

}  // namespace fcae
