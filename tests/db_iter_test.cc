// DBIter edge cases: deletions under the cursor, overwrites collapsing
// to one visible version, direction switches at boundaries, seeks onto
// deleted keys, and iteration across the memtable/SSTable boundary.

#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

class DbIterTest : public testing::Test {
 public:
  DbIterTest() : env_(NewMemEnv(Env::Default())) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/dbiter", &db).ok());
    db_.reset(db);
  }

  void Put(const std::string& k, const std::string& v) {
    ASSERT_TRUE(db_->Put(WriteOptions(), k, v).ok());
  }
  void Delete(const std::string& k) {
    ASSERT_TRUE(db_->Delete(WriteOptions(), k).ok());
  }
  void Flush() {
    ASSERT_TRUE(
        reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  }

  std::unique_ptr<Iterator> Iter() {
    return std::unique_ptr<Iterator>(db_->NewIterator(ReadOptions()));
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<DB> db_;
};

TEST_F(DbIterTest, SeekLandsPastDeletedKey) {
  Put("a", "1");
  Put("b", "2");
  Put("c", "3");
  Delete("b");

  auto iter = Iter();
  iter->Seek("b");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("c", iter->key().ToString());
}

TEST_F(DbIterTest, PrevSkipsDeletedRun) {
  Put("a", "1");
  for (int i = 0; i < 20; i++) {
    Put("m" + std::to_string(i), "x");
  }
  Put("z", "26");
  for (int i = 0; i < 20; i++) {
    Delete("m" + std::to_string(i));
  }

  auto iter = Iter();
  iter->SeekToLast();
  ASSERT_EQ("z", iter->key().ToString());
  iter->Prev();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("a", iter->key().ToString());
  iter->Prev();
  ASSERT_FALSE(iter->Valid());
}

TEST_F(DbIterTest, OverwritesShowNewestOnly) {
  for (int i = 0; i < 10; i++) {
    Put("key", "v" + std::to_string(i));
  }
  auto iter = Iter();
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_EQ("key", iter->key().ToString());
    ASSERT_EQ("v9", iter->value().ToString());
    count++;
  }
  ASSERT_EQ(1, count);
}

TEST_F(DbIterTest, MixedMemtableAndSstableSources) {
  Put("disk1", "d1");
  Put("disk2", "d2");
  Flush();  // These two now live in an SSTable.
  Put("mem1", "m1");
  Delete("disk1");  // Deletion in the memtable shadows the SSTable.

  auto iter = Iter();
  std::string scan;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    scan += iter->key().ToString() + "=" + iter->value().ToString() + ";";
  }
  ASSERT_EQ("disk2=d2;mem1=m1;", scan);

  // And in reverse.
  scan.clear();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    scan += iter->key().ToString() + ";";
  }
  ASSERT_EQ("mem1;disk2;", scan);
}

TEST_F(DbIterTest, DirectionSwitchAtFirstAndLast) {
  Put("a", "1");
  Put("b", "2");
  Put("c", "3");

  auto iter = Iter();
  iter->SeekToFirst();
  iter->Prev();
  ASSERT_FALSE(iter->Valid());
  iter->SeekToFirst();
  ASSERT_EQ("a", iter->key().ToString());

  iter->SeekToLast();
  iter->Next();
  ASSERT_FALSE(iter->Valid());
  iter->SeekToLast();
  ASSERT_EQ("c", iter->key().ToString());

  // Zig-zag in the middle.
  iter->Seek("b");
  iter->Next();
  ASSERT_EQ("c", iter->key().ToString());
  iter->Prev();
  ASSERT_EQ("b", iter->key().ToString());
  iter->Prev();
  ASSERT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("b", iter->key().ToString());
}

TEST_F(DbIterTest, EmptyValueRoundTrips) {
  Put("empty", "");
  Put("full", "x");
  auto iter = Iter();
  iter->Seek("empty");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("", iter->value().ToString());
}

TEST_F(DbIterTest, RandomizedAgainstModelWithDeletions) {
  Random rnd(77);
  std::map<std::string, std::string> model;
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(rnd.Uniform(150));
    if (rnd.OneIn(4)) {
      Delete(key);
      model.erase(key);
    } else {
      std::string value = "v" + std::to_string(i);
      Put(key, value);
      model[key] = value;
    }
    if (i % 1000 == 999) Flush();
  }

  // Forward.
  auto iter = Iter();
  auto expected = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_NE(expected, model.end());
    ASSERT_EQ(expected->first, iter->key().ToString());
    ASSERT_EQ(expected->second, iter->value().ToString());
    ++expected;
  }
  ASSERT_EQ(expected, model.end());

  // Backward.
  auto rexpected = model.rbegin();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    ASSERT_NE(rexpected, model.rend());
    ASSERT_EQ(rexpected->first, iter->key().ToString());
    ++rexpected;
  }
  ASSERT_EQ(rexpected, model.rend());

  // Random seeks.
  for (int i = 0; i < 200; i++) {
    std::string target = "k" + std::to_string(rnd.Uniform(200));
    iter->Seek(target);
    auto lb = model.lower_bound(target);
    if (lb == model.end()) {
      ASSERT_FALSE(iter->Valid()) << target;
    } else {
      ASSERT_TRUE(iter->Valid()) << target;
      ASSERT_EQ(lb->first, iter->key().ToString());
    }
  }
}

}  // namespace fcae
