// Per-operation profiling (obs/perf_context.h) end to end:
//  - the tick macros respect the thread's PerfLevel (kDisable records
//    nothing, kEnableCount skips clock reads, kEnableTime fills the
//    *_micros fields);
//  - the contexts are thread-local: worker-thread ticks never leak into
//    the test thread and vice versa;
//  - the read path accounts bloom probes, block-cache hits/misses,
//    block reads, memtable/SST probes and table-cache lookups;
//  - the write path accounts WAL appends/syncs and stall passes;
//  - iteration accounts hidden-entry skips and merge-iterator seeks.

#include <memory>
#include <string>
#include <thread>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "obs/perf_context.h"
#include "table/iterator.h"
#include "util/cache.h"
#include "util/filter_policy.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {
namespace {

/// Restores the previous perf level on scope exit so one test cannot
/// poison the next (gtest runs them all on this thread).
class ScopedPerfLevel {
 public:
  explicit ScopedPerfLevel(obs::PerfLevel level)
      : previous_(obs::GetPerfLevel()) {
    obs::SetPerfLevel(level);
    obs::GetPerfContext()->Reset();
    obs::GetIOStats()->Reset();
  }
  ~ScopedPerfLevel() { obs::SetPerfLevel(previous_); }

 private:
  obs::PerfLevel previous_;
};

TEST(PerfContextUnit, MacrosRespectPerfLevel) {
  {
    ScopedPerfLevel level(obs::PerfLevel::kDisable);
    FCAE_PERF_COUNT(bloom_filter_hits, 3);
    FCAE_PERF_TIME(block_read_micros, 100);
    FCAE_IOSTATS_COUNT(bytes_read, 7);
    EXPECT_EQ(0u, obs::GetPerfContext()->bloom_filter_hits);
    EXPECT_EQ(0u, obs::GetPerfContext()->block_read_micros);
    EXPECT_EQ(0u, obs::GetIOStats()->bytes_read);
    EXPECT_EQ(0u, obs::PerfNowMicrosIfEnabled());
  }
  {
    ScopedPerfLevel level(obs::PerfLevel::kEnableCount);
    FCAE_PERF_COUNT(bloom_filter_hits, 3);
    FCAE_PERF_TIME(block_read_micros, 100);  // Timing still off.
    FCAE_IOSTATS_COUNT(bytes_read, 7);
    EXPECT_EQ(3u, obs::GetPerfContext()->bloom_filter_hits);
    EXPECT_EQ(0u, obs::GetPerfContext()->block_read_micros);
    EXPECT_EQ(7u, obs::GetIOStats()->bytes_read);
    EXPECT_EQ(0u, obs::PerfNowMicrosIfEnabled());
  }
  {
    ScopedPerfLevel level(obs::PerfLevel::kEnableTime);
    FCAE_PERF_TIME(block_read_micros, 100);
    EXPECT_EQ(100u, obs::GetPerfContext()->block_read_micros);
    EXPECT_GT(obs::PerfNowMicrosIfEnabled(), 0u);
  }
}

TEST(PerfContextUnit, TimerGuardChargesOnlyAtEnableTime) {
  {
    ScopedPerfLevel level(obs::PerfLevel::kEnableCount);
    {
      FCAE_PERF_TIMER_GUARD(timer, wal_sync_micros);
    }
    EXPECT_EQ(0u, obs::GetPerfContext()->wal_sync_micros);
  }
  {
    ScopedPerfLevel level(obs::PerfLevel::kEnableTime);
    const uint64_t t0 = obs::PerfNowMicros();
    {
      FCAE_PERF_TIMER_GUARD(timer, wal_sync_micros);
      while (obs::PerfNowMicros() - t0 < 2) {
      }
    }
    EXPECT_GE(obs::GetPerfContext()->wal_sync_micros, 2u);
  }
}

TEST(PerfContextUnit, ResetAndToString) {
  ScopedPerfLevel level(obs::PerfLevel::kEnableCount);
  obs::PerfContext* perf = obs::GetPerfContext();
  EXPECT_EQ("", perf->ToString());

  perf->bloom_filter_hits = 2;
  perf->wal_appends = 5;
  // Declaration order, nonzero fields only.
  EXPECT_EQ("bloom_filter_hits=2 wal_appends=5", perf->ToString());

  perf->Reset();
  EXPECT_EQ("", perf->ToString());
  EXPECT_EQ(0u, perf->bloom_filter_hits);

  obs::IOStatsContext* io = obs::GetIOStats();
  io->bytes_written = 9;
  EXPECT_EQ("bytes_written=9", io->ToString());
  io->Reset();
  EXPECT_EQ("", io->ToString());
}

TEST(PerfContextUnit, ContextsAreThreadLocal) {
  ScopedPerfLevel level(obs::PerfLevel::kEnableCount);
  FCAE_PERF_COUNT(sst_probes, 1);

  uint64_t worker_probes_before = ~0ull;
  uint64_t worker_probes_after = ~0ull;
  obs::PerfLevel worker_level = obs::PerfLevel::kEnableTime;
  std::thread worker([&]() {
    // A fresh thread starts disabled with zeroed contexts regardless of
    // the spawner's state.
    worker_level = obs::GetPerfLevel();
    worker_probes_before = obs::GetPerfContext()->sst_probes;
    obs::SetPerfLevel(obs::PerfLevel::kEnableCount);
    FCAE_PERF_COUNT(sst_probes, 10);
    worker_probes_after = obs::GetPerfContext()->sst_probes;
  });
  worker.join();

  EXPECT_EQ(obs::PerfLevel::kDisable, worker_level);
  EXPECT_EQ(0u, worker_probes_before);
  EXPECT_EQ(10u, worker_probes_after);
  // The worker's ticks did not land here.
  EXPECT_EQ(1u, obs::GetPerfContext()->sst_probes);
}

class PerfContextDbTest : public testing::Test {
 public:
  PerfContextDbTest()
      : env_(NewMemEnv(Env::Default())),
        filter_(NewBloomFilterPolicy(10)),
        block_cache_(NewLRUCache(64 * 1024)) {}

  void Open() {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.filter_policy = filter_.get();
    options.block_cache = block_cache_.get();
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, "/perf_db", &db).ok());
    db_.reset(db);
  }

  /// Loads `n` keys and compacts them down so reads hit SSTables with
  /// filters instead of the memtable.
  void LoadAndCompact(int n) {
    WriteOptions wo;
    for (int i = 0; i < n; i++) {
      ASSERT_TRUE(db_->Put(wo, Key(i), std::string(100, 'v')).ok());
    }
    auto* impl = reinterpret_cast<DBImpl*>(db_.get());
    ASSERT_TRUE(impl->TEST_CompactMemTable().ok());
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  static std::string Key(int i) {
    char buf[32];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return buf;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<const FilterPolicy> filter_;
  std::unique_ptr<Cache> block_cache_;
  std::unique_ptr<DB> db_;
};

TEST_F(PerfContextDbTest, ReadPathAccounting) {
  Open();
  LoadAndCompact(2000);

  ScopedPerfLevel level(obs::PerfLevel::kEnableTime);
  obs::PerfContext* perf = obs::GetPerfContext();
  ReadOptions ro;
  std::string value;

  // Present keys: every Get probes the memtable first, then tables;
  // the filter passes the key and a data block settles it.
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Get(ro, Key(i * 4), &value).ok());
  }
  EXPECT_EQ(500u, perf->memtable_probes);
  EXPECT_GT(perf->sst_probes, 0u);
  EXPECT_GT(perf->table_cache_hits + perf->table_cache_misses, 0u);
  EXPECT_GT(perf->bloom_filter_hits, 0u);
  EXPECT_GT(perf->block_cache_hits + perf->block_cache_misses, 0u);
  EXPECT_GT(perf->block_read_count, 0u);
  EXPECT_GT(perf->block_read_bytes, 0u);
  EXPECT_GT(obs::GetIOStats()->bytes_read, 0u);
  const uint64_t negatives_before = perf->bloom_filter_negatives;

  // Absent keys land in some table's key range but the filter proves
  // absence without a data-block read.
  for (int i = 0; i < 500; i++) {
    EXPECT_TRUE(db_->Get(ro, Key(i * 4) + "x", &value).IsNotFound());
  }
  EXPECT_GT(perf->bloom_filter_negatives, negatives_before);
}

TEST_F(PerfContextDbTest, WritePathAccounting) {
  Open();
  ScopedPerfLevel level(obs::PerfLevel::kEnableTime);
  obs::PerfContext* perf = obs::GetPerfContext();

  WriteOptions wo;
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), "v").ok());
  }
  EXPECT_EQ(100u, perf->wal_appends);
  EXPECT_EQ(0u, perf->wal_syncs);
  EXPECT_GT(obs::GetIOStats()->bytes_written, 0u);

  wo.sync = true;
  for (int i = 0; i < 10; i++) {
    ASSERT_TRUE(db_->Put(wo, Key(i), "v2").ok());
  }
  EXPECT_EQ(110u, perf->wal_appends);
  EXPECT_EQ(10u, perf->wal_syncs);
}

TEST_F(PerfContextDbTest, IterationAccounting) {
  Open();
  WriteOptions wo;
  // Overwrites and deletes leave hidden internal entries a scan must
  // step over.
  for (int round = 0; round < 3; round++) {
    for (int i = 0; i < 500; i++) {
      ASSERT_TRUE(db_->Put(wo, Key(i), "v" + std::to_string(round)).ok());
    }
  }
  for (int i = 0; i < 500; i += 2) {
    ASSERT_TRUE(db_->Delete(wo, Key(i)).ok());
  }

  ScopedPerfLevel level(obs::PerfLevel::kEnableCount);
  obs::PerfContext* perf = obs::GetPerfContext();
  std::unique_ptr<Iterator> it(db_->NewIterator(ReadOptions()));
  int live = 0;
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    live++;
  }
  EXPECT_EQ(250, live);
  EXPECT_GT(perf->merge_iterator_seeks, 0u);
  EXPECT_GT(perf->internal_keys_skipped, 0u);
}

TEST_F(PerfContextDbTest, DisabledLevelRecordsNothing) {
  Open();
  LoadAndCompact(1000);

  ScopedPerfLevel level(obs::PerfLevel::kDisable);
  ReadOptions ro;
  std::string value;
  WriteOptions wo;
  for (int i = 0; i < 200; i++) {
    db_->Get(ro, Key(i * 5), &value).IgnoreError();
    ASSERT_TRUE(db_->Put(wo, Key(i), "w").ok());
  }
  EXPECT_EQ("", obs::GetPerfContext()->ToString());
  EXPECT_EQ("", obs::GetIOStats()->ToString());
}

TEST_F(PerfContextDbTest, CountLevelSkipsClockReads) {
  Open();
  LoadAndCompact(1000);

  ScopedPerfLevel level(obs::PerfLevel::kEnableCount);
  obs::PerfContext* perf = obs::GetPerfContext();
  ReadOptions ro;
  std::string value;
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(db_->Get(ro, Key(i * 2), &value).ok());
  }
  EXPECT_GT(perf->block_read_count, 0u);
  EXPECT_EQ(0u, perf->block_read_micros);
  EXPECT_EQ(0u, obs::GetIOStats()->read_micros);
}

}  // namespace
}  // namespace fcae
