// Token-bucket rate limiter tests (DESIGN.md §10), driven by a fake
// clock so every wait is deterministic: SleepForMicroseconds advances
// NowMicros and nothing blocks for real.

#include "util/rate_limiter.h"

#include <atomic>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "util/env.h"

namespace fcae {

namespace {

/// Env stub whose only working pieces are the clock hooks the limiter
/// uses; sleeping advances the clock, so throttle waits resolve
/// instantly in test time.
class FakeClockEnv : public Env {
 public:
  uint64_t NowMicros() override {
    return micros_.load(std::memory_order_acquire);
  }
  void SleepForMicroseconds(int micros) override {
    micros_.fetch_add(micros, std::memory_order_acq_rel);
    sleeps_.fetch_add(1, std::memory_order_acq_rel);
  }
  uint64_t sleep_calls() const {
    return sleeps_.load(std::memory_order_acquire);
  }

  // Unused by the limiter.
  Status NewSequentialFile(const std::string&, SequentialFile**) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status NewRandomAccessFile(const std::string&,
                             RandomAccessFile**) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status NewWritableFile(const std::string&, WritableFile**) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status NewAppendableFile(const std::string&, WritableFile**) override {
    return Status::NotSupported("FakeClockEnv");
  }
  bool FileExists(const std::string&) override { return false; }
  Status GetChildren(const std::string&,
                     std::vector<std::string>*) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status RemoveFile(const std::string&) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status CreateDir(const std::string&) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status RemoveDir(const std::string&) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status GetFileSize(const std::string&, uint64_t*) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status RenameFile(const std::string&, const std::string&) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status LockFile(const std::string&, FileLock**) override {
    return Status::NotSupported("FakeClockEnv");
  }
  Status UnlockFile(FileLock*) override {
    return Status::NotSupported("FakeClockEnv");
  }
  void Schedule(void (*)(void*), void*) override {}
  void StartThread(void (*)(void*), void*) override {}

 private:
  std::atomic<uint64_t> micros_{1};
  std::atomic<uint64_t> sleeps_{0};
};

/// Sink WritableFile that records appended bytes.
class CountingFile : public WritableFile {
 public:
  Status Append(const Slice& data) override {
    appended += data.size();
    return Status::OK();
  }
  Status Close() override { return Status::OK(); }
  Status Flush() override { return Status::OK(); }
  Status Sync() override { return Status::OK(); }
  size_t appended = 0;
};

}  // namespace

TEST(RateLimiterTest, ZeroRateNeverWaitsButStillCounts) {
  FakeClockEnv env;
  RateLimiter limiter(&env, 0);
  limiter.Request(50 * 1000 * 1000, RateLimiter::Priority::kLow);
  limiter.Request(1, RateLimiter::Priority::kHigh);
  EXPECT_EQ(0u, env.sleep_calls());
  EXPECT_EQ(2u, limiter.total_requests());
  EXPECT_EQ(50 * 1000 * 1000 + 1u, limiter.total_bytes_through());
  EXPECT_EQ(0u, limiter.total_throttled_bytes());
  EXPECT_EQ(0u, limiter.total_wait_micros());
}

TEST(RateLimiterTest, BurstWithinOneWindowPassesWithoutWaiting) {
  FakeClockEnv env;
  RateLimiter limiter(&env, 1000 * 1000);  // 1 MB/s -> 100 KB burst cap.
  env.SleepForMicroseconds(200 * 1000);    // Bank (capped) credit.
  const uint64_t sleeps_before = env.sleep_calls();
  limiter.Request(100 * 1000, RateLimiter::Priority::kLow);  // Exactly one window.
  EXPECT_EQ(sleeps_before, env.sleep_calls());
  EXPECT_EQ(0u, limiter.total_throttled_bytes());
  EXPECT_EQ(0u, limiter.total_wait_micros());
}

TEST(RateLimiterTest, ThrottledRequestWaitsForRefill) {
  FakeClockEnv env;
  RateLimiter limiter(&env, 1000 * 1000);  // 1 MB/s.
  env.SleepForMicroseconds(100 * 1000);    // Fill the bucket: 100 KB.
  const uint64_t start = env.NowMicros();
  // 300 KB at 1 MB/s: 100 KB banked, 200 KB must accrue -> ~200 ms.
  limiter.Request(300 * 1000, RateLimiter::Priority::kLow);
  const uint64_t elapsed = env.NowMicros() - start;
  EXPECT_GE(elapsed, 190 * 1000u);
  EXPECT_LE(elapsed, 260 * 1000u);
  EXPECT_GT(env.sleep_calls(), 0u);
  // The shortfall at first throttle is what is counted, exactly once.
  EXPECT_EQ(200 * 1000u, limiter.total_throttled_bytes());
  EXPECT_GE(limiter.total_wait_micros(), 190 * 1000u);
  EXPECT_EQ(300 * 1000u, limiter.total_bytes_through());
}

TEST(RateLimiterTest, IdleTimeCannotBankMoreThanOneBurstWindow) {
  FakeClockEnv env;
  RateLimiter limiter(&env, 1000 * 1000);
  env.SleepForMicroseconds(60 * 1000 * 1000);  // A minute idle.
  const uint64_t start = env.NowMicros();
  // Only one window (100 KB) of credit survived: 200 KB still waits.
  limiter.Request(200 * 1000, RateLimiter::Priority::kLow);
  EXPECT_GE(env.NowMicros() - start, 90 * 1000u);
}

TEST(RateLimiterTest, SetBytesPerSecondTakesEffectAndZeroOpensThrottle) {
  FakeClockEnv env;
  RateLimiter limiter(&env, 1000);  // 1 KB/s: everything throttles.
  limiter.SetBytesPerSecond(100 * 1000 * 1000);  // 100 MB/s.
  EXPECT_EQ(100 * 1000 * 1000u, limiter.bytes_per_second());
  env.SleepForMicroseconds(100 * 1000);
  const uint64_t sleeps_before = env.sleep_calls();
  limiter.Request(1000 * 1000, RateLimiter::Priority::kLow);  // 1 MB, < burst.
  EXPECT_EQ(sleeps_before, env.sleep_calls());

  limiter.SetBytesPerSecond(0);
  const uint64_t start = env.NowMicros();
  limiter.Request(500 * 1000 * 1000, RateLimiter::Priority::kLow);
  EXPECT_EQ(start, env.NowMicros());  // Unlimited again.
}

TEST(RateLimiterTest, RateLimitedFileChargesAppendsAgainstTheLimiter) {
  FakeClockEnv env;
  RateLimiter limiter(&env, 1000 * 1000);
  env.SleepForMicroseconds(100 * 1000);  // Bank the full burst window.

  CountingFile* sink = new CountingFile();
  RateLimitedWritableFile file(sink, &limiter, RateLimiter::Priority::kHigh);
  std::string chunk(25 * 1000, 'x');
  for (int i = 0; i < 8; i++) {  // 200 KB through a 100 KB bucket.
    ASSERT_TRUE(file.Append(chunk).ok());
  }
  ASSERT_TRUE(file.Flush().ok());
  ASSERT_TRUE(file.Sync().ok());
  ASSERT_TRUE(file.Close().ok());
  EXPECT_EQ(200 * 1000u, sink->appended);
  EXPECT_EQ(200 * 1000u, limiter.total_bytes_through());
  EXPECT_EQ(8u, limiter.total_requests());
  // The second 100 KB had to wait on refill.
  EXPECT_GT(limiter.total_wait_micros(), 0u);
  EXPECT_GT(limiter.total_throttled_bytes(), 0u);
}

TEST(RateLimiterTest, NullLimiterWrapperIsAPassThrough) {
  CountingFile* sink = new CountingFile();
  RateLimitedWritableFile file(sink, nullptr, RateLimiter::Priority::kLow);
  ASSERT_TRUE(file.Append(Slice("abc")).ok());
  EXPECT_EQ(3u, sink->appended);
}

}  // namespace fcae
