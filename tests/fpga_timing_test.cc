#include "fpga/timing_model.h"

#include <memory>

#include "fpga/compaction_engine.h"
#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "util/mem_env.h"

namespace fcae {
namespace fpga {

using fpga_test::BuildDeviceInput;
using fpga_test::MakeRun;
using fpga_test::TestKv;

// The paper's worked example (Section VII-B1, footnote 1):
// L_key = 16 real + 8 mark = 24. With N=2, V=8, L_value=1024 the
// decoder period is 24 + 1024/8 = 152; with V=16 it is 24 + 64 = 88;
// the comparer period is 3 * 24 = 72.
TEST(TimingModelTest, PaperWorkedExample) {
  EngineConfig config;
  config.num_inputs = 2;

  config.value_width = 8;
  TimingModel model8(config);
  EXPECT_EQ(152u, model8.DecoderPeriod(24, 1024));
  EXPECT_EQ(72u, model8.ComparerPeriod(24, 1024));
  EXPECT_TRUE(model8.DecoderBound(24, 1024));

  config.value_width = 16;
  TimingModel model16(config);
  EXPECT_EQ(88u, model16.DecoderPeriod(24, 1024));
  EXPECT_EQ(Bottleneck::kDataBlockDecoder,
            model16.BottleneckModule(24, 1024));

  // Short values flip the bottleneck to the Comparer.
  EXPECT_EQ(Bottleneck::kComparer, model16.BottleneckModule(24, 128));
  EXPECT_FALSE(model16.DecoderBound(24, 128));
}

TEST(TimingModelTest, ComparerScalesWithInputCount) {
  EngineConfig config;
  config.num_inputs = 2;
  EXPECT_EQ(3u * 24, TimingModel(config).ComparerPeriod(24, 0));
  config.num_inputs = 4;
  EXPECT_EQ(4u * 24, TimingModel(config).ComparerPeriod(24, 0));
  config.num_inputs = 9;  // ceil(log2 9) = 4 -> period 6 * L_key.
  EXPECT_EQ(6u * 24, TimingModel(config).ComparerPeriod(24, 0));
}

TEST(TimingModelTest, TransferAndEncoderPeriods) {
  EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;
  TimingModel model(config);
  // max(24, 1024/16) = 64.
  EXPECT_EQ(64u, model.TransferPeriod(24, 1024));
  // max(24, 128/16) = 24.
  EXPECT_EQ(24u, model.TransferPeriod(24, 128));
  EXPECT_EQ(24u, model.EncoderPeriod(24, 1024));
}

TEST(TimingModelTest, UnseparatedDesignsAreSlower) {
  EngineConfig separated;
  separated.num_inputs = 2;
  separated.value_width = 16;
  EngineConfig basic = separated;
  basic.opt_level = OptLevel::kBasic;

  TimingModel fast(separated);
  TimingModel slow(basic);
  EXPECT_GT(slow.BottleneckPeriod(24, 512), fast.BottleneckPeriod(24, 512));
  // Without separation the comparer carries the value too.
  EXPECT_EQ((2u + 1u) * (24 + 512), slow.ComparerPeriod(24, 512));
}

TEST(TimingModelTest, SpeedGrowsWithValueLength) {
  EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;
  TimingModel model(config);
  double prev = 0;
  for (uint64_t value_len : {64, 128, 256, 512, 1024, 2048}) {
    double speed = model.PredictSpeedMBps(24, value_len);
    EXPECT_GT(speed, prev) << value_len;
    prev = speed;
  }
}

TEST(TimingModelTest, WiderValuePathIsNeverSlower) {
  for (uint64_t value_len : {64, 256, 1024, 2048}) {
    double prev = 0;
    for (int v : {8, 16, 32, 64}) {
      EngineConfig config;
      config.num_inputs = 2;
      config.value_width = v;
      double speed = TimingModel(config).PredictSpeedMBps(24, value_len);
      EXPECT_GE(speed, prev) << "V=" << v << " L=" << value_len;
      prev = speed;
    }
  }
}

TEST(TimingModelTest, PipelinedShardsPayOnlyTheSlowestStage) {
  EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;
  TimingModel model(config);

  const uint64_t records = 100000;
  const uint64_t key_len = 24;
  const uint64_t value_len = 512;
  const double kernel = model.PredictMicros(records, key_len, value_len);
  const double dma_in = 0.4 * kernel;
  const double dma_out = 0.3 * kernel;
  const double serial = dma_in + kernel + dma_out;

  // One shard has nothing to overlap with: the plain serial sum.
  EXPECT_DOUBLE_EQ(serial, model.PredictPipelinedMicros(
                               1, records, key_len, value_len, dma_in,
                               dma_out));

  // The kernel dominates here, so each extra shard costs one kernel:
  // its DMA hides under the neighbours' compute.
  for (int shards : {2, 4, 8}) {
    const double pipelined = model.PredictPipelinedMicros(
        shards, records, key_len, value_len, dma_in, dma_out);
    EXPECT_DOUBLE_EQ(serial + (shards - 1) * kernel, pipelined) << shards;
    EXPECT_LT(pipelined, shards * serial) << shards;
  }

  // When a transfer is the slowest stage it sets the steady-state beat
  // instead.
  const double big_in = 2.0 * kernel;
  EXPECT_DOUBLE_EQ(big_in + kernel + dma_out + 3 * big_in,
                   model.PredictPipelinedMicros(4, records, key_len,
                                                value_len, big_in, dma_out));

  // Degenerate shard counts never go negative.
  EXPECT_DOUBLE_EQ(0.0, model.PredictPipelinedMicros(
                            0, records, key_len, value_len, dma_in,
                            dma_out));
}

// Cross-check: the cycle-level simulator's steady-state rate must agree
// with the closed-form bottleneck period within pipeline fill/drain and
// DRAM overheads.
class TimingCrossCheckTest : public testing::TestWithParam<int> {};

TEST_P(TimingCrossCheckTest, SimulatorTracksAnalyticModel) {
  const int value_len = GetParam();
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;

  // Consecutive (non-interleaved) ranges: the merge drains input A
  // completely before touching input B, so a single decoder lane must
  // sustain the full record rate and the per-lane analytic bottleneck
  // binds. (With interleaved inputs each decoder gets N x slack and the
  // pipeline can outrun the single-lane decoder period.)
  const int n = 800;
  auto run_a = MakeRun("key", 0, n, 1, 1000, value_len);
  auto run_b = MakeRun("key", n, n, 1, 2000, value_len);

  DeviceInput in_a, in_b;
  ASSERT_TRUE(BuildDeviceInput(env.get(), options, {run_a}, 0, &in_a).ok());
  ASSERT_TRUE(BuildDeviceInput(env.get(), options, {run_b}, 1, &in_b).ok());

  DeviceOutput output;
  CompactionEngine engine(config, {&in_a, &in_b}, kNoSnapshot, true,
                          &output);
  ASSERT_TRUE(engine.Run().ok());

  // Keys here are 3 + 8 = 11 prefix + digits = "key%08d" = 11 user bytes
  // + 8 mark = 19 total.
  const uint64_t key_len = 11 + 8;
  TimingModel model(config);
  const double predicted_cycles =
      static_cast<double>(model.BottleneckPeriod(key_len, value_len)) *
      engine.stats().records_in;
  const double actual = static_cast<double>(engine.stats().cycles);

  // The simulator includes DRAM latency, fill/drain and block-boundary
  // effects, so it should be >= the ideal pipeline but within ~2x.
  EXPECT_GT(actual, 0.85 * predicted_cycles)
      << "sim " << actual << " vs model " << predicted_cycles;
  EXPECT_LT(actual, 2.0 * predicted_cycles)
      << "sim " << actual << " vs model " << predicted_cycles;
}

INSTANTIATE_TEST_SUITE_P(ValueLengths, TimingCrossCheckTest,
                         testing::Values(64, 256, 1024));

// The observed bottleneck attribution (obs telemetry: busy-cycle shares
// from the cycle simulator) must reproduce the analytic model's
// Comparer <-> Decoder crossover (paper Section V-D1): short values are
// comparer-bound, long values decoder-bound.
class BottleneckAttributionTest : public testing::TestWithParam<int> {};

TEST_P(BottleneckAttributionTest, MatchesAnalyticModelAcrossCrossover) {
  const int value_len = GetParam();
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;

  // Consecutive ranges: the merge drains one input at a time, so a
  // single decoder lane carries the record stream and the per-record
  // analytic periods apply directly (see TimingCrossCheckTest above).
  const int n = 800;
  auto run_a = MakeRun("key", 0, n, 1, 1000, value_len);
  auto run_b = MakeRun("key", n, n, 1, 2000, value_len);

  DeviceInput in_a, in_b;
  ASSERT_TRUE(BuildDeviceInput(env.get(), options, {run_a}, 0, &in_a).ok());
  ASSERT_TRUE(BuildDeviceInput(env.get(), options, {run_b}, 1, &in_b).ok());

  DeviceOutput output;
  CompactionEngine engine(config, {&in_a, &in_b}, kNoSnapshot, true,
                          &output);
  ASSERT_TRUE(engine.Run().ok());

  // num_lanes = 1 because only one lane is streaming at a time in this
  // shape (the other fills its FIFO and stalls on backpressure), so the
  // active lane's utilization is the meaningful decode share.
  BottleneckReport report = AttributeBottleneck(engine.stats(), 1);
  ASSERT_NE(nullptr, report.module);
  EXPECT_GT(report.share, 0.0);

  const uint64_t key_len = 11 + 8;  // "key%08d" user bytes + mark field.
  TimingModel model(config);
  Bottleneck analytic = model.BottleneckModule(key_len, value_len);
  const char* expected =
      analytic == Bottleneck::kDataBlockDecoder    ? "decoder"
      : analytic == Bottleneck::kComparer          ? "comparer"
      : analytic == Bottleneck::kKeyValueTransfer  ? "transfer"
                                                   : "encoder";
  EXPECT_STREQ(expected, report.module)
      << "value_len=" << value_len << " decoder=" << report.decoder_share
      << " comparer=" << report.comparer_share
      << " transfer=" << report.transfer_share
      << " encoder=" << report.encoder_share;

  // Sanity on the crossover itself: 64-byte values sit on the comparer
  // side, 1024-byte values on the decoder side (V = 16, N = 2).
  if (value_len == 64) {
    EXPECT_EQ(Bottleneck::kComparer, analytic);
  } else if (value_len == 1024) {
    EXPECT_EQ(Bottleneck::kDataBlockDecoder, analytic);
  }
}

INSTANTIATE_TEST_SUITE_P(ValueLengths, BottleneckAttributionTest,
                         testing::Values(64, 1024));

}  // namespace fpga
}  // namespace fcae
