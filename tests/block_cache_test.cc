// The optional block cache (Options::block_cache): cached blocks must be
// served without touching the file, evictions must bound memory, and the
// DB must behave identically with and without a cache.

#include <memory>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/table.h"
#include "table/table_builder.h"
#include "table/iterator.h"
#include "util/cache.h"
#include "util/env.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

/// Counts reads that hit the underlying file.
class CountingFile : public RandomAccessFile {
 public:
  CountingFile(RandomAccessFile* target, int* counter)
      : target_(target), counter_(counter) {}

  Status Read(uint64_t offset, size_t n, Slice* result,
              char* scratch) const override {
    (*counter_)++;
    return target_->Read(offset, n, result, scratch);
  }

 private:
  std::unique_ptr<RandomAccessFile> target_;
  int* counter_;
};

}  // namespace

class BlockCacheTest : public testing::Test {
 public:
  BlockCacheTest()
      : env_(NewMemEnv(Env::Default())), cache_(NewLRUCache(1 << 20)) {}

  void BuildTable(int entries) {
    Options options;
    options.env = env_.get();
    WritableFile* file;
    ASSERT_TRUE(env_->NewWritableFile("/t.ldb", &file).ok());
    {
      TableBuilder builder(options, file);
      for (int i = 0; i < entries; i++) {
        char key[16];
        std::snprintf(key, sizeof(key), "key%06d", i);
        builder.Add(key, std::string(100, 'v'));
      }
      ASSERT_TRUE(builder.Finish().ok());
    }
    ASSERT_TRUE(file->Close().ok());
    delete file;
  }

  Table* OpenTable(Cache* cache, int* read_counter) {
    uint64_t size;
    EXPECT_TRUE(env_->GetFileSize("/t.ldb", &size).ok());
    RandomAccessFile* raw;
    EXPECT_TRUE(env_->NewRandomAccessFile("/t.ldb", &raw).ok());
    file_ = std::make_unique<CountingFile>(raw, read_counter);

    Options options;
    options.env = env_.get();
    options.block_cache = cache;
    Table* table = nullptr;
    EXPECT_TRUE(Table::Open(options, file_.get(), size, &table).ok());
    return table;
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<Cache> cache_;
  std::unique_ptr<RandomAccessFile> file_;
  int reads_ = 0;
};

TEST_F(BlockCacheTest, RepeatScansHitCache) {
  BuildTable(2000);
  std::unique_ptr<Table> table(OpenTable(cache_.get(), &reads_));

  auto scan = [&]() {
    std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
    int n = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) n++;
    ASSERT_EQ(2000, n);
  };

  scan();
  const int cold_reads = reads_;
  ASSERT_GT(cold_reads, 5);  // Many data blocks were fetched.

  scan();
  // The warm scan must serve all data blocks from the cache.
  ASSERT_EQ(cold_reads, reads_);
}

TEST_F(BlockCacheTest, NoFillCacheLeavesCacheCold) {
  BuildTable(2000);
  std::unique_ptr<Table> table(OpenTable(cache_.get(), &reads_));

  ReadOptions no_fill;
  no_fill.fill_cache = false;
  {
    std::unique_ptr<Iterator> iter(table->NewIterator(no_fill));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  const int cold_reads = reads_;
  {
    std::unique_ptr<Iterator> iter(table->NewIterator(no_fill));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  // Second scan re-reads everything: nothing was cached.
  ASSERT_GT(reads_, cold_reads + 5);
}

TEST_F(BlockCacheTest, TinyCacheEvicts) {
  BuildTable(5000);
  std::unique_ptr<Cache> tiny(NewLRUCache(4096));  // Holds ~1 block.
  std::unique_ptr<Table> table(OpenTable(tiny.get(), &reads_));
  for (int round = 0; round < 2; round++) {
    std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    }
  }
  // Cache charge never exceeds capacity by much.
  ASSERT_LE(tiny->TotalCharge(), 4096u * 2);
}

TEST_F(BlockCacheTest, DbWithCacheMatchesDbWithout) {
  std::unique_ptr<Cache> cache(NewLRUCache(8 << 20));
  for (Cache* c : {cache.get(), static_cast<Cache*>(nullptr)}) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.block_cache = c;
    options.write_buffer_size = 64 * 1024;

    std::string name = c ? "/db_cached" : "/db_plain";
    DB* raw;
    ASSERT_TRUE(DB::Open(options, name, &raw).ok());
    std::unique_ptr<DB> db(raw);

    Random rnd(5);
    for (int i = 0; i < 2000; i++) {
      ASSERT_TRUE(db->Put(WriteOptions(), "k" + std::to_string(rnd.Uniform(500)),
                          std::string(200, 'x'))
                      .ok());
    }
    ASSERT_TRUE(
        reinterpret_cast<DBImpl*>(db.get())->TEST_CompactMemTable().ok());
    std::string value;
    int found = 0;
    for (int i = 0; i < 500; i++) {
      if (db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok()) {
        found++;
        ASSERT_EQ(200u, value.size());
      }
    }
    ASSERT_GT(found, 300);
  }
}

}  // namespace fcae
