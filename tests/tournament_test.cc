#include <map>
#include <memory>

#include "fpga/fault_injector.h"
#include "fpga/output_to_input.h"
#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {
namespace host {

using fpga_test::BuildDeviceInput;
using fpga_test::FlattenOutput;
using fpga_test::MakeRun;
using fpga_test::TestKv;

class TournamentTest : public testing::Test {
 public:
  TournamentTest() : env_(NewMemEnv(Env::Default())) {
    options_.env = env_.get();
  }

  /// Stages `k` runs of `n` records with distinct interleaved keys.
  std::vector<std::unique_ptr<fpga::DeviceInput>> StageRuns(int k, int n) {
    std::vector<std::unique_ptr<fpga::DeviceInput>> inputs;
    for (int i = 0; i < k; i++) {
      auto input = std::make_unique<fpga::DeviceInput>();
      auto run = MakeRun("key", i, n, k, 1000 * (i + 1), 64);
      EXPECT_TRUE(
          BuildDeviceInput(env_.get(), options_, {run}, i, input.get()).ok());
      inputs.push_back(std::move(input));
    }
    return inputs;
  }

  std::unique_ptr<Env> env_;
  Options options_;
};

TEST_F(TournamentTest, ConvertOutputToInputRoundTrips) {
  // Merge two runs, convert the output to an input, run a single-input
  // pass over it: contents must be preserved exactly.
  auto inputs = StageRuns(2, 300);
  fpga::EngineConfig config;
  config.num_inputs = 2;

  fpga::DeviceOutput first;
  {
    fpga::CompactionEngine engine(config, {inputs[0].get(), inputs[1].get()},
                                  kNoSnapshot, true, &first);
    ASSERT_TRUE(engine.Run().ok());
  }
  std::vector<std::pair<std::string, std::string>> expected;
  ASSERT_TRUE(FlattenOutput(first, &expected).ok());
  ASSERT_EQ(600u, expected.size());

  fpga::DeviceInput restaged;
  ASSERT_TRUE(fpga::ConvertOutputToInput(first, &restaged).ok());
  ASSERT_FALSE(restaged.sstables.empty());

  fpga::DeviceOutput second;
  {
    fpga::CompactionEngine engine(config, {&restaged}, kNoSnapshot, true,
                                  &second);
    ASSERT_TRUE(engine.Run().ok());
  }
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(second, &got).ok());
  ASSERT_EQ(expected, got);
}

TEST_F(TournamentTest, TournamentEqualsWideEngine) {
  // 7 runs merged by a 2-input device in tournament mode must equal a
  // 9-input device merging them in one pass.
  auto inputs = StageRuns(7, 150);
  std::vector<const fpga::DeviceInput*> ptrs;
  for (auto& in : inputs) ptrs.push_back(in.get());

  fpga::EngineConfig narrow;
  narrow.num_inputs = 2;
  FcaeDevice narrow_device(narrow);
  fpga::DeviceOutput tournament_out;
  DeviceRunStats tournament_stats;
  ASSERT_TRUE(narrow_device
                  .ExecuteTournament(ptrs, kNoSnapshot, true,
                                     &tournament_out, &tournament_stats)
                  .ok());

  fpga::EngineConfig wide;
  wide.num_inputs = 9;
  wide.input_width = 8;
  wide.value_width = 8;
  FcaeDevice wide_device(wide);
  fpga::DeviceOutput wide_out;
  DeviceRunStats wide_stats;
  ASSERT_TRUE(wide_device
                  .ExecuteCompaction(ptrs, kNoSnapshot, true, &wide_out,
                                     &wide_stats)
                  .ok());

  std::vector<std::pair<std::string, std::string>> a, b;
  ASSERT_TRUE(FlattenOutput(tournament_out, &a).ok());
  ASSERT_TRUE(FlattenOutput(wide_out, &b).ok());
  ASSERT_EQ(b, a);
  ASSERT_EQ(7u * 150u, a.size());

  // The tournament pays more kernel cycles (multiple passes).
  EXPECT_GT(tournament_stats.kernel_cycles, wide_stats.kernel_cycles);
}

TEST_F(TournamentTest, DeletionsSurviveIntermediatePasses) {
  // Deletion markers in one group must still erase values living in a
  // *different* group: intermediate passes must not drop them.
  auto deletions = MakeRun("key", 0, 120, 1, 9000, 0, kTypeDeletion);
  auto values_a = MakeRun("key", 0, 120, 1, 1000, 64);
  auto values_b = MakeRun("key", 0, 120, 1, 2000, 64);
  auto values_c = MakeRun("key", 0, 120, 1, 3000, 64);

  std::vector<std::unique_ptr<fpga::DeviceInput>> inputs;
  for (auto& run : {deletions, values_c, values_b, values_a}) {
    auto input = std::make_unique<fpga::DeviceInput>();
    ASSERT_TRUE(BuildDeviceInput(env_.get(), options_, {run},
                                 static_cast<int>(inputs.size()),
                                 input.get())
                    .ok());
    inputs.push_back(std::move(input));
  }
  std::vector<const fpga::DeviceInput*> ptrs;
  for (auto& in : inputs) ptrs.push_back(in.get());

  fpga::EngineConfig narrow;
  narrow.num_inputs = 2;  // Forces 2 tournament rounds over 4 inputs.
  FcaeDevice device(narrow);
  fpga::DeviceOutput out;
  DeviceRunStats stats;
  ASSERT_TRUE(
      device.ExecuteTournament(ptrs, kNoSnapshot, true, &out, &stats).ok());

  // Every key is deleted; the final pass may drop the markers.
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(out, &got).ok());
  EXPECT_TRUE(got.empty())
      << "a value resurrected through the tournament: " << got.size();
}

TEST_F(TournamentTest, DbWithTournamentExecutorMatchesCpuDb) {
  fpga::EngineConfig config;
  config.num_inputs = 2;  // L0 compactions exceed N: tournament kicks in.
  FcaeDevice device(config);
  FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  FcaeCompactionExecutor executor(&device, exec_options);

  auto open_db = [&](const std::string& name, CompactionExecutor* exec) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.compaction_executor = exec;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    return std::unique_ptr<DB>(db);
  };

  std::unique_ptr<DB> cpu_db = open_db("/t_cpu", nullptr);
  std::unique_ptr<DB> fcae_db = open_db("/t_fcae", &executor);

  Random rnd(11);
  WriteOptions wo;
  for (int i = 0; i < 3000; i++) {
    std::string key = "user" + std::to_string(rnd.Uniform(600));
    if (rnd.Uniform(10) < 8) {
      std::string value(64 + rnd.Uniform(128), static_cast<char>('a' + i % 26));
      ASSERT_TRUE(cpu_db->Put(wo, key, value).ok());
      ASSERT_TRUE(fcae_db->Put(wo, key, value).ok());
    } else {
      ASSERT_TRUE(cpu_db->Delete(wo, key).ok());
      ASSERT_TRUE(fcae_db->Delete(wo, key).ok());
    }
  }
  for (DB* db : {cpu_db.get(), fcae_db.get()}) {
    auto* impl = reinterpret_cast<DBImpl*>(db);
    impl->TEST_CompactMemTable().IgnoreError();  // device faults injected
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  std::unique_ptr<Iterator> a(cpu_db->NewIterator(ReadOptions()));
  std::unique_ptr<Iterator> b(fcae_db->NewIterator(ReadOptions()));
  a->SeekToFirst();
  b->SeekToFirst();
  while (a->Valid() && b->Valid()) {
    ASSERT_EQ(a->key().ToString(), b->key().ToString());
    ASSERT_EQ(a->value().ToString(), b->value().ToString());
    a->Next();
    b->Next();
  }
  ASSERT_FALSE(a->Valid());
  ASSERT_FALSE(b->Valid());

  // With N=2 and tournament scheduling on, everything offloads.
  auto* impl = reinterpret_cast<DBImpl*>(fcae_db.get());
  CompactionExecStats stats = impl->OffloadStats();
  EXPECT_GT(stats.device_cycles, 0u);
}

TEST_F(TournamentTest, IntermediatePassFaultFailsJobCleanly) {
  // Arm a one-shot fault on the SECOND kernel launch: with 7 runs and
  // N=2 that is an intermediate tournament pass. The whole job must
  // fail with the fault's status, hand back no partial output, and
  // leave no intermediate staging in device DRAM.
  auto inputs = StageRuns(7, 150);
  std::vector<const fpga::DeviceInput*> ptrs;
  for (auto& in : inputs) ptrs.push_back(in.get());

  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  fpga::DeviceFaultInjector injector(fpga::DeviceFaultConfig{});
  device.set_fault_injector(&injector);

  for (fpga::DeviceFaultClass cls :
       {fpga::DeviceFaultClass::kKernelTimeout,
        fpga::DeviceFaultClass::kDeviceBusy,
        fpga::DeviceFaultClass::kCardDropped}) {
    if (cls == fpga::DeviceFaultClass::kCardDropped) {
      injector.RepairCard();  // Undo a previous iteration's drop.
    }
    injector.ArmOneShot(cls, /*launches_from_now=*/2);

    fpga::DeviceOutput out;
    out.tables.emplace_back();  // Pre-existing garbage must be cleared.
    DeviceRunStats stats;
    Status s = device.ExecuteTournament(ptrs, kNoSnapshot, true, &out, &stats);
    ASSERT_FALSE(s.ok()) << DeviceFaultClassName(cls);
    switch (cls) {
      case fpga::DeviceFaultClass::kKernelTimeout:
        EXPECT_TRUE(s.IsIOError()) << s.ToString();
        break;
      case fpga::DeviceFaultClass::kDeviceBusy:
        EXPECT_TRUE(s.IsBusy()) << s.ToString();
        break;
      case fpga::DeviceFaultClass::kCardDropped:
        EXPECT_TRUE(s.IsDeviceLost()) << s.ToString();
        break;
      default:
        FAIL();
    }
    // No partial outputs escape a failed tournament.
    EXPECT_TRUE(out.tables.empty()) << DeviceFaultClassName(cls);
    // No leaked device DRAM staging: the intermediate of the completed
    // first pass was freed on the error path.
    EXPECT_EQ(0u, device.intermediate_dram_bytes()) << DeviceFaultClassName(cls);
    if (cls == fpga::DeviceFaultClass::kCardDropped) {
      injector.RepairCard();
    }
  }
  // Intermediates were actually staged before the faults hit.
  EXPECT_GT(device.intermediate_dram_peak_bytes(), 0u);

  // With the injector quiet again the same job succeeds: the failed
  // attempts left no residue that breaks a later run.
  fpga::DeviceOutput out;
  DeviceRunStats stats;
  ASSERT_TRUE(
      device.ExecuteTournament(ptrs, kNoSnapshot, true, &out, &stats).ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(FlattenOutput(out, &got).ok());
  EXPECT_EQ(7u * 150u, got.size());
  EXPECT_EQ(0u, device.intermediate_dram_bytes());
}

TEST_F(TournamentTest, FinalPassFaultHandsBackNothing) {
  // 4 runs, N=2: passes are (2 intermediates, 1 final) = 3 launches.
  // Fault the FINAL pass; the two intermediates completed and were
  // staged, yet the job must surface the error and clear the output.
  auto inputs = StageRuns(4, 100);
  std::vector<const fpga::DeviceInput*> ptrs;
  for (auto& in : inputs) ptrs.push_back(in.get());

  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  fpga::DeviceFaultInjector injector(fpga::DeviceFaultConfig{});
  device.set_fault_injector(&injector);
  injector.ArmOneShot(fpga::DeviceFaultClass::kKernelTimeout,
                      /*launches_from_now=*/3);

  fpga::DeviceOutput out;
  DeviceRunStats stats;
  Status s = device.ExecuteTournament(ptrs, kNoSnapshot, true, &out, &stats);
  ASSERT_TRUE(s.IsIOError()) << s.ToString();
  EXPECT_TRUE(out.tables.empty());
  EXPECT_EQ(0u, device.intermediate_dram_bytes());
  EXPECT_EQ(1u, injector.count(fpga::DeviceFaultClass::kKernelTimeout));
  EXPECT_EQ(3u, injector.launches());
}

TEST_F(TournamentTest, SingleGroupFallsThroughToOnePass) {
  auto inputs = StageRuns(2, 100);
  std::vector<const fpga::DeviceInput*> ptrs = {inputs[0].get(),
                                                inputs[1].get()};
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);

  fpga::DeviceOutput tournament_out, direct_out;
  DeviceRunStats t_stats, d_stats;
  ASSERT_TRUE(device.ExecuteTournament(ptrs, kNoSnapshot, true,
                                       &tournament_out, &t_stats)
                  .ok());
  ASSERT_TRUE(device.ExecuteCompaction(ptrs, kNoSnapshot, true, &direct_out,
                                       &d_stats)
                  .ok());
  EXPECT_EQ(d_stats.kernel_cycles, t_stats.kernel_cycles);
  std::vector<std::pair<std::string, std::string>> a, b;
  ASSERT_TRUE(FlattenOutput(tournament_out, &a).ok());
  ASSERT_TRUE(FlattenOutput(direct_out, &b).ok());
  EXPECT_EQ(b, a);
}

}  // namespace host
}  // namespace fcae
