// Crash-consistency matrix: a CrashInjectionEnv wraps the in-memory Env
// and models strict POSIX durability (file data survives only up to the
// last Sync(); directory entries survive only once the parent dir was
// SyncDir'd). Named crash points inside the write/flush/compaction/
// manifest paths freeze the env mid-operation; the test then drops all
// unsynced state and reopens the DB on the crash image.
//
// Invariants checked after every simulated crash:
//   1. Every write acknowledged with sync=true is present.
//   2. The DB opens without repair and without error.
//   3. No temp files survive; a reopen reclaims orphan tables.
//   4. The reopened DB is writable and a further reopen is stable.
//
// The full randomized sweep (every known crash point x {sync,nosync} x
// {1,4} writer threads) runs when FCAE_CRASH_MATRIX_FULL=1 (the nightly
// job and the "stress" ctest configuration); a bounded single-threaded
// pass over every point runs in tier 1. FCAE_CRASH_SEED pins the seed.

#include "util/crash_env.h"

#include <atomic>
#include <cstdlib>
#include <memory>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {
namespace {

std::string MatrixKey(int thread, int i) {
  // Scatter the key space (multiplier coprime with 10^6, so i -> key is
  // a bijection): sequential inserts would produce non-overlapping L0
  // tables and every compaction would degenerate into a trivial move,
  // never exercising the merge/install/offload crash points.
  char buf[32];
  std::snprintf(buf, sizeof(buf), "t%02d-k%06d", thread,
                static_cast<int>((static_cast<uint64_t>(i) * 40503u) %
                                 1000000u));
  return buf;
}

std::string MatrixValue(int thread, int i) {
  std::string v = MatrixKey(thread, i) + "=";
  v.append(80, static_cast<char>('a' + (i % 26)));
  return v;
}

uint32_t MatrixSeed() {
  const char* s = std::getenv("FCAE_CRASH_SEED");
  if (s != nullptr && s[0] != '\0') {
    return static_cast<uint32_t>(std::strtoul(s, nullptr, 10));
  }
  return 0x5eedu;
}

bool FullMatrix() {
  const char* s = std::getenv("FCAE_CRASH_MATRIX_FULL");
  return s != nullptr && s[0] == '1';
}

}  // namespace

// ---------------------------------------------------------------------------
// CrashPointRegistry unit tests
// ---------------------------------------------------------------------------

TEST(CrashPointRegistryTest, ArmedPointFiresOnceAndSelfDisarms) {
  CrashPointRegistry* reg = CrashPointRegistry::Instance();
  reg->DisarmAll();

  int fired = 0;
  reg->Arm("test:point", 1, [&](const char*) { fired++; });
  ASSERT_TRUE(reg->IsArmed("test:point"));

  FCAE_CRASH_POINT("test:point");
  EXPECT_EQ(1, fired);
  EXPECT_FALSE(reg->IsArmed("test:point"));
  FCAE_CRASH_POINT("test:point");  // disarmed: no double fire
  EXPECT_EQ(1, fired);
}

TEST(CrashPointRegistryTest, HitCountArmsNthOccurrence) {
  CrashPointRegistry* reg = CrashPointRegistry::Instance();
  reg->DisarmAll();

  int fired = 0;
  reg->Arm("test:nth", 3, [&](const char*) { fired++; });
  FCAE_CRASH_POINT("test:nth");
  FCAE_CRASH_POINT("test:nth");
  EXPECT_EQ(0, fired);
  FCAE_CRASH_POINT("test:nth");
  EXPECT_EQ(1, fired);
}

TEST(CrashPointRegistryTest, HitCountingObservesUnarmedPoints) {
  CrashPointRegistry* reg = CrashPointRegistry::Instance();
  reg->DisarmAll();
  reg->ResetHitCounts();
  reg->EnableHitCounting(true);

  FCAE_CRASH_POINT("test:counted");
  FCAE_CRASH_POINT("test:counted");
  EXPECT_EQ(2u, reg->HitCount("test:counted"));
  EXPECT_EQ(0u, reg->HitCount("test:never"));

  reg->EnableHitCounting(false);
  reg->ResetHitCounts();
}

// ---------------------------------------------------------------------------
// CrashInjectionEnv unit tests
// ---------------------------------------------------------------------------

class CrashEnvTest : public testing::Test {
 public:
  CrashEnvTest()
      : base_(NewMemEnv(Env::Default())), env_(base_.get()), dir_("/crash") {
    EXPECT_TRUE(env_.CreateDir(dir_).ok());
  }

  Status WriteAndSync(const std::string& fname, const std::string& data) {
    WritableFile* f = nullptr;
    Status s = env_.NewWritableFile(fname, &f);
    if (!s.ok()) return s;
    s = f->Append(data);
    if (s.ok()) s = f->Sync();
    Status c = f->Close();
    delete f;
    return s.ok() ? c : s;
  }

  std::unique_ptr<Env> base_;
  CrashInjectionEnv env_;
  std::string dir_;
};

TEST_F(CrashEnvTest, UnsyncedFileIsLostSyncedFileSurvives) {
  ASSERT_TRUE(WriteAndSync(dir_ + "/synced", "payload").ok());
  ASSERT_TRUE(env_.SyncDir(dir_).ok());

  WritableFile* f = nullptr;
  ASSERT_TRUE(env_.NewWritableFile(dir_ + "/unsynced", &f).ok());
  ASSERT_TRUE(f->Append("lost").ok());
  ASSERT_TRUE(f->Close().ok());
  delete f;

  env_.Crash();
  env_.ResetToDurableState();

  EXPECT_TRUE(env_.FileExists(dir_ + "/synced"));
  EXPECT_FALSE(env_.FileExists(dir_ + "/unsynced"));
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, dir_ + "/synced", &data).ok());
  EXPECT_EQ("payload", data);
}

TEST_F(CrashEnvTest, DataPastLastSyncIsTruncated) {
  WritableFile* f = nullptr;
  ASSERT_TRUE(env_.NewWritableFile(dir_ + "/partial", &f).ok());
  ASSERT_TRUE(f->Append("durable-").ok());
  ASSERT_TRUE(f->Sync().ok());
  ASSERT_TRUE(f->Append("volatile").ok());
  ASSERT_TRUE(f->Close().ok());
  delete f;
  ASSERT_TRUE(env_.SyncDir(dir_).ok());

  env_.Crash();
  env_.ResetToDurableState();

  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, dir_ + "/partial", &data).ok());
  EXPECT_EQ("durable-", data);
}

TEST_F(CrashEnvTest, UnsyncedDirectoryEntryLosesFileDespiteDataSync) {
  // File data fsync'd, but the dirent never was: POSIX loses the file.
  ASSERT_TRUE(WriteAndSync(dir_ + "/no_dirent", "data").ok());
  env_.Crash();
  env_.ResetToDurableState();
  EXPECT_FALSE(env_.FileExists(dir_ + "/no_dirent"));
}

TEST_F(CrashEnvTest, UnsyncedRenameRollsBack) {
  ASSERT_TRUE(WriteAndSync(dir_ + "/a", "v1").ok());
  ASSERT_TRUE(env_.SyncDir(dir_).ok());

  ASSERT_TRUE(env_.RenameFile(dir_ + "/a", dir_ + "/b").ok());
  EXPECT_TRUE(env_.FileExists(dir_ + "/b"));  // live view follows the op

  env_.Crash();
  env_.ResetToDurableState();

  // The rename never became durable: the old name is back.
  EXPECT_TRUE(env_.FileExists(dir_ + "/a"));
  EXPECT_FALSE(env_.FileExists(dir_ + "/b"));
}

TEST_F(CrashEnvTest, SyncedRenameSurvives) {
  ASSERT_TRUE(WriteAndSync(dir_ + "/a", "v1").ok());
  ASSERT_TRUE(env_.SyncDir(dir_).ok());
  ASSERT_TRUE(env_.RenameFile(dir_ + "/a", dir_ + "/b").ok());
  ASSERT_TRUE(env_.SyncDir(dir_).ok());

  env_.Crash();
  env_.ResetToDurableState();

  EXPECT_FALSE(env_.FileExists(dir_ + "/a"));
  EXPECT_TRUE(env_.FileExists(dir_ + "/b"));
}

TEST_F(CrashEnvTest, UnsyncedRemoveResurrectsFile) {
  ASSERT_TRUE(WriteAndSync(dir_ + "/zombie", "braaains").ok());
  ASSERT_TRUE(env_.SyncDir(dir_).ok());

  ASSERT_TRUE(env_.RemoveFile(dir_ + "/zombie").ok());
  EXPECT_FALSE(env_.FileExists(dir_ + "/zombie"));

  env_.Crash();
  env_.ResetToDurableState();

  // The unlink was never committed: the file is back. This is exactly
  // how orphan tables appear after a crash.
  EXPECT_TRUE(env_.FileExists(dir_ + "/zombie"));
  std::string data;
  ASSERT_TRUE(ReadFileToString(&env_, dir_ + "/zombie", &data).ok());
  EXPECT_EQ("braaains", data);
}

TEST_F(CrashEnvTest, FrozenEnvFailsMutationsAndStaleHandles) {
  WritableFile* f = nullptr;
  ASSERT_TRUE(env_.NewWritableFile(dir_ + "/f", &f).ok());
  env_.Crash();

  EXPECT_TRUE(f->Append("x").IsIOError());
  EXPECT_TRUE(f->Sync().IsIOError());
  delete f;

  WritableFile* g = nullptr;
  EXPECT_TRUE(env_.NewWritableFile(dir_ + "/g", &g).IsIOError());
  EXPECT_TRUE(env_.RemoveFile(dir_ + "/f").IsIOError());
  EXPECT_TRUE(env_.RenameFile(dir_ + "/f", dir_ + "/h").IsIOError());
  EXPECT_TRUE(env_.SyncDir(dir_).IsIOError());

  env_.ResetToDurableState();

  // Pre-crash handles stay dead even after the "reboot".
  ASSERT_TRUE(env_.NewWritableFile(dir_ + "/f2", &f).ok());
  ASSERT_TRUE(f->Append("ok").ok());
  ASSERT_TRUE(f->Sync().ok());
  delete f;
}

TEST_F(CrashEnvTest, SetWritesFailInjectsErrorsWithoutFreezing) {
  env_.SetWritesFail(true);
  WritableFile* f = nullptr;
  EXPECT_TRUE(env_.NewWritableFile(dir_ + "/nope", &f).IsIOError());
  env_.SetWritesFail(false);
  ASSERT_TRUE(env_.NewWritableFile(dir_ + "/yes", &f).ok());
  ASSERT_TRUE(f->Sync().ok());
  delete f;
}

// ---------------------------------------------------------------------------
// Crash matrix over the whole DB
// ---------------------------------------------------------------------------

namespace {

struct MatrixCase {
  std::string point;
  bool sync;
  int threads;
  bool offload;
};

// One crash round: open a DB on a fresh CrashInjectionEnv, arm a single
// point, write until the crash fires (or a generous bound), then drop
// unsynced state, reopen, and check every recovery invariant.
void RunCrashRound(const MatrixCase& c, uint32_t seed) {
  SCOPED_TRACE("point=" + c.point + " sync=" + (c.sync ? "1" : "0") +
               " threads=" + std::to_string(c.threads) +
               " offload=" + (c.offload ? "1" : "0") +
               " seed=" + std::to_string(seed));

  std::unique_ptr<Env> base(NewMemEnv(Env::Default()));
  CrashInjectionEnv env(base.get());
  const std::string dbname = "/crashdb";

  std::unique_ptr<host::FcaeDevice> device;
  std::unique_ptr<host::FcaeCompactionExecutor> executor;
  if (c.offload) {
    fpga::EngineConfig config;
    config.num_inputs = 9;
    device = std::make_unique<host::FcaeDevice>(config);
    host::FcaeExecutorOptions exec_options;
    exec_options.tournament_scheduling = true;  // accept any input count
    executor = std::make_unique<host::FcaeCompactionExecutor>(device.get(),
                                                              exec_options);
  }

  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.write_buffer_size = 16 * 1024;      // frequent flushes
  options.max_manifest_file_size = 4 * 1024;  // frequent rollovers
  options.compaction_threads = 2;
  options.max_subcompactions = 4;
  options.compaction_executor = executor.get();

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, dbname, &raw).ok());
  std::unique_ptr<DB> db(raw);

  Random rnd(seed);
  // CURRENT switches only happen on manifest rollover — once or twice
  // per round (write_buffer_size is floored at 64 KB by the DB, so
  // flushes, and with them manifest appends, are less frequent than the
  // workload suggests). Always take their first occurrence; randomize
  // the hit for the frequently-hit points.
  const bool rare = c.point == "current:after_tmp_write" ||
                    c.point == "current:after_rename";
  const int arm_hit = rare ? 1 : 1 + static_cast<int>(rnd.Uniform(3));
  env.ArmCrashPoint(c.point, arm_hit);

  // Each thread records the keys whose sync=true Put was acknowledged;
  // only those are guaranteed to survive the crash.
  std::vector<std::vector<int>> acked(c.threads);
  std::vector<std::thread> writers;
  constexpr int kMaxWritesPerThread = 60000;
  for (int t = 0; t < c.threads; t++) {
    writers.emplace_back([&, t]() {
      WriteOptions wo;
      wo.sync = c.sync;
      for (int i = 0; i < kMaxWritesPerThread && !env.crashed(); i++) {
        Status s = db->Put(wo, MatrixKey(t, i), MatrixValue(t, i));
        if (!s.ok()) break;  // env frozen or writes wedged: stop
        if (c.sync) acked[t].push_back(i);
      }
    });
  }
  for (auto& th : writers) th.join();

  const bool crashed = env.crashed();
  db.reset();  // close on the frozen env; background work drains
  CrashPointRegistry::Instance()->DisarmAll();

  // Every point in the matrix must actually be reachable in the round
  // configured for it, or the matrix silently tests nothing.
  size_t total_acked = 0;
  for (const auto& a : acked) total_acked += a.size();
  EXPECT_TRUE(crashed) << "crash point never fired: " << c.point
                       << " (acked=" << total_acked << ")";
  if (crashed) {
    env.ResetToDurableState();
  }

  // Reopen on the crash image: recovery only, no repair, no executor.
  options.compaction_executor = nullptr;
  raw = nullptr;
  ASSERT_TRUE(DB::Open(options, dbname, &raw).ok());
  db.reset(raw);

  // 1. Every acknowledged synced write survived.
  for (int t = 0; t < c.threads; t++) {
    for (int i : acked[t]) {
      std::string value;
      Status s = db->Get(ReadOptions(), MatrixKey(t, i), &value);
      ASSERT_TRUE(s.ok()) << "lost acked key " << MatrixKey(t, i) << ": "
                          << s.ToString();
      ASSERT_EQ(MatrixValue(t, i), value);
    }
  }

  // 2. No temp files survive recovery, and every table on disk is
  //    referenced by the live version (reopen reclaimed all orphans).
  //    Background compactions restarted by the reopen may briefly hold
  //    unreferenced in-flight outputs, so poll until the DB quiesces.
  std::string unexplained;
  for (int attempt = 0; attempt < 500; attempt++) {
    // Snapshot disk first, references second: a table installed between
    // the two reads only shrinks the unexplained set, never hides an
    // orphan (crash orphans can never become referenced).
    std::vector<std::string> children;
    ASSERT_TRUE(env.GetChildren(dbname, &children).ok());
    std::set<uint64_t> referenced;
    std::string sstables;
    ASSERT_TRUE(db->GetProperty("fcae.sstables", &sstables));
    // Version::DebugString lists files as " <number>:<size>[...".
    size_t pos = 0;
    while ((pos = sstables.find(':', pos)) != std::string::npos) {
      size_t start = sstables.rfind(' ', pos);
      if (start != std::string::npos && start + 1 < pos) {
        referenced.insert(
            std::strtoull(sstables.c_str() + start + 1, nullptr, 10));
      }
      pos++;
    }
    unexplained.clear();
    for (const std::string& child : children) {
      uint64_t number;
      FileType type;
      if (!ParseFileName(child, &number, &type)) continue;
      ASSERT_NE(FileType::kTempFile, type) << "temp file survived: " << child;
      if (type == FileType::kTableFile &&
          referenced.find(number) == referenced.end()) {
        unexplained += child + " ";
      }
    }
    if (unexplained.empty()) break;
    env.SleepForMicroseconds(10 * 1000);
    // Obsolete files pinned by an in-flight version reference at the
    // moment of the last GC pass linger until the next one; run a pass
    // so quiescence converges instead of depending on workload timing.
    reinterpret_cast<DBImpl*>(db.get())->TEST_RemoveObsoleteFiles();
  }
  EXPECT_TRUE(unexplained.empty())
      << "orphan tables survived recovery: " << unexplained;

  // 3. The recovered DB accepts writes and serves them.
  ASSERT_TRUE(db->Put(WriteOptions(), "post-crash", "alive").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "post-crash", &value).ok());
  ASSERT_EQ("alive", value);

  // 4. A second reopen is stable (recovery did not corrupt anything).
  db.reset();
  raw = nullptr;
  ASSERT_TRUE(DB::Open(options, dbname, &raw).ok());
  db.reset(raw);
  ASSERT_TRUE(db->Get(ReadOptions(), "post-crash", &value).ok());
  ASSERT_EQ("alive", value);
}

std::vector<MatrixCase> BuildMatrix(bool full) {
  std::vector<MatrixCase> cases;
  for (const std::string& point : CrashPointRegistry::KnownPoints()) {
    const bool offload = point == "offload:after_device_write";
    if (full) {
      for (bool sync : {true, false}) {
        for (int threads : {1, 4}) {
          cases.push_back(MatrixCase{point, sync, threads, offload});
        }
      }
    } else {
      // Tier 1: one synced single-writer round per point, plus one
      // multi-writer round for the concurrency-sensitive install paths.
      cases.push_back(MatrixCase{point, true, 1, offload});
      if (point == "shard:between_installs" ||
          point == "scheduler:manifest_locked") {
        cases.push_back(MatrixCase{point, true, 4, offload});
      }
    }
  }
  return cases;
}

}  // namespace

TEST(CrashMatrixTest, SyncedWritesSurviveEveryCrashPoint) {
  const uint32_t seed = MatrixSeed();
  const bool full = FullMatrix();
  // The seed is printed so a failing nightly run can be replayed with
  // FCAE_CRASH_SEED=<seed> FCAE_CRASH_MATRIX_FULL=1.
  std::fprintf(stderr, "crash-matrix: seed=%u full=%d\n", seed, full ? 1 : 0);

  uint32_t round = 0;
  for (const MatrixCase& c : BuildMatrix(full)) {
    RunCrashRound(c, seed + round);
    if (testing::Test::HasFatalFailure()) return;
    round++;
  }
}

// ---------------------------------------------------------------------------
// Background-error state machine
// ---------------------------------------------------------------------------

TEST(BackgroundErrorTest, SoftErrorThenResumeRestoresService) {
  std::unique_ptr<Env> base(NewMemEnv(Env::Default()));
  CrashInjectionEnv env(base.get());
  obs::MetricsRegistry metrics;

  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.write_buffer_size = 32 * 1024;
  options.metrics_registry = &metrics;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/softdb", &raw).ok());
  std::unique_ptr<DB> db(raw);
  auto* impl = reinterpret_cast<DBImpl*>(db.get());

  // Healthy DB: Resume is a no-op.
  ASSERT_TRUE(db->Resume().ok());

  // Make Sync() fail (creates and appends still work, so the foreground
  // write path stays alive) and force a flush: the background flush
  // fails with an IOError, which must classify as a *soft* background
  // error (retryable storage trouble, not corruption).
  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), MatrixKey(0, i), MatrixValue(0, i)).ok());
  }
  env.SetSyncsFail(true);
  Status flush = impl->TEST_CompactMemTable();
  EXPECT_FALSE(flush.ok());

  std::string bg;
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=soft")) << bg;
  EXPECT_GE(metrics.counter("db.bg_error.soft")->value(), 1u);

  // While storage is down, Resume keeps failing but never escalates.
  EXPECT_FALSE(db->Resume().ok());
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=soft")) << bg;

  // Storage comes back: Resume durably installs a fresh manifest,
  // clears the error, and restarts background work. (Auto-resume with
  // bounded backoff may already have done this for us.)
  env.SetSyncsFail(false);
  ASSERT_TRUE(db->Resume().ok());
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=ok")) << bg;
  EXPECT_GE(metrics.counter("db.bg_error.resume_attempts")->value(), 1u);
  EXPECT_GE(metrics.counter("db.bg_error.resumes")->value(), 1u);

  // Service restored end to end: writes, reads, and compactions run.
  for (int i = 100; i < 200; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), MatrixKey(0, i), MatrixValue(0, i)).ok());
  }
  ASSERT_TRUE(impl->TEST_CompactMemTable().ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), MatrixKey(0, 150), &value).ok());
  ASSERT_EQ(MatrixValue(0, 150), value);
}

TEST(BackgroundErrorTest, AutoResumeRecoversWithoutManualIntervention) {
  std::unique_ptr<Env> base(NewMemEnv(Env::Default()));
  CrashInjectionEnv env(base.get());
  obs::MetricsRegistry metrics;

  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.write_buffer_size = 32 * 1024;
  options.metrics_registry = &metrics;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/autodb", &raw).ok());
  std::unique_ptr<DB> db(raw);
  auto* impl = reinterpret_cast<DBImpl*>(db.get());

  for (int i = 0; i < 100; i++) {
    ASSERT_TRUE(
        db->Put(WriteOptions(), MatrixKey(1, i), MatrixValue(1, i)).ok());
  }
  env.SetSyncsFail(true);
  EXPECT_FALSE(impl->TEST_CompactMemTable().ok());
  env.SetSyncsFail(false);  // storage heals immediately

  // The scheduled auto-resume (2 ms base backoff, 5 attempts) should
  // clear the soft error on its own; poll briefly, then fall back to a
  // manual Resume so the test cannot flake if all attempts raced the
  // healing above.
  std::string bg;
  bool recovered = false;
  for (int i = 0; i < 200 && !recovered; i++) {
    ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
    recovered = bg.find("state=ok") != std::string::npos;
    if (!recovered) env.SleepForMicroseconds(2000);
  }
  EXPECT_GE(metrics.counter("db.bg_error.resume_attempts")->value(), 1u)
      << "auto-resume never ran";
  if (!recovered) {
    ASSERT_TRUE(db->Resume().ok());
  }
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=ok")) << bg;
  ASSERT_TRUE(db->Put(WriteOptions(), "healed", "yes").ok());
}

TEST(BackgroundErrorTest, BgErrorWakesStalledWriter) {
  // A writer parked in MakeRoomForWrite (waiting on an immutable-memtable
  // flush or sleeping off a controller delay) must be woken the moment a
  // background error lands, and must see that error instead of stalling
  // against a pipeline that will never drain. The assertion here is
  // promptness: if the wakeup is missing, the writer thread never
  // finishes and the test times out.
  std::unique_ptr<Env> base(NewMemEnv(Env::Default()));
  CrashInjectionEnv env(base.get());
  obs::MetricsRegistry metrics;

  Options options;
  options.env = &env;
  options.create_if_missing = true;
  options.write_buffer_size = 4 * 1024;  // Constant flush pressure.
  options.metrics_registry = &metrics;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/wakedb", &raw).ok());
  std::unique_ptr<DB> db(raw);

  env.SetSyncsFail(true);
  std::atomic<bool> writer_saw_error{false};
  std::thread writer([&]() {
    // Each value is a quarter of the buffer: rotations and flushes fire
    // immediately, the flushes fail on Sync, and some Put lands in the
    // imm-wait (or delay) path when the error is recorded.
    std::string value(1024, 'e');
    for (int i = 0; i < 500; i++) {
      Status s = db->Put(WriteOptions(), MatrixKey(2, i), value);
      if (!s.ok()) {
        writer_saw_error.store(true);
        return;
      }
    }
  });
  writer.join();
  EXPECT_TRUE(writer_saw_error.load())
      << "writer outran 500 puts without ever seeing the background error";

  std::string bg;
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=soft")) << bg;

  // Healing and resuming restores write service for the same writer.
  env.SetSyncsFail(false);
  ASSERT_TRUE(db->Resume().ok());
  ASSERT_TRUE(db->GetProperty("fcae.background-error", &bg));
  EXPECT_NE(std::string::npos, bg.find("state=ok")) << bg;
  ASSERT_TRUE(db->Put(WriteOptions(), "awake", "yes").ok());
  std::string value;
  ASSERT_TRUE(db->Get(ReadOptions(), "awake", &value).ok());
  EXPECT_EQ("yes", value);
}

}  // namespace fcae
