#include "syssim/simulator.h"

#include "gtest/gtest.h"
#include "obs/metrics.h"
#include "obs/trace.h"

namespace fcae {
namespace syssim {

namespace {

SimConfig CpuConfig(uint64_t value_len) {
  SimConfig config;
  config.mode = ExecMode::kLevelDbCpu;
  config.value_length = value_len;
  return config;
}

SimConfig FcaeConfig(uint64_t value_len, int n = 2, int v = 16) {
  SimConfig config;
  config.mode = ExecMode::kLevelDbFcae;
  config.value_length = value_len;
  config.engine.num_inputs = n;
  config.engine.value_width = v;
  if (n > 2) config.engine.input_width = 8;
  return config;
}

}  // namespace

TEST(CostModelTest, PaperTableVAnchors) {
  CostModel m = CostModel::PaperCalibrated();
  // Exact Table V anchor points.
  EXPECT_NEAR(5.3, m.CpuCompactionMBps(2, 16, 64), 0.01);
  EXPECT_NEAR(12.2, m.CpuCompactionMBps(2, 16, 512), 0.01);
  fpga::EngineConfig e;
  e.num_inputs = 2;
  e.value_width = 16;
  EXPECT_NEAR(627.9, m.FpgaCompactionMBps(e, 16, 512), 0.1);
  e.value_width = 64;
  EXPECT_NEAR(1205.6, m.FpgaCompactionMBps(e, 16, 2048), 0.1);
}

TEST(CostModelTest, NineInputEngineIsSlowerButCpuSlowsMore) {
  CostModel m = CostModel::PaperCalibrated();
  fpga::EngineConfig two;
  two.num_inputs = 2;
  two.value_width = 8;
  fpga::EngineConfig nine = two;
  nine.num_inputs = 9;
  nine.input_width = 8;

  for (uint64_t value : {64, 512, 2048}) {
    const double f2 = m.FpgaCompactionMBps(two, 16, value);
    const double f9 = m.FpgaCompactionMBps(nine, 16, value);
    EXPECT_LT(f9, f2) << value;
    // Acceleration ratio vs the CPU baseline grows with N (Fig. 13):
    const double c2 = m.CpuCompactionMBps(2, 16, value);
    const double c9 = m.CpuCompactionMBps(9, 16, value);
    EXPECT_GT(f9 / c9, 0.8 * f2 / c2) << value;
  }
  // The 2-vs-9 gap narrows with value length (Fig. 12).
  const double gap64 = m.FpgaCompactionMBps(nine, 16, 64) /
                       m.FpgaCompactionMBps(two, 16, 64);
  const double gap2048 = m.FpgaCompactionMBps(nine, 16, 2048) /
                         m.FpgaCompactionMBps(two, 16, 2048);
  EXPECT_LT(gap64, gap2048);
}

TEST(CostModelTest, FrontendSlowerForSmallValues) {
  CostModel m = CostModel::PaperCalibrated();
  EXPECT_LT(m.FrontendMBps(16, 64), m.FrontendMBps(16, 512));
  EXPECT_LT(m.FrontendMBps(16, 512), m.FrontendMBps(16, 2048));
}

TEST(SimulatorTest, FcaeBeatsCpuOnWrites) {
  for (uint64_t value : {128, 512, 1024}) {
    const double bytes = 2e8;
    SimResult cpu = Simulator(CpuConfig(value)).RunFillRandom(bytes);
    SimResult fcae = Simulator(FcaeConfig(value)).RunFillRandom(bytes);
    EXPECT_GT(fcae.throughput_mbps, cpu.throughput_mbps * 1.5) << value;
    EXPECT_GT(cpu.throughput_mbps, 0.5) << value;
    EXPECT_LT(fcae.throughput_mbps, 50.0) << value;
  }
}

TEST(SimulatorTest, ThroughputDegradesWithDataSize) {
  double prev_cpu = 1e9;
  double prev_fcae = 1e9;
  for (double gb : {0.2, 0.5, 1.0, 2.0}) {
    SimResult cpu = Simulator(CpuConfig(512)).RunFillRandom(gb * 1e9);
    SimResult fcae = Simulator(FcaeConfig(512)).RunFillRandom(gb * 1e9);
    EXPECT_LT(cpu.throughput_mbps, prev_cpu * 1.02) << gb;
    EXPECT_LT(fcae.throughput_mbps, prev_fcae * 1.02) << gb;
    prev_cpu = cpu.throughput_mbps;
    prev_fcae = fcae.throughput_mbps;
  }
}

TEST(SimulatorTest, AccountingIsConsistent) {
  SimResult r = Simulator(FcaeConfig(512)).RunFillRandom(3e8);
  EXPECT_GT(r.elapsed_seconds, 0);
  EXPECT_NEAR(3e8, r.user_bytes, 1e6);
  EXPECT_GT(r.flushes, 50u);  // 300 MB / 4 MB memtables.
  EXPECT_GT(r.compactions, 10u);
  EXPECT_EQ(r.compactions, r.compactions_offloaded + r.compactions_sw);
  EXPECT_GT(r.compactions_offloaded, 0u);
  EXPECT_GT(r.WriteAmplification(), 1.5);
  EXPECT_LT(r.WriteAmplification(), 40.0);
  EXPECT_GT(r.PciePercent(), 0.0);
  EXPECT_LT(r.PciePercent(), 15.0);  // Table VIII: transfers are minor.
  EXPECT_GT(r.device_seconds, 0.0);
}

TEST(SimulatorTest, CpuModeNeverTouchesDevice) {
  SimResult r = Simulator(CpuConfig(512)).RunFillRandom(2e8);
  EXPECT_EQ(0u, r.compactions_offloaded);
  EXPECT_EQ(0.0, r.device_seconds);
  EXPECT_EQ(0.0, r.pcie_seconds);
  EXPECT_GT(r.cpu_compaction_seconds, 0.0);
}

TEST(SimulatorTest, StrictPolicyFallsBackToSoftware) {
  SimConfig config = FcaeConfig(512, /*n=*/2);
  config.multipass_offload = false;  // Strict Fig. 6 policy.
  SimResult r = Simulator(config).RunFillRandom(2e8);
  // Level-0 compactions need >2 inputs: must run on the CPU.
  EXPECT_GT(r.compactions_sw, 0u);
  // Deep-level (2-input) jobs still offload.
  EXPECT_GT(r.compactions_offloaded, 0u);

  // The strict policy is slower than the tournament scheduler.
  SimConfig multipass = FcaeConfig(512, 2);
  SimResult m = Simulator(multipass).RunFillRandom(2e8);
  EXPECT_GE(m.throughput_mbps, r.throughput_mbps);
}

TEST(SimulatorTest, NineInputEngineOffloadsEverythingStrictly) {
  SimConfig config = FcaeConfig(512, /*n=*/9, /*v=*/8);
  config.multipass_offload = false;
  SimResult r = Simulator(config).RunFillRandom(2e8);
  // L0 jobs need at most 9 inputs under the stop trigger of 12... most
  // should offload; software fallback stays rare.
  EXPECT_GT(r.compactions_offloaded, r.compactions_sw * 3);
}

TEST(SimulatorTest, WiderValuePathNeverHurts) {
  double prev = 0;
  for (int v : {8, 16, 32, 64}) {
    SimResult r = Simulator(FcaeConfig(2048, 2, v)).RunFillRandom(3e8);
    EXPECT_GE(r.throughput_mbps, prev * 0.98) << v;
    prev = r.throughput_mbps;
  }
}

TEST(SimulatorTest, NearStorageBeatsPcieAttached) {
  // Paper Section VII-E: moving the engine into the SSD removes the
  // host staging I/O and the DMA round trip, so ingest should not get
  // worse — and typically improves (the shared host core is freed).
  SimConfig pcie = FcaeConfig(512, 9, 8);
  SimConfig near = pcie;
  near.near_storage = true;
  SimResult a = Simulator(pcie).RunFillRandom(5e8);
  SimResult b = Simulator(near).RunFillRandom(5e8);
  EXPECT_GE(b.throughput_mbps, a.throughput_mbps * 0.98);
  EXPECT_EQ(0.0, b.pcie_seconds);
  EXPECT_GT(b.compactions_offloaded, 0u);
}

TEST(SimulatorTest, PipelinedDmaOverlapIsAccounted) {
  // Enough in-flight jobs that shards queue behind each other's
  // kernels. Under the Simulated() preset the unseparated (kBasic)
  // engine merges far slower than the 320 MB/s staging reads, so the
  // card stays busy and a backlog forms — with the paper-calibrated
  // separated engine the kernel outruns the single staging core and the
  // FIFO lane never fills.
  SimConfig off = FcaeConfig(512, 9, 8);
  off.cost = CostModel::Simulated();
  off.engine.opt_level = fpga::OptLevel::kBasic;
  off.compaction_threads = 4;
  off.leveling_ratio = 3;  // Populate deep levels: disjoint-level jobs coexist.
  off.pipelined_dma = false;
  SimConfig on = off;
  on.pipelined_dma = true;
  SimResult a = Simulator(off).RunFillRandom(3e8);
  SimResult b = Simulator(on).RunFillRandom(3e8);

  EXPECT_EQ(0.0, a.pipeline_overlap_seconds);
  EXPECT_GT(b.pipeline_overlap_seconds, 0.0);
  // The hidden inbound bursts still cross the bus: DMA accounting keeps
  // them; only the serialized card occupancy shrinks.
  EXPECT_GT(b.pcie_seconds, 0.0);
  EXPECT_LE(b.elapsed_seconds, a.elapsed_seconds * 1.001);
  // One card never contends with itself on the shared bus.
  EXPECT_EQ(0.0, a.bus_contention_seconds);
  EXPECT_EQ(0.0, b.bus_contention_seconds);
}

TEST(SimulatorTest, SecondCardDrainsTheKernelQueueButSharesTheBus) {
  // Slow (unseparated, Simulated-preset) kernels make the card the
  // bottleneck, so a backlog forms at one card and the second one has
  // real work to take.
  SimConfig one = FcaeConfig(512, 9, 8);
  one.cost = CostModel::Simulated();
  one.engine.opt_level = fpga::OptLevel::kBasic;
  one.compaction_threads = 4;
  one.leveling_ratio = 3;
  SimConfig two = one;
  two.num_cards = 2;
  SimResult a = Simulator(one).RunFillRandom(3e8);
  SimResult b = Simulator(two).RunFillRandom(3e8);

  // Queueing must exist at one card for the comparison to mean much.
  EXPECT_GT(a.device_queue_seconds, 0.0);
  // Least-queued placement over two lanes drains the FIFO backlog.
  EXPECT_LT(b.device_queue_seconds, a.device_queue_seconds);
  // Concurrent runs on sibling cards collide on the shared PCIe link.
  EXPECT_EQ(0.0, a.bus_contention_seconds);
  EXPECT_GT(b.bus_contention_seconds, 0.0);
  // The extra card never makes ingest worse.
  EXPECT_GE(b.throughput_mbps, a.throughput_mbps * 0.98);
  EXPECT_EQ(b.compactions, b.compactions_offloaded + b.compactions_sw);
}

TEST(SimulatorTest, MultiCardFaultRunStaysDeterministic) {
  SimConfig config = FcaeConfig(512, 9, 8);
  config.cost = CostModel::Simulated();
  config.engine.opt_level = fpga::OptLevel::kBasic;
  config.compaction_threads = 4;
  config.leveling_ratio = 3;
  config.num_cards = 2;
  config.device_fault_rate = 0.2;
  config.fault_seed = 33;
  SimResult a = Simulator(config).RunFillRandom(1e8);
  SimResult b = Simulator(config).RunFillRandom(1e8);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);
  EXPECT_DOUBLE_EQ(a.pipeline_overlap_seconds, b.pipeline_overlap_seconds);
  EXPECT_DOUBLE_EQ(a.bus_contention_seconds, b.bus_contention_seconds);
  EXPECT_EQ(a.compactions_retried, b.compactions_retried);
  EXPECT_EQ(a.compactions, a.compactions_offloaded + a.compactions_sw);
}

TEST(SimulatorTest, YcsbReadOnlyUnaffectedByDevice) {
  SimResult cpu =
      Simulator(CpuConfig(1024)).RunYcsb(workload::YcsbWorkload::kC,
                                         200000, 100000);
  SimResult fcae =
      Simulator(FcaeConfig(1024, 9, 8)).RunYcsb(workload::YcsbWorkload::kC,
                                                200000, 100000);
  // Paper Fig. 16: read-only workload C shows no degradation and no
  // gain (storage format unchanged).
  EXPECT_NEAR(1.0, fcae.throughput_kops / cpu.throughput_kops, 0.05);
}

TEST(SimulatorTest, YcsbSpeedupGrowsWithWriteRatio) {
  using W = workload::YcsbWorkload;
  auto speedup = [&](W w) {
    SimResult cpu = Simulator(CpuConfig(1024)).RunYcsb(w, 200000, 150000);
    SimResult fcae =
        Simulator(FcaeConfig(1024, 9, 8)).RunYcsb(w, 200000, 150000);
    return fcae.throughput_kops / cpu.throughput_kops;
  };
  const double load = speedup(W::kLoad);
  const double a = speedup(W::kA);
  const double b = speedup(W::kB);
  const double c = speedup(W::kC);
  EXPECT_GT(load, 1.5);           // Write-heavy gains the most.
  EXPECT_GT(a, b);                // 50% writes > 5% writes.
  EXPECT_GE(b, c * 0.95);         // Light writers >= read-only.
  EXPECT_NEAR(1.0, c, 0.05);      // Read-only unchanged.
}

TEST(SimulatorTest, FaultFreeRunHasNoRetryAccounting) {
  SimResult r = Simulator(FcaeConfig(512)).RunFillRandom(2e8);
  EXPECT_EQ(0u, r.compactions_retried);
  EXPECT_EQ(0u, r.compactions_fallback);
  EXPECT_EQ(0.0, r.fault_backoff_seconds);
  EXPECT_EQ(0.0, r.fault_wasted_device_seconds);
}

TEST(SimulatorTest, DeviceFaultsCostThroughputButNotCorrectness) {
  SimConfig faulty = FcaeConfig(512);
  faulty.device_fault_rate = 0.3;
  SimResult clean = Simulator(FcaeConfig(512)).RunFillRandom(2e8);
  SimResult r = Simulator(faulty).RunFillRandom(2e8);

  // At a 30% per-launch fault rate a 200 MB run must see retries.
  EXPECT_GT(r.compactions_retried, 0u);
  EXPECT_GT(r.fault_wasted_device_seconds, 0.0);
  EXPECT_GT(r.fault_backoff_seconds, 0.0);
  // Every compaction still completes, on the device or in software.
  EXPECT_EQ(r.compactions, r.compactions_offloaded + r.compactions_sw);
  // Wasted kernel time and backoff slow the run down, but not to zero.
  EXPECT_LT(r.throughput_mbps, clean.throughput_mbps);
  EXPECT_GT(r.throughput_mbps, 0.2 * clean.throughput_mbps);
}

TEST(SimulatorTest, RetryExhaustionFallsBackToSoftware) {
  SimConfig config = FcaeConfig(512);
  config.device_fault_rate = 0.6;
  config.device_retry_limit = 2;  // Two strikes and the CPU takes over.
  SimResult r = Simulator(config).RunFillRandom(2e8);
  EXPECT_GT(r.compactions_fallback, 0u);
  // Fallbacks run in software and are counted there, never double-counted.
  EXPECT_GE(r.compactions_sw, r.compactions_fallback);
  EXPECT_EQ(r.compactions, r.compactions_offloaded + r.compactions_sw);
  EXPECT_GT(r.cpu_compaction_seconds, 0.0);
}

TEST(SimulatorTest, FaultStreamIsDeterministicInSeed) {
  SimConfig config = FcaeConfig(512);
  config.device_fault_rate = 0.25;
  config.fault_seed = 77;
  SimResult a = Simulator(config).RunFillRandom(1e8);
  SimResult b = Simulator(config).RunFillRandom(1e8);
  EXPECT_EQ(a.compactions_retried, b.compactions_retried);
  EXPECT_EQ(a.compactions_fallback, b.compactions_fallback);
  EXPECT_DOUBLE_EQ(a.elapsed_seconds, b.elapsed_seconds);

  config.fault_seed = 78;
  SimResult c = Simulator(config).RunFillRandom(1e8);
  EXPECT_TRUE(a.compactions_retried != c.compactions_retried ||
              a.elapsed_seconds != c.elapsed_seconds);
}

TEST(SimulatorTest, ObsSpansAndCountersMirrorTheResult) {
  obs::MetricsRegistry registry;
  obs::TraceRecorder trace(1 << 16);

  SimConfig config = FcaeConfig(512);
  config.device_fault_rate = 0.25;  // Force retries and fallbacks.
  config.fault_seed = 77;
  config.metrics = &registry;
  config.trace = &trace;
  SimResult r = Simulator(config).RunFillRandom(1e8);

  // Counters emitted at the same event as the result field agree
  // exactly.
  EXPECT_EQ(r.flushes, registry.counter("syssim.flushes")->value());
  EXPECT_EQ(r.compactions, registry.counter("syssim.compactions")->value());
  EXPECT_EQ(r.compactions_retried,
            registry.counter("syssim.compactions_retried")->value());
  EXPECT_EQ(r.compactions_fallback,
            registry.counter("syssim.compactions_fallback")->value());

  // The offloaded/sw split is counted in the result at pick time but in
  // the metrics at install time, so the run may end with one picked
  // compaction still in flight (never installed).
  const uint64_t off = registry.counter("syssim.compactions_offloaded")->value();
  const uint64_t sw = registry.counter("syssim.compactions_sw")->value();
  EXPECT_LE(off, r.compactions_offloaded);
  EXPECT_LE(sw, r.compactions_sw);
  EXPECT_LE((r.compactions_offloaded - off) + (r.compactions_sw - sw), 1u);
  EXPECT_GT(off, 0u);

  // Spans were emitted in simulated time and are tagged as such.
  EXPECT_GT(trace.size(), 0u);
  std::string json = trace.ToJson();
  EXPECT_NE(std::string::npos, json.find("\"flush\""));
  EXPECT_NE(std::string::npos, json.find("\"compaction\""));
  EXPECT_NE(std::string::npos, json.find("\"simulated\": true"));
  if (r.compactions_fallback > 0) {
    EXPECT_NE(std::string::npos, json.find("\"cpu_fallback\""));
  }
  if (r.compactions_retried > 0 || r.compactions_fallback > 0) {
    EXPECT_NE(std::string::npos, json.find("\"retry\""));
  }
}

}  // namespace syssim
}  // namespace fcae
