// Overload soak (stress tier): a writer pushes well past what the
// rate-limited background pipeline can absorb, and the backpressure
// stack must degrade gracefully — per-write delays ramp, compaction
// writeback throttles, foreground p99 stays bounded, and with the
// offload executor draining level 0 the DB never reaches a hard stop.

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "obs/metrics.h"
#include "util/env.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

double PercentileMicros(std::vector<uint64_t>* latencies, double pct) {
  if (latencies->empty()) return 0;
  const size_t idx = static_cast<size_t>(
      pct * static_cast<double>(latencies->size() - 1));
  std::nth_element(latencies->begin(), latencies->begin() + idx,
                   latencies->end());
  return static_cast<double>((*latencies)[idx]);
}

}  // namespace

TEST(OverloadSoakTest, SustainedOverloadDegradesGracefully) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 2;
  host::FcaeDevice device(engine_config);
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  obs::MetricsRegistry metrics;
  Options options;
  options.env = env.get();
  options.create_if_missing = true;
  options.write_buffer_size = 32 * 1024;
  options.compaction_executor = &executor;
  options.compaction_threads = 2;
  options.metrics_registry = &metrics;
  // A deliberately tight background budget: the workload's write
  // amplification pushes flush+compaction I/O well past it, so the
  // limiter must throttle and the write controller must shed load.
  options.rate_limit_bytes_per_sec = 4 * 1024 * 1024;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/overload-soak", &raw).ok());
  std::unique_ptr<DB> db(raw);

  constexpr int kWrites = 6000;
  Random rnd(20260808);
  std::string value(1000, 'v');
  std::vector<uint64_t> latencies;
  latencies.reserve(kWrites);
  Env* clock = Env::Default();
  for (int i = 0; i < kWrites; i++) {
    const std::string key =
        "soak-" + std::to_string(rnd.Uniform(4 * kWrites));
    const uint64_t start = clock->NowMicros();
    ASSERT_TRUE(db->Put(WriteOptions(), key, value).ok()) << i;
    latencies.push_back(clock->NowMicros() - start);
  }

  const uint64_t delayed = metrics.counter("wc.delayed_writes")->value();
  const uint64_t delay_micros = metrics.counter("wc.delay_micros")->value();
  const uint64_t stopped = metrics.counter("wc.stopped_writes")->value();
  const uint64_t throttled =
      metrics.counter("ratelimiter.throttled_bytes")->value();

  // Graceful degradation, not collapse: the delay ramp engaged ...
  EXPECT_GT(delayed, 0u);
  EXPECT_GT(delay_micros, 0u);
  // ... the background budget actually bit ...
  EXPECT_GT(throttled, 0u);
  // ... and load-shedding kept level 0 below the stop trigger for the
  // whole run: overload never escalated to a hard stall.
  EXPECT_EQ(0u, stopped);

  // Foreground p99 stays bounded by the controller's delay cap (20 ms)
  // plus generous scheduling slack — overload costs latency smoothly
  // instead of parking writers for entire compactions.
  const double p99 = PercentileMicros(&latencies, 0.99);
  EXPECT_GT(p99, 0.0);
  EXPECT_LT(p99, 100.0 * 1000) << "p99 micros unbounded under overload";

  // The metrics surface the bench gate reads is exported and sane.
  std::string json;
  ASSERT_TRUE(db->GetProperty("fcae.metrics", &json));
  EXPECT_NE(std::string::npos, json.find("wc.delayed_writes"));
  EXPECT_NE(std::string::npos, json.find("ratelimiter.throttled_bytes"));

  // Every acknowledged write is readable after the storm.
  std::string out;
  ASSERT_TRUE(db->Get(ReadOptions(), "soak-probe", &out).IsNotFound() ||
              !out.empty());
}

}  // namespace fcae
