// Unit and end-to-end tests of the multi-card offload layer: the
// shared PcieBus contention model, DeviceSet placement (least queued
// bytes, quarantine skipping, probe fallback), per-card fault seeds,
// the double-buffered DMA pipeline of FcaeDevice, and a two-card DB
// that must degrade gracefully when one card is quarantined.

#include <atomic>
#include <memory>
#include <thread>
#include <vector>

#include "fpga/fault_injector.h"
#include "fpga/pcie_bus.h"
#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "host/device_set.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {
namespace host {

using fpga_test::BuildDeviceInput;
using fpga_test::MakeRun;

// ---------------------------------------------------------------------
// PcieBus
// ---------------------------------------------------------------------

TEST(PcieBusTest, LoneCardNeverWaits) {
  fpga::PcieBus bus;
  bus.BeginJob(0);
  EXPECT_EQ(0.0, bus.ChargeIn(0, 100.0));
  EXPECT_EQ(0.0, bus.ChargeOut(0, 100.0));
  bus.EndJob(0);
  EXPECT_EQ(0u, bus.contended_bursts());
  EXPECT_EQ(0.0, bus.contention_micros());
}

TEST(PcieBusTest, ConcurrentCardsContend) {
  fpga::PcieBus bus;
  bus.BeginJob(0);
  bus.BeginJob(1);
  // Card 0 bursts first; nothing else has charged yet, so it is free.
  EXPECT_EQ(0.0, bus.ChargeIn(0, 100.0));
  // Card 1's burst collides with card 0's 100us already on the bus:
  // wait = min(own 40, others 100) = 40 (worst case 2x slowdown).
  EXPECT_EQ(40.0, bus.ChargeIn(1, 40.0));
  // A longer burst is capped at its own duration against the 100us.
  EXPECT_EQ(100.0, bus.ChargeIn(1, 250.0));
  // In and out are independent lanes (full duplex): the first outbound
  // burst sees no outbound history from the other card.
  EXPECT_EQ(0.0, bus.ChargeOut(1, 50.0));
  EXPECT_EQ(50.0, bus.ChargeOut(0, 80.0));
  bus.EndJob(0);
  bus.EndJob(1);
  EXPECT_EQ(3u, bus.contended_bursts());
  EXPECT_EQ(40.0 + 100.0 + 50.0, bus.contention_micros());
}

TEST(PcieBusTest, IdleCardHistoryResets) {
  fpga::PcieBus bus;
  bus.BeginJob(0);
  EXPECT_EQ(0.0, bus.ChargeIn(0, 500.0));
  bus.EndJob(0);
  // Card 0 went idle: its 500us must not inflate a later collision.
  bus.BeginJob(1);
  EXPECT_EQ(0.0, bus.ChargeIn(1, 100.0));
  bus.EndJob(1);
  EXPECT_EQ(0u, bus.contended_bursts());
}

// ---------------------------------------------------------------------
// DeviceSet placement
// ---------------------------------------------------------------------

TEST(DeviceSetTest, PickCardPrefersLeastQueuedBytes) {
  fpga::EngineConfig config;
  DeviceSet devices(config, /*num_cards=*/3);
  ASSERT_EQ(3, devices.num_cards());

  // All empty: ties break toward the lowest card id.
  EXPECT_EQ(0, devices.PickCard());

  devices.AddQueued(0, 300);
  devices.AddQueued(1, 100);
  EXPECT_EQ(2, devices.PickCard());  // Card 2 is idle.
  devices.AddQueued(2, 200);
  EXPECT_EQ(1, devices.PickCard());  // Now card 1 is lightest.
  devices.SubQueued(0, 300);
  EXPECT_EQ(0, devices.PickCard());
  EXPECT_EQ(0u, devices.queued_bytes(0));
}

TEST(DeviceSetTest, PickCardSkipsQuarantinedCard) {
  fpga::EngineConfig config;
  DeviceSet devices(config, /*num_cards=*/2);

  // Card 0 is idle (would win placement) but a sticky failure opens its
  // breaker: every job must flow to card 1.
  devices.monitor(0)->RecordJobFailure(/*sticky=*/true);
  ASSERT_TRUE(devices.monitor(0)->quarantined());
  devices.AddQueued(1, 1 << 20);
  for (int i = 0; i < 4; i++) {
    EXPECT_EQ(1, devices.PickCard());
  }
}

TEST(DeviceSetTest, AllQuarantinedFallsBackToProbes) {
  fpga::EngineConfig config;
  DeviceHealthOptions health;
  health.quarantine_threshold = 1;
  health.sticky_weight = 1;
  health.probe_interval = 3;
  DeviceSet devices(config, /*num_cards=*/2, fpga::PcieModel(), health);

  devices.monitor(0)->RecordJobFailure(/*sticky=*/true);
  devices.monitor(1)->RecordJobFailure(/*sticky=*/true);
  ASSERT_TRUE(devices.monitor(0)->quarantined());
  ASSERT_TRUE(devices.monitor(1)->quarantined());

  // Every breaker admits each probe_interval-th request. PickCard asks
  // the cards in order, so the denials interleave deterministically:
  // calls 1 (0:deny, 1:deny) and 2 (0:deny, 1:deny) return -1 — the
  // caller's CPU fallback; call 3 hits card 0's third request, which is
  // granted as a probe.
  EXPECT_EQ(-1, devices.PickCard());
  EXPECT_EQ(-1, devices.PickCard());
  EXPECT_EQ(0, devices.PickCard());
  EXPECT_EQ(1u, devices.monitor(0)->snapshot().probes);
  // A successful probe closes card 0's breaker; it wins placement again.
  devices.monitor(0)->RecordJobSuccess();
  EXPECT_FALSE(devices.monitor(0)->quarantined());
  EXPECT_EQ(0, devices.PickCard());
}

TEST(DeviceSetTest, PerCardFaultSeedsDiverge) {
  fpga::EngineConfig config;
  DeviceSet devices(config, /*num_cards=*/2);
  EXPECT_EQ(nullptr, devices.injector(0));

  fpga::DeviceFaultConfig base;
  base.seed = 4242;
  base.transient_rate = 0.5;
  devices.InjectFaults(base);
  ASSERT_NE(nullptr, devices.injector(0));
  ASSERT_NE(nullptr, devices.injector(1));

  // Card i draws from seed base.seed + i: the streams must not be the
  // same sequence (independent hardware fails independently).
  int diverged = 0;
  for (int i = 0; i < 64; i++) {
    fpga::FaultDecision d0 = devices.injector(0)->NextLaunch();
    fpga::FaultDecision d1 = devices.injector(1)->NextLaunch();
    if (d0.cls != d1.cls) diverged++;
  }
  EXPECT_GT(diverged, 0);
}

// ---------------------------------------------------------------------
// Pipelined DMA double-buffering
// ---------------------------------------------------------------------

class DevicePipelineTest : public testing::Test {
 public:
  DevicePipelineTest() : env_(NewMemEnv(Env::Default())) {
    options_.env = env_.get();
  }

  /// Two staged runs big enough that a kernel takes visible wall time.
  void BuildInputs() {
    for (int i = 0; i < 2; i++) {
      auto input = std::make_unique<fpga::DeviceInput>();
      auto run = MakeRun("key", i, 800, 2, 1000 * (i + 1), 96);
      ASSERT_TRUE(
          BuildDeviceInput(env_.get(), options_, {run}, i, input.get()).ok());
      inputs_.push_back(std::move(input));
    }
  }

  Status RunOneJob(FcaeDevice* device) {
    fpga::DeviceOutput output;
    DeviceRunStats stats;
    return device->ExecuteCompaction({inputs_[0].get(), inputs_[1].get()},
                                     kNoSnapshot, true, &output, &stats);
  }

  std::unique_ptr<Env> env_;
  Options options_;
  std::vector<std::unique_ptr<fpga::DeviceInput>> inputs_;
};

TEST_F(DevicePipelineTest, SerialJobsNeverOverlap) {
  BuildInputs();
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  for (int i = 0; i < 3; i++) {
    ASSERT_TRUE(RunOneJob(&device).ok());
  }
  // One caller, one job at a time: nothing arrives back-to-back, so the
  // double buffer has nothing to hide.
  EXPECT_EQ(0u, device.pipelined_jobs());
  EXPECT_EQ(0.0, device.total_dma_overlap_micros());
}

TEST_F(DevicePipelineTest, BackToBackJobsOverlapDmaWithCompute) {
  BuildInputs();
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);

  // Four submitters hammer one card; all but the first arrivals queue
  // on the device mutex and therefore run pipelined: their transfer-in
  // overlaps the predecessor's kernel.
  constexpr int kThreads = 4;
  constexpr int kJobsPerThread = 3;
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int t = 0; t < kThreads; t++) {
    threads.emplace_back([&]() {
      for (int j = 0; j < kJobsPerThread; j++) {
        if (!RunOneJob(&device).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(0, failures.load());
  EXPECT_EQ(static_cast<uint64_t>(kThreads * kJobsPerThread),
            device.kernels_launched());
  EXPECT_GT(device.pipelined_jobs(), 0u);
  EXPECT_GT(device.total_dma_overlap_micros(), 0.0);
}

TEST_F(DevicePipelineTest, ConcurrentCardsChargeBusContention) {
  BuildInputs();
  fpga::EngineConfig config;
  config.num_inputs = 2;
  DeviceSet devices(config, /*num_cards=*/2);

  // Both cards burst DMA on the shared bus at once; whenever the bursts
  // coincide the bus model charges contention to one of them.
  std::vector<std::thread> threads;
  std::atomic<int> failures{0};
  for (int card = 0; card < 2; card++) {
    threads.emplace_back([&, card]() {
      for (int j = 0; j < 6; j++) {
        if (!RunOneJob(devices.device(card)).ok()) failures.fetch_add(1);
      }
    });
  }
  for (std::thread& t : threads) t.join();

  ASSERT_EQ(0, failures.load());
  // Contention requires genuine wall-clock concurrency across cards, so
  // this is expected (not strictly guaranteed) under 6 jobs per card;
  // the deterministic arithmetic is covered by the PcieBusTest cases.
  EXPECT_GT(devices.bus()->contended_bursts(), 0u);
  double waits = devices.device(0)->total_bus_wait_micros() +
                 devices.device(1)->total_bus_wait_micros();
  EXPECT_NEAR(waits, devices.bus()->contention_micros(),
              1e-6 * (1.0 + waits));
}

// ---------------------------------------------------------------------
// Two-card DB end to end
// ---------------------------------------------------------------------

class MultiCardDbTest : public testing::Test {
 public:
  MultiCardDbTest() : env_(NewMemEnv(Env::Default())) {}

  std::unique_ptr<DB> OpenDb(const std::string& name,
                             CompactionExecutor* executor, int cards) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.compaction_executor = executor;
    options.compaction_threads = 4;
    options.num_offload_cards = cards;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    return std::unique_ptr<DB>(db);
  }

  void RunWorkload(DB* db) {
    Random rnd(1234);
    WriteOptions wo;
    for (int i = 0; i < 4000; i++) {
      std::string key = "user" + std::to_string(rnd.Uniform(900));
      if (rnd.Uniform(10) == 0) {
        ASSERT_TRUE(db->Delete(wo, key).ok());
      } else {
        ASSERT_TRUE(
            db->Put(wo, key, key + std::string(100, 'v')).ok());
      }
    }
    db->CompactRange(nullptr, nullptr);
  }

  std::vector<std::pair<std::string, std::string>> Dump(DB* db) {
    std::vector<std::pair<std::string, std::string>> out;
    std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
    for (it->SeekToFirst(); it->Valid(); it->Next()) {
      out.emplace_back(it->key().ToString(), it->value().ToString());
    }
    EXPECT_TRUE(it->status().ok());
    return out;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(MultiCardDbTest, TwoCardDbMatchesCpuDb) {
  fpga::EngineConfig config;
  config.num_inputs = 9;  // Lets level-0 compactions offload too.
  DeviceSet devices(config, /*num_cards=*/2);
  FcaeCompactionExecutor executor(&devices);

  std::unique_ptr<DB> cpu_db = OpenDb("/mc_cpu", nullptr, 1);
  std::unique_ptr<DB> mc_db = OpenDb("/mc_fpga", &executor, 2);
  RunWorkload(cpu_db.get());
  RunWorkload(mc_db.get());

  auto cpu_dump = Dump(cpu_db.get());
  auto mc_dump = Dump(mc_db.get());
  ASSERT_FALSE(cpu_dump.empty());
  EXPECT_TRUE(cpu_dump == mc_dump);

  // The set actually ran kernels, and every placement was balanced by
  // a matching un-queue when the job left its card.
  uint64_t kernels = devices.device(0)->kernels_launched() +
                     devices.device(1)->kernels_launched();
  EXPECT_GT(kernels, 0u);
  EXPECT_EQ(0u, devices.queued_bytes(0));
  EXPECT_EQ(0u, devices.queued_bytes(1));
}

TEST_F(MultiCardDbTest, QuarantinedCardIsAbsorbedByHealthySibling) {
  fpga::EngineConfig config;
  config.num_inputs = 9;
  DeviceSet devices(config, /*num_cards=*/2);
  FcaeCompactionExecutor executor(&devices);

  // Card 0 dies before the workload: its breaker opens and stays open
  // (no successful probe is possible — but no probe is even attempted,
  // since card 1 stays healthy and wins every placement).
  devices.monitor(0)->RecordJobFailure(/*sticky=*/true);
  ASSERT_TRUE(devices.monitor(0)->quarantined());

  std::unique_ptr<DB> db = OpenDb("/mc_degraded", &executor, 2);
  RunWorkload(db.get());

  auto dump = Dump(db.get());
  ASSERT_FALSE(dump.empty());

  // Graceful degradation: the healthy card absorbed every job — the
  // dead card ran nothing and the DB never fell back to CPU compaction
  // because the device path was "full".
  EXPECT_EQ(0u, devices.device(0)->kernels_launched());
  EXPECT_GT(devices.device(1)->kernels_launched(), 0u);
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  EXPECT_EQ(0, impl->FallbackCompactions());

  // And the contents are exactly what a CPU-only DB produces.
  std::unique_ptr<DB> cpu_db = OpenDb("/mc_degraded_cpu", nullptr, 1);
  RunWorkload(cpu_db.get());
  EXPECT_TRUE(Dump(cpu_db.get()) == dump);
}

}  // namespace host
}  // namespace fcae
