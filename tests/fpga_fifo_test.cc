#include "fpga/sim/fifo.h"

#include <string>

#include "gtest/gtest.h"

namespace fcae {
namespace fpga {

TEST(FifoTest, PushPopOrder) {
  Fifo<int> fifo(4);
  ASSERT_TRUE(fifo.Empty());
  ASSERT_TRUE(fifo.CanPush());
  ASSERT_FALSE(fifo.CanPop());

  fifo.Push(1);
  fifo.Push(2);
  fifo.Push(3);
  ASSERT_EQ(3u, fifo.size());
  ASSERT_EQ(1, fifo.Front());
  ASSERT_EQ(1, fifo.Pop());
  ASSERT_EQ(2, fifo.Pop());
  fifo.Push(4);
  ASSERT_EQ(3, fifo.Pop());
  ASSERT_EQ(4, fifo.Pop());
  ASSERT_TRUE(fifo.Empty());
}

TEST(FifoTest, CapacityBackpressure) {
  Fifo<int> fifo(2);
  fifo.Push(1);
  fifo.Push(2);
  ASSERT_TRUE(fifo.Full());
  ASSERT_FALSE(fifo.CanPush());
  fifo.Pop();
  ASSERT_TRUE(fifo.CanPush());
}

TEST(FifoTest, HighWaterTracksPeakOccupancy) {
  Fifo<int> fifo(8);
  for (int i = 0; i < 5; i++) fifo.Push(i);
  for (int i = 0; i < 5; i++) fifo.Pop();
  fifo.Push(99);
  ASSERT_EQ(5u, fifo.HighWater());
}

TEST(FifoTest, MoveOnlyContents) {
  Fifo<std::unique_ptr<std::string>> fifo(2);
  fifo.Push(std::make_unique<std::string>("hello"));
  auto item = fifo.Pop();
  ASSERT_EQ("hello", *item);
}

}  // namespace fpga
}  // namespace fcae
