// Scrub-and-heal matrix (DESIGN.md §14): for tables produced by every
// install path — memtable flush, CPU compaction, offload-assembled —
// inject deterministic at-rest bit rot, run a scrub cycle, and require
// the full detect -> quarantine -> repair chain to complete without a
// hard background error and without losing a single acknowledged key.
//
// Tier-1 runs a bounded seed set; the `scrub_heal_matrix` stress
// registration sets FCAE_SCRUB_MATRIX_FULL=1 for a wider sweep.

#include <atomic>
#include <cstdlib>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "obs/event_listener.h"
#include "obs/metrics.h"
#include "table/iterator.h"
#include "util/corruption_env.h"
#include "util/env.h"
#include "util/mem_env.h"

namespace fcae {

namespace {

// Which install path built the table under attack.
enum class TableSource { kFlush, kCompacted, kOffload };

const char* SourceName(TableSource s) {
  switch (s) {
    case TableSource::kFlush:
      return "flush";
    case TableSource::kCompacted:
      return "compacted";
    case TableSource::kOffload:
      return "offload";
  }
  return "?";
}

class ScrubEventRecorder : public obs::EventListener {
 public:
  void OnCorruptionDetected(const obs::CorruptionInfo& info) override {
    corruptions++;
    last_source = info.source;
  }
  void OnFileQuarantined(const obs::FileQuarantineInfo& info) override {
    quarantines++;
  }
  void OnScrubCompleted(const obs::ScrubCycleInfo& info) override {
    scrubs++;
    files_scanned += info.files_scanned;
  }

  std::atomic<int> corruptions{0};
  std::atomic<int> quarantines{0};
  std::atomic<int> scrubs{0};
  std::atomic<uint64_t> files_scanned{0};
  std::string last_source;
};

}  // namespace

class ScrubHealTest : public testing::Test {
 public:
  static constexpr int kNumKeys = 600;

  ScrubHealTest() { Reset(); }

  // Fresh env + registry + listener for each matrix cell so counters
  // and files never leak between cells.
  void Reset() {
    db_.reset();
    executor_.reset();
    device_.reset();
    env_.reset();
    mem_env_.reset();
    mem_env_.reset(NewMemEnv(Env::Default()));
    env_ = std::make_unique<CorruptionInjectionEnv>(mem_env_.get());
    metrics_ = std::make_unique<obs::MetricsRegistry>();
    recorder_ = std::make_unique<ScrubEventRecorder>();
  }

  void Open(TableSource source) {
    db_.reset();
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    // Deterministic: the periodic scrubber stays off; cycles run only
    // via ScrubNow().
    options.scrub_interval_seconds = 0;
    options.metrics_registry = metrics_.get();
    options.listeners.push_back(recorder_.get());
    if (source == TableSource::kOffload) {
      if (executor_ == nullptr) {
        fpga::EngineConfig config;
        config.num_inputs = 9;
        config.input_width = 8;
        config.value_width = 8;
        device_ = std::make_unique<host::FcaeDevice>(config);
        executor_ =
            std::make_unique<host::FcaeCompactionExecutor>(device_.get());
      }
      options.compaction_executor = executor_.get();
    }
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, dbname_, &db).ok());
    db_.reset(db);
  }

  static std::string Key(int i) {
    char buf[16];
    std::snprintf(buf, sizeof(buf), "key%06d", i);
    return std::string(buf);
  }

  static std::string Value(char round, int i) {
    return std::string(1, round) + ":" + Key(i) + std::string(40, 'x');
  }

  void WriteKeys(char round, int start, int stride) {
    for (int i = start; i < kNumKeys; i += stride) {
      ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value(round, i)).ok());
    }
  }

  void Flush() {
    ASSERT_TRUE(
        reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  }

  // Full paths of live table files, keyed by file number.
  std::map<uint64_t, std::string> TableFiles() {
    std::map<uint64_t, std::string> result;
    std::vector<std::string> children;
    EXPECT_TRUE(env_->GetChildren(dbname_, &children).ok());
    for (const std::string& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          type == FileType::kTableFile) {
        result[number] = dbname_ + "/" + child;
      }
    }
    return result;
  }

  // Every key must come back with its round-B value — corruption of any
  // single round-A table may never surface as data loss or wrong data.
  void CheckAllKeysHealed() {
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    int i = 0;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next(), i++) {
      ASSERT_LT(i, kNumKeys);
      EXPECT_EQ(Key(i), iter->key().ToString());
      EXPECT_EQ(Value('b', i), iter->value().ToString());
    }
    EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
    EXPECT_EQ(kNumKeys, i);
  }

  void ExpectProperty(const std::string& name, const std::string& want) {
    std::string value;
    ASSERT_TRUE(db_->GetProperty(name, &value)) << name;
    EXPECT_EQ(want, value) << name;
  }

  // One matrix cell: build round-A tables via `source`, overwrite every
  // key in a clean round-B flush, rot one round-A table, scrub, verify
  // the heal.
  void RunCell(TableSource source, uint32_t seed) {
    SCOPED_TRACE(std::string("source=") + SourceName(source) +
                 " seed=" + std::to_string(seed));
    Reset();
    Open(source);

    // Round A: two overlapping flushes so compaction (when requested)
    // does a real merge rather than a trivial move.
    WriteKeys('a', 0, 2);
    Flush();
    WriteKeys('a', 1, 2);
    Flush();
    if (source != TableSource::kFlush) {
      db_->CompactRange(nullptr, nullptr);
    }
    std::map<uint64_t, std::string> candidates = TableFiles();
    ASSERT_FALSE(candidates.empty());

    // Round B: rewrite every key into a fresh clean L0 table, so no
    // round-A file holds the only copy of anything.
    WriteKeys('b', 0, 1);
    Flush();

    // Rot one round-A table.
    auto victim = candidates.begin();
    std::advance(victim, seed % candidates.size());
    std::vector<uint64_t> offsets;
    ASSERT_TRUE(env_->CorruptFile(victim->second, seed, 3, &offsets).ok());
    ASSERT_FALSE(offsets.empty());

    const uint64_t repairs_before =
        metrics_->counter("integrity.repairs")->value();
    Status s = db_->ScrubNow();
    ASSERT_TRUE(s.ok()) << s.ToString();

    // Detection, quarantine, and repair all happened...
    EXPECT_GE(recorder_->corruptions.load(), 1);
    EXPECT_GE(recorder_->quarantines.load(), 1);
    EXPECT_GE(recorder_->scrubs.load(), 1);
    EXPECT_EQ("scrub", recorder_->last_source);
    EXPECT_GT(metrics_->counter("integrity.repairs")->value(),
              repairs_before);
    EXPECT_GE(metrics_->counter("scrub.corruptions_detected")->value(), 1u);

    // ...without tripping the hard background-error path or leaving the
    // file quarantined.
    std::string prop;
    ASSERT_TRUE(db_->GetProperty("fcae.background-error", &prop));
    EXPECT_EQ(0u, prop.find("state=ok")) << prop;
    ExpectProperty("fcae.num-quarantined-files", "0");

    CheckAllKeysHealed();

    // The healed DB survives a reopen: the repair edit is durable in
    // the manifest, not just an in-memory state.
    Open(source);
    CheckAllKeysHealed();
  }

  std::string dbname_ = "/scrubheal";
  std::unique_ptr<Env> mem_env_;
  std::unique_ptr<CorruptionInjectionEnv> env_;
  std::unique_ptr<obs::MetricsRegistry> metrics_;
  std::unique_ptr<ScrubEventRecorder> recorder_;
  std::unique_ptr<host::FcaeDevice> device_;
  std::unique_ptr<host::FcaeCompactionExecutor> executor_;
  std::unique_ptr<DB> db_;
};

TEST_F(ScrubHealTest, CleanScrubFindsNothing) {
  Open(TableSource::kFlush);
  WriteKeys('b', 0, 1);
  Flush();
  Status s = db_->ScrubNow();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ(0, recorder_->corruptions.load());
  EXPECT_EQ(0, recorder_->quarantines.load());
  EXPECT_GE(recorder_->scrubs.load(), 1);
  EXPECT_GE(metrics_->counter("scrub.cycles")->value(), 1u);
  EXPECT_GE(metrics_->counter("scrub.files_verified")->value(), 1u);
  EXPECT_GT(metrics_->counter("scrub.bytes_verified")->value(), 0u);
  EXPECT_EQ(0u, metrics_->counter("scrub.corruptions_detected")->value());
  CheckAllKeysHealed();
}

TEST_F(ScrubHealTest, ScrubNowOnEmptyDB) {
  Open(TableSource::kFlush);
  Status s = db_->ScrubNow();
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_GE(recorder_->scrubs.load(), 1);
  EXPECT_EQ(0, recorder_->corruptions.load());
}

TEST_F(ScrubHealTest, HealMatrix) {
  const bool full = getenv("FCAE_SCRUB_MATRIX_FULL") != nullptr;
  const int seeds = full ? 6 : 2;
  // The nightly soak injects a fresh base seed per run; a failure
  // replays with FCAE_SCRUB_SEED=<base> FCAE_SCRUB_MATRIX_FULL=1.
  uint32_t base = 0;
  if (const char* env_seed = getenv("FCAE_SCRUB_SEED")) {
    base = static_cast<uint32_t>(std::strtoul(env_seed, nullptr, 10));
  }
  const TableSource sources[] = {TableSource::kFlush, TableSource::kCompacted,
                                 TableSource::kOffload};
  for (TableSource source : sources) {
    for (int seed = 1; seed <= seeds; seed++) {
      RunCell(source, base + static_cast<uint32_t>(seed * 7919));
      if (HasFatalFailure()) return;
    }
  }
}

// WAL-replay checksum drops must be visible operationally, not only as
// a log line: recovery counts dropped records and bytes.
TEST_F(ScrubHealTest, WalCorruptionSurfacesCounters) {
  Open(TableSource::kFlush);
  for (int i = 0; i < 200; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), Key(i), Value('a', i)).ok());
  }
  db_.reset();  // Keys remain in the WAL only; no flush happened.

  std::string log_file;
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dbname_, &children).ok());
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) && type == FileType::kLogFile) {
      log_file = dbname_ + "/" + child;
    }
  }
  ASSERT_FALSE(log_file.empty());
  ASSERT_TRUE(env_->CorruptFile(log_file, /*seed=*/1234, /*flips=*/3).ok());

  Open(TableSource::kFlush);  // Replay drops the damaged records...
  EXPECT_GE(metrics_->counter("wal.corruption_records")->value(), 1u);
  EXPECT_GT(metrics_->counter("wal.corruption_bytes")->value(), 0u);
}

// Read routing while a file is quarantined (the containment window
// between detection and the repair edit): stale-but-clean data is
// served, keys that may only live in the corrupt file answer
// Corruption, and iterators route around the file with OK status.
class QuarantineRoutingTest : public ScrubHealTest {};

TEST_F(QuarantineRoutingTest, ReadsRouteAroundQuarantinedFile) {
  Open(TableSource::kFlush);

  // File A: k1=v1 plus filler.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "v1").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k3", "v3").ok());
  Flush();
  std::map<uint64_t, std::string> after_a = TableFiles();
  ASSERT_EQ(1u, after_a.size());

  // File B: newer k1=v2, and k2 exists only here.
  ASSERT_TRUE(db_->Put(WriteOptions(), "k1", "v2").ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "k2", "v2only").ok());
  Flush();
  std::map<uint64_t, std::string> after_b = TableFiles();
  ASSERT_EQ(2u, after_b.size());
  uint64_t file_b = 0;
  for (const auto& entry : after_b) {
    if (after_a.count(entry.first) == 0) file_b = entry.first;
  }
  ASSERT_NE(0u, file_b);

  DBImpl* impl = reinterpret_cast<DBImpl*>(db_.get());
  impl->TEST_QuarantineFile(file_b);
  ExpectProperty("fcae.num-quarantined-files", "1");

  std::string value;
  // Stale-but-clean older version is served rather than an error.
  Status s = db_->Get(ReadOptions(), "k1", &value);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ("v1", value);
  // A key only the quarantined file could hold answers Corruption, not
  // NotFound — the key may well exist.
  s = db_->Get(ReadOptions(), "k2", &value);
  EXPECT_TRUE(s.IsCorruption()) << s.ToString();
  // A key outside the quarantined file is untouched.
  s = db_->Get(ReadOptions(), "k3", &value);
  ASSERT_TRUE(s.ok()) << s.ToString();
  EXPECT_EQ("v3", value);

  // Iterators treat the quarantined file as empty and finish clean.
  {
    std::unique_ptr<Iterator> iter(db_->NewIterator(ReadOptions()));
    std::map<std::string, std::string> scanned;
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      scanned[iter->key().ToString()] = iter->value().ToString();
    }
    EXPECT_TRUE(iter->status().ok()) << iter->status().ToString();
    EXPECT_EQ(2u, scanned.size());
    EXPECT_EQ("v1", scanned["k1"]);
    EXPECT_EQ(0u, scanned.count("k2"));
  }

  // Lifting the quarantine restores the newest values.
  impl->TEST_UnquarantineFile(file_b);
  ExpectProperty("fcae.num-quarantined-files", "0");
  ASSERT_TRUE(db_->Get(ReadOptions(), "k1", &value).ok());
  EXPECT_EQ("v2", value);
  ASSERT_TRUE(db_->Get(ReadOptions(), "k2", &value).ok());
  EXPECT_EQ("v2only", value);
}

}  // namespace fcae
