#ifndef FCAE_TESTS_FPGA_TEST_UTIL_H_
#define FCAE_TESTS_FPGA_TEST_UTIL_H_

// Shared helpers for FPGA-engine and host-offload tests: build real
// SSTable files from internal-key records and stage them into device
// input images.

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpga/block_parse.h"
#include "fpga/device_memory.h"
#include "host/sstable_stager.h"
#include "lsm/dbformat.h"
#include "table/table_builder.h"
#include "util/env.h"
#include "util/options.h"

namespace fcae {

/// A "no snapshots held" smallest_snapshot for tests: larger than every
/// test sequence number but — unlike kMaxSequenceNumber — a value the DB
/// could legitimately pass (smallest_snapshot is always <= LastSequence,
/// which is < kMaxSequenceNumber, so the first occurrence of a user key
/// is never dropped).
constexpr uint64_t kNoSnapshot = 1ull << 40;

namespace fpga_test {

struct TestKv {
  std::string user_key;
  uint64_t sequence;
  ValueType type;
  std::string value;

  std::string InternalKey() const {
    std::string ik;
    AppendInternalKey(&ik, ParsedInternalKey(user_key, sequence, type));
    return ik;
  }
};

/// Writes `records` (already in internal-key order) as one SSTable file.
inline Status WriteSstable(Env* env, const Options& base_options,
                           const std::string& fname,
                           const std::vector<TestKv>& records) {
  static const InternalKeyComparator* icmp =
      new InternalKeyComparator(BytewiseComparator());
  Options options = base_options;
  options.comparator = icmp;
  options.env = env;

  WritableFile* file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  {
    TableBuilder builder(options, file);
    for (const TestKv& kv : records) {
      builder.Add(kv.InternalKey(), kv.value);
    }
    s = builder.Finish();
  }
  if (s.ok()) s = file->Close();
  delete file;
  return s;
}

/// Builds one DeviceInput from a run of record vectors (one SSTable per
/// vector). File names are synthesized under /fpga_test.
inline Status BuildDeviceInput(Env* env, const Options& options,
                               const std::vector<std::vector<TestKv>>& run,
                               int input_no, fpga::DeviceInput* input) {
  host::SstableStager stager(env);
  for (size_t t = 0; t < run.size(); t++) {
    std::string fname = "/fpga_test_input" + std::to_string(input_no) + "_" +
                        std::to_string(t) + ".ldb";
    Status s = WriteSstable(env, options, fname, run[t]);
    if (!s.ok()) return s;
    s = stager.AddTable(fname, input);
    if (!s.ok()) return s;
  }
  return Status::OK();
}

/// Flattens a DeviceOutput into (internal_key -> value) pairs in order,
/// by decoding every produced block.
inline Status FlattenOutput(const fpga::DeviceOutput& output,
                            std::vector<std::pair<std::string, std::string>>*
                                entries) {
  for (const fpga::DeviceOutputTable& table : output.tables) {
    for (const fpga::OutputIndexEntry& e : table.index_entries) {
      if (e.offset + e.size + 5 > table.data_memory.size()) {
        return Status::Corruption("index entry out of range");
      }
      std::string contents;
      Status s = fpga::DecodeStoredBlock(
          Slice(table.data_memory.data() + e.offset, e.size + 5),
          /*verify_checksum=*/true, &contents);
      if (!s.ok()) return s;
      std::vector<fpga::ParsedEntry> parsed;
      s = fpga::ParseBlockEntries(contents, &parsed);
      if (!s.ok()) return s;
      for (fpga::ParsedEntry& p : parsed) {
        entries->emplace_back(std::move(p.key), std::move(p.value));
      }
    }
  }
  return Status::OK();
}

/// Generates `n` records with keys "prefix%08d" spaced by `stride`,
/// fixed-size values.
inline std::vector<TestKv> MakeRun(const std::string& prefix, int start,
                                   int n, int stride, uint64_t seq_base,
                                   size_t value_len,
                                   ValueType type = kTypeValue) {
  std::vector<TestKv> result;
  result.reserve(n);
  for (int i = 0; i < n; i++) {
    TestKv kv;
    char buf[32];
    std::snprintf(buf, sizeof(buf), "%s%08d", prefix.c_str(),
                  start + i * stride);
    kv.user_key = buf;
    kv.sequence = seq_base + i;
    kv.type = type;
    kv.value = std::string(value_len, static_cast<char>('a' + (i % 26)));
    result.push_back(std::move(kv));
  }
  return result;
}

}  // namespace fpga_test
}  // namespace fcae

#endif  // FCAE_TESTS_FPGA_TEST_UTIL_H_
