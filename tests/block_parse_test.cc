#include "fpga/block_parse.h"

#include <string>
#include <vector>

#include "compress/snappy.h"
#include "gtest/gtest.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/coding.h"
#include "util/comparator.h"
#include "util/crc32c.h"
#include "util/options.h"
#include "util/random.h"

namespace fcae {
namespace fpga {

namespace {

/// Builds a stored block (contents + trailer) the way TableBuilder does.
std::string StoreBlock(const Slice& raw, CompressionType type) {
  std::string stored;
  if (type == kSnappyCompression) {
    snappy::Compress(raw.data(), raw.size(), &stored);
  } else {
    stored.assign(raw.data(), raw.size());
  }
  char trailer[kBlockTrailerSize];
  trailer[0] = static_cast<char>(type);
  uint32_t crc = crc32c::Value(stored.data(), stored.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  stored.append(trailer, kBlockTrailerSize);
  return stored;
}

std::string BuildRawBlock(int n, int restart_interval,
                          std::vector<std::pair<std::string, std::string>>*
                              expected) {
  Options options;
  options.block_restart_interval = restart_interval;
  BlockBuilder builder(&options);
  for (int i = 0; i < n; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%08d", i);
    std::string value = "value" + std::to_string(i);
    builder.Add(key, value);
    expected->emplace_back(key, value);
  }
  return builder.Finish().ToString();
}

}  // namespace

class BlockParseTest : public testing::TestWithParam<CompressionType> {};

TEST_P(BlockParseTest, RoundTrip) {
  std::vector<std::pair<std::string, std::string>> expected;
  std::string raw = BuildRawBlock(500, 16, &expected);
  std::string stored = StoreBlock(raw, GetParam());

  std::string contents;
  ASSERT_TRUE(DecodeStoredBlock(stored, true, &contents).ok());
  ASSERT_EQ(raw, contents);

  std::vector<ParsedEntry> entries;
  ASSERT_TRUE(ParseBlockEntries(contents, &entries).ok());
  ASSERT_EQ(expected.size(), entries.size());
  for (size_t i = 0; i < expected.size(); i++) {
    EXPECT_EQ(expected[i].first, entries[i].key);
    EXPECT_EQ(expected[i].second, entries[i].value);
  }
}

TEST_P(BlockParseTest, ChecksumDetectsFlips) {
  std::vector<std::pair<std::string, std::string>> expected;
  std::string raw = BuildRawBlock(100, 8, &expected);
  std::string stored = StoreBlock(raw, GetParam());

  for (size_t pos : {size_t{0}, stored.size() / 2, stored.size() - 6}) {
    std::string corrupt = stored;
    corrupt[pos] ^= 0x01;
    std::string contents;
    Status s = DecodeStoredBlock(corrupt, true, &contents);
    ASSERT_FALSE(s.ok()) << "flip at " << pos;
  }
}

INSTANTIATE_TEST_SUITE_P(Compression, BlockParseTest,
                         testing::Values(kNoCompression,
                                         kSnappyCompression));

TEST(BlockParseEdgeTest, TooShortForTrailer) {
  std::string contents;
  ASSERT_FALSE(DecodeStoredBlock(Slice("abc"), true, &contents).ok());
}

TEST(BlockParseEdgeTest, BadCompressionType) {
  std::string stored = "payload";
  char trailer[kBlockTrailerSize];
  trailer[0] = 0x7f;  // Unknown type.
  uint32_t crc = crc32c::Value(stored.data(), stored.size());
  crc = crc32c::Extend(crc, trailer, 1);
  EncodeFixed32(trailer + 1, crc32c::Mask(crc));
  stored.append(trailer, kBlockTrailerSize);
  std::string contents;
  ASSERT_FALSE(DecodeStoredBlock(stored, true, &contents).ok());
}

TEST(BlockParseEdgeTest, EmptyBlockHasNoEntries) {
  Options options;
  BlockBuilder builder(&options);
  std::string raw = builder.Finish().ToString();
  std::vector<ParsedEntry> entries;
  ASSERT_TRUE(ParseBlockEntries(raw, &entries).ok());
  ASSERT_TRUE(entries.empty());
}

TEST(BlockParseEdgeTest, GarbageEntriesRejected) {
  // A "block" with a valid restart array but garbage entry bytes.
  std::string bad(64, '\xee');
  PutFixed32(&bad, 0);  // restart[0] = 0
  PutFixed32(&bad, 1);  // num_restarts = 1
  std::vector<ParsedEntry> entries;
  ASSERT_FALSE(ParseBlockEntries(bad, &entries).ok());
}

TEST(BlockParseEdgeTest, RestartCountOverflowRejected) {
  std::string bad;
  PutFixed32(&bad, 1000000);  // num_restarts way beyond block size.
  std::vector<ParsedEntry> entries;
  ASSERT_FALSE(ParseBlockEntries(bad, &entries).ok());
}

}  // namespace fpga
}  // namespace fcae
