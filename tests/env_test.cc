#include "util/env.h"

#include <atomic>
#include <memory>

#include "gtest/gtest.h"
#include "util/mem_env.h"

namespace fcae {

// The same behavioural suite runs against both Env implementations.
class EnvTest : public testing::TestWithParam<bool> {
 public:
  EnvTest() {
    if (GetParam()) {
      owned_env_.reset(NewMemEnv(Env::Default()));
      env_ = owned_env_.get();
      dir_ = "/memdir";
    } else {
      env_ = Env::Default();
      dir_ = "/tmp/fcae_env_test";
    }
    env_->CreateDir(dir_).IgnoreError();  // may already exist
  }

  ~EnvTest() override {
    std::vector<std::string> children;
    if (env_->GetChildren(dir_, &children).ok()) {
      for (const auto& c : children) {
        env_->RemoveFile(dir_ + "/" + c).IgnoreError();
      }
    }
    env_->RemoveDir(dir_).IgnoreError();
  }

  Env* env_;
  std::string dir_;

 private:
  std::unique_ptr<Env> owned_env_;
};

TEST_P(EnvTest, ReadWrite) {
  const std::string fname = dir_ + "/f";
  ASSERT_TRUE(WriteStringToFile(env_, "hello world", fname).ok());

  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  ASSERT_EQ("hello world", data);

  uint64_t size;
  ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
  ASSERT_EQ(11u, size);
}

TEST_P(EnvTest, MissingFile) {
  SequentialFile* f = nullptr;
  ASSERT_FALSE(env_->NewSequentialFile(dir_ + "/nonexistent", &f).ok());
  ASSERT_EQ(nullptr, f);
  ASSERT_FALSE(env_->FileExists(dir_ + "/nonexistent"));
}

TEST_P(EnvTest, RandomAccess) {
  const std::string fname = dir_ + "/ra";
  ASSERT_TRUE(WriteStringToFile(env_, "0123456789", fname).ok());

  RandomAccessFile* file;
  ASSERT_TRUE(env_->NewRandomAccessFile(fname, &file).ok());
  std::unique_ptr<RandomAccessFile> guard(file);

  char scratch[10];
  Slice result;
  ASSERT_TRUE(file->Read(3, 4, &result, scratch).ok());
  ASSERT_EQ("3456", result.ToString());

  // Read past the end returns a short (or empty) result, not an error,
  // for the mem env; posix pread behaves the same.
  Status s = file->Read(8, 10, &result, scratch);
  if (s.ok()) {
    ASSERT_EQ("89", result.ToString());
  }
}

TEST_P(EnvTest, SequentialReadAndSkip) {
  const std::string fname = dir_ + "/seq";
  ASSERT_TRUE(WriteStringToFile(env_, "abcdefghij", fname).ok());

  SequentialFile* file;
  ASSERT_TRUE(env_->NewSequentialFile(fname, &file).ok());
  std::unique_ptr<SequentialFile> guard(file);

  char scratch[16];
  Slice result;
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  ASSERT_EQ("abc", result.ToString());
  ASSERT_TRUE(file->Skip(2).ok());
  ASSERT_TRUE(file->Read(3, &result, scratch).ok());
  ASSERT_EQ("fgh", result.ToString());
}

TEST_P(EnvTest, Rename) {
  const std::string src = dir_ + "/src";
  const std::string dst = dir_ + "/dst";
  ASSERT_TRUE(WriteStringToFile(env_, "payload", src).ok());
  ASSERT_TRUE(env_->RenameFile(src, dst).ok());
  ASSERT_FALSE(env_->FileExists(src));
  ASSERT_TRUE(env_->FileExists(dst));
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, dst, &data).ok());
  ASSERT_EQ("payload", data);
}

TEST_P(EnvTest, RenameOverwritesTarget) {
  const std::string src = dir_ + "/src2";
  const std::string dst = dir_ + "/dst2";
  ASSERT_TRUE(WriteStringToFile(env_, "new", src).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "old", dst).ok());
  ASSERT_TRUE(env_->RenameFile(src, dst).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, dst, &data).ok());
  ASSERT_EQ("new", data);
}

TEST_P(EnvTest, SyncDir) {
  // SyncDir on an existing directory succeeds for both envs (posix
  // fsyncs the dirfd; the mem env has no durability and no-ops).
  ASSERT_TRUE(WriteStringToFile(env_, "x", dir_ + "/synced").ok());
  ASSERT_TRUE(env_->SyncDir(dir_).ok());
}

TEST_P(EnvTest, SyncDirMissing) {
  Status s = env_->SyncDir(dir_ + "/no_such_subdir");
  if (GetParam()) {
    ASSERT_TRUE(s.ok());  // mem env: nothing to make durable
  } else {
    ASSERT_FALSE(s.ok());
  }
}

TEST_P(EnvTest, WriteStringToFileSync) {
  const std::string fname = dir_ + "/synced_write";
  ASSERT_TRUE(WriteStringToFileSync(env_, "durable", fname).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  ASSERT_EQ("durable", data);
}

TEST_P(EnvTest, GetChildren) {
  ASSERT_TRUE(WriteStringToFile(env_, "1", dir_ + "/a").ok());
  ASSERT_TRUE(WriteStringToFile(env_, "2", dir_ + "/b").ok());
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dir_, &children).ok());
  int found = 0;
  for (const auto& c : children) {
    if (c == "a" || c == "b") found++;
  }
  ASSERT_EQ(2, found);
}

TEST_P(EnvTest, RemoveFile) {
  const std::string fname = dir_ + "/todelete";
  ASSERT_TRUE(WriteStringToFile(env_, "x", fname).ok());
  ASSERT_TRUE(env_->FileExists(fname));
  ASSERT_TRUE(env_->RemoveFile(fname).ok());
  ASSERT_FALSE(env_->FileExists(fname));
  ASSERT_FALSE(env_->RemoveFile(fname).ok());
}

TEST_P(EnvTest, AppendableFile) {
  const std::string fname = dir_ + "/appendable";
  {
    WritableFile* f;
    ASSERT_TRUE(env_->NewAppendableFile(fname, &f).ok());
    std::unique_ptr<WritableFile> guard(f);
    ASSERT_TRUE(f->Append("hello").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  {
    WritableFile* f;
    ASSERT_TRUE(env_->NewAppendableFile(fname, &f).ok());
    std::unique_ptr<WritableFile> guard(f);
    ASSERT_TRUE(f->Append(" world").ok());
    ASSERT_TRUE(f->Close().ok());
  }
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  ASSERT_EQ("hello world", data);
}

TEST_P(EnvTest, WritableFileTruncates) {
  const std::string fname = dir_ + "/trunc";
  ASSERT_TRUE(WriteStringToFile(env_, "a long first version", fname).ok());
  ASSERT_TRUE(WriteStringToFile(env_, "short", fname).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  ASSERT_EQ("short", data);
}

TEST_P(EnvTest, LargeWrite) {
  // Exercise the posix write buffer (64 KB) boundary.
  const std::string fname = dir_ + "/large";
  std::string payload;
  for (int i = 0; i < 200000; i++) {
    payload.push_back(static_cast<char>('a' + (i % 26)));
  }
  ASSERT_TRUE(WriteStringToFile(env_, payload, fname).ok());
  std::string data;
  ASSERT_TRUE(ReadFileToString(env_, fname, &data).ok());
  ASSERT_EQ(payload, data);
}

namespace {
struct ScheduleState {
  std::atomic<int> counter{0};
};
void Increment(void* arg) {
  static_cast<ScheduleState*>(arg)->counter.fetch_add(1);
}
}  // namespace

TEST_P(EnvTest, Schedule) {
  ScheduleState state;
  for (int i = 0; i < 10; i++) {
    env_->Schedule(&Increment, &state);
  }
  // Background queue is async; poll with a deadline.
  for (int i = 0; i < 1000 && state.counter.load() < 10; i++) {
    env_->SleepForMicroseconds(1000);
  }
  ASSERT_EQ(10, state.counter.load());
}

TEST_P(EnvTest, FileLocking) {
  const std::string lockname = dir_ + "/LOCK";
  FileLock* lock1 = nullptr;
  ASSERT_TRUE(env_->LockFile(lockname, &lock1).ok());
  ASSERT_NE(nullptr, lock1);

  // Second lock on the same file fails while held.
  FileLock* lock2 = nullptr;
  ASSERT_FALSE(env_->LockFile(lockname, &lock2).ok());
  ASSERT_EQ(nullptr, lock2);

  // After unlocking it can be re-acquired.
  ASSERT_TRUE(env_->UnlockFile(lock1).ok());
  ASSERT_TRUE(env_->LockFile(lockname, &lock2).ok());
  ASSERT_TRUE(env_->UnlockFile(lock2).ok());
  env_->RemoveFile(lockname).IgnoreError();  // best-effort teardown
}

TEST_P(EnvTest, NowMicrosAdvances) {
  uint64_t a = env_->NowMicros();
  env_->SleepForMicroseconds(1000);
  uint64_t b = env_->NowMicros();
  ASSERT_GT(b, a);
}

INSTANTIATE_TEST_SUITE_P(Posix, EnvTest, testing::Values(false));
INSTANTIATE_TEST_SUITE_P(Mem, EnvTest, testing::Values(true));

}  // namespace fcae
