#include "util/arena.h"

#include <utility>
#include <vector>

#include "gtest/gtest.h"
#include "util/random.h"

namespace fcae {

TEST(Arena, Empty) { Arena arena; }

TEST(Arena, Simple) {
  std::vector<std::pair<size_t, char*>> allocated;
  Arena arena;
  const int kN = 100000;
  size_t bytes = 0;
  Random rnd(301);
  for (int i = 0; i < kN; i++) {
    size_t s;
    if (i % (kN / 10) == 0) {
      s = i;
    } else {
      s = rnd.OneIn(4000)
              ? rnd.Uniform(6000)
              : (rnd.OneIn(10) ? rnd.Uniform(100) : rnd.Uniform(20));
    }
    if (s == 0) {
      // Our arena disallows size 0 allocations.
      s = 1;
    }
    char* r;
    if (rnd.OneIn(10)) {
      r = arena.AllocateAligned(s);
    } else {
      r = arena.Allocate(s);
    }

    for (size_t b = 0; b < s; b++) {
      // Fill the "i"th allocation with a known bit pattern.
      r[b] = i % 256;
    }
    bytes += s;
    allocated.push_back(std::make_pair(s, r));
    ASSERT_GE(arena.MemoryUsage(), bytes);
    if (i > kN / 10) {
      ASSERT_LE(arena.MemoryUsage(), bytes * 1.10);
    }
  }
  for (size_t i = 0; i < allocated.size(); i++) {
    size_t num_bytes = allocated[i].first;
    const char* p = allocated[i].second;
    for (size_t b = 0; b < num_bytes; b++) {
      // Check the "i"th allocation for the known bit pattern.
      ASSERT_EQ(static_cast<int>(i % 256), static_cast<int>(p[b]) & 0xff);
    }
  }
}

TEST(Arena, AlignedAllocationsAreAligned) {
  Arena arena;
  for (int i = 0; i < 100; i++) {
    char* p = arena.AllocateAligned(i % 17 + 1);
    ASSERT_EQ(0u, reinterpret_cast<uintptr_t>(p) % 8);
  }
}

TEST(Arena, LargeAllocationGetsOwnBlock) {
  Arena arena;
  size_t before = arena.MemoryUsage();
  char* p = arena.Allocate(1 << 20);
  ASSERT_NE(nullptr, p);
  ASSERT_GE(arena.MemoryUsage() - before, static_cast<size_t>(1 << 20));
  // A subsequent small allocation should still succeed.
  char* q = arena.Allocate(16);
  ASSERT_NE(nullptr, q);
}

}  // namespace fcae
