#include "table/block.h"

#include <map>
#include <memory>
#include <string>

#include "gtest/gtest.h"
#include "table/block_builder.h"
#include "table/format.h"
#include "util/comparator.h"
#include "util/options.h"
#include "util/random.h"

namespace fcae {

namespace {

/// Builds a Block from a map and returns (block, contents-backing-string).
struct BuiltBlock {
  std::unique_ptr<Block> block;
  std::string storage;
};

BuiltBlock BuildBlock(const std::map<std::string, std::string>& entries,
                      int restart_interval) {
  Options options;
  options.block_restart_interval = restart_interval;
  BlockBuilder builder(&options);
  for (const auto& kv : entries) {
    builder.Add(kv.first, kv.second);
  }
  BuiltBlock result;
  result.storage = builder.Finish().ToString();
  BlockContents contents;
  contents.data = Slice(result.storage);
  contents.cachable = false;
  contents.heap_allocated = false;
  result.block = std::make_unique<Block>(contents);
  return result;
}

}  // namespace

TEST(BlockTest, EmptyBlock) {
  BuiltBlock b = BuildBlock({}, 16);
  std::unique_ptr<Iterator> iter(b.block->NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  ASSERT_FALSE(iter->Valid());
  iter->SeekToLast();
  ASSERT_FALSE(iter->Valid());
  iter->Seek("foo");
  ASSERT_FALSE(iter->Valid());
}

TEST(BlockTest, ForwardIteration) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 100; i++) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = "value" + std::to_string(i);
  }
  BuiltBlock b = BuildBlock(entries, 16);
  std::unique_ptr<Iterator> iter(b.block->NewIterator(BytewiseComparator()));

  auto expected = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_NE(expected, entries.end());
    ASSERT_EQ(expected->first, iter->key().ToString());
    ASSERT_EQ(expected->second, iter->value().ToString());
    ++expected;
  }
  ASSERT_EQ(expected, entries.end());
  ASSERT_TRUE(iter->status().ok());
}

TEST(BlockTest, BackwardIteration) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 50; i++) {
    entries["k" + std::to_string(1000 + i)] = std::to_string(i);
  }
  BuiltBlock b = BuildBlock(entries, 4);
  std::unique_ptr<Iterator> iter(b.block->NewIterator(BytewiseComparator()));

  auto expected = entries.rbegin();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    ASSERT_NE(expected, entries.rend());
    ASSERT_EQ(expected->first, iter->key().ToString());
    ASSERT_EQ(expected->second, iter->value().ToString());
    ++expected;
  }
  ASSERT_EQ(expected, entries.rend());
}

TEST(BlockTest, Seek) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 200; i += 2) {
    char key[16];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = std::to_string(i);
  }
  BuiltBlock b = BuildBlock(entries, 8);
  std::unique_ptr<Iterator> iter(b.block->NewIterator(BytewiseComparator()));

  // Seek to existing key.
  iter->Seek("key000100");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("key000100", iter->key().ToString());

  // Seek to a key between entries: lands on next even key.
  iter->Seek("key000101");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("key000102", iter->key().ToString());

  // Seek before the first key.
  iter->Seek("a");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("key000000", iter->key().ToString());

  // Seek past the last key.
  iter->Seek("z");
  ASSERT_FALSE(iter->Valid());
}

TEST(BlockTest, PrefixCompressionRoundTrip) {
  // Keys sharing long prefixes stress the shared/non_shared encoding.
  std::map<std::string, std::string> entries;
  std::string prefix(120, 'p');
  for (int i = 0; i < 64; i++) {
    entries[prefix + std::to_string(1000 + i)] = std::string(i, 'v');
  }
  for (int restart : {1, 2, 16, 64}) {
    BuiltBlock b = BuildBlock(entries, restart);
    std::unique_ptr<Iterator> iter(
        b.block->NewIterator(BytewiseComparator()));
    auto expected = entries.begin();
    for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
      ASSERT_EQ(expected->first, iter->key().ToString());
      ASSERT_EQ(expected->second, iter->value().ToString());
      ++expected;
    }
    ASSERT_EQ(expected, entries.end()) << "restart=" << restart;
  }
}

TEST(BlockTest, CorruptBlockReportsError) {
  BlockContents contents;
  std::string garbage = "ab";  // Too short to even hold the restart count.
  contents.data = Slice(garbage);
  contents.cachable = false;
  contents.heap_allocated = false;
  Block block(contents);
  std::unique_ptr<Iterator> iter(block.NewIterator(BytewiseComparator()));
  iter->SeekToFirst();
  ASSERT_FALSE(iter->Valid());
  ASSERT_FALSE(iter->status().ok());
}

// Randomized mixed Next/Prev/Seek against an in-memory model.
class BlockRandomAccessTest : public testing::TestWithParam<int> {};

TEST_P(BlockRandomAccessTest, MatchesModel) {
  Random rnd(GetParam());
  std::map<std::string, std::string> entries;
  int n = 1 + rnd.Uniform(300);
  for (int i = 0; i < n; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "k%08u", rnd.Uniform(1000000));
    entries[key] = std::to_string(rnd.Next());
  }
  BuiltBlock b = BuildBlock(entries, 1 + rnd.Uniform(20));
  std::unique_ptr<Iterator> iter(b.block->NewIterator(BytewiseComparator()));

  // Model iterator.
  auto model = entries.end();
  iter->SeekToFirst();
  model = entries.begin();

  for (int step = 0; step < 500; step++) {
    // Check agreement.
    if (model == entries.end()) {
      ASSERT_FALSE(iter->Valid());
    } else {
      ASSERT_TRUE(iter->Valid());
      ASSERT_EQ(model->first, iter->key().ToString());
      ASSERT_EQ(model->second, iter->value().ToString());
    }

    switch (rnd.Uniform(3)) {
      case 0: {  // Next
        if (model != entries.end()) {
          ++model;
          iter->Next();
        }
        break;
      }
      case 1: {  // Seek to random key
        char key[32];
        std::snprintf(key, sizeof(key), "k%08u", rnd.Uniform(1000000));
        model = entries.lower_bound(key);
        iter->Seek(key);
        break;
      }
      case 2: {  // Prev
        if (model != entries.end() && model != entries.begin()) {
          --model;
          iter->Prev();
        } else if (model == entries.begin()) {
          iter->Prev();
          ASSERT_FALSE(iter->Valid());
          iter->SeekToFirst();
          model = entries.begin();
        }
        break;
      }
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, BlockRandomAccessTest, testing::Range(1, 11));

}  // namespace fcae
