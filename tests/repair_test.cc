#include "lsm/repair.h"

#include <memory>

#include "gtest/gtest.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "table/iterator.h"
#include "util/corruption_env.h"
#include "util/mem_env.h"

namespace fcae {

class RepairTest : public testing::Test {
 public:
  RepairTest() : env_(NewMemEnv(Env::Default())), dbname_("/repairme") {
    Open();
  }

  void Open() {
    db_.reset();
    Options options = DefaultOptions();
    DB* db = nullptr;
    ASSERT_TRUE(DB::Open(options, dbname_, &db).ok());
    db_.reset(db);
  }

  Options DefaultOptions() {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    return options;
  }

  void Close() { db_.reset(); }

  Status Repair() { return RepairDB(dbname_, DefaultOptions()); }

  std::string Get(const std::string& k) {
    std::string v;
    Status s = db_->Get(ReadOptions(), k, &v);
    return s.ok() ? v : (s.IsNotFound() ? "NOT_FOUND" : s.ToString());
  }

  void RemoveManifestAndCurrent() {
    std::vector<std::string> children;
    ASSERT_TRUE(env_->GetChildren(dbname_, &children).ok());
    for (const std::string& child : children) {
      uint64_t number;
      FileType type;
      if (ParseFileName(child, &number, &type) &&
          (type == FileType::kDescriptorFile ||
           type == FileType::kCurrentFile)) {
        ASSERT_TRUE(env_->RemoveFile(dbname_ + "/" + child).ok());
      }
    }
  }

  std::unique_ptr<Env> env_;
  std::string dbname_;
  std::unique_ptr<DB> db_;
};

TEST_F(RepairTest, RecoversFlushedDataWithoutManifest) {
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "key" + std::to_string(i),
                         "value" + std::to_string(i))
                    .ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  Close();
  RemoveManifestAndCurrent();

  ASSERT_TRUE(Repair().ok());
  Open();
  for (int i = 0; i < 2000; i += 53) {
    ASSERT_EQ("value" + std::to_string(i), Get("key" + std::to_string(i)));
  }
}

TEST_F(RepairTest, RecoversUnflushedWalDataToo) {
  ASSERT_TRUE(db_->Put(WriteOptions(), "flushed", "f").ok());
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  ASSERT_TRUE(db_->Put(WriteOptions(), "walled", "w").ok());
  Close();
  RemoveManifestAndCurrent();

  ASSERT_TRUE(Repair().ok());
  Open();
  ASSERT_EQ("f", Get("flushed"));
  ASSERT_EQ("w", Get("walled"));
}

TEST_F(RepairTest, UnreadableTableIsQuarantinedNotFatal) {
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "a" + std::to_string(i), "1").ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  for (int i = 0; i < 500; i++) {
    ASSERT_TRUE(
        db_->Put(WriteOptions(), "b" + std::to_string(i), "2").ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  Close();

  // Destroy one of the two tables completely.
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dbname_, &children).ok());
  std::string victim;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) &&
        type == FileType::kTableFile) {
      victim = dbname_ + "/" + child;
      break;
    }
  }
  ASSERT_FALSE(victim.empty());
  ASSERT_TRUE(
      WriteStringToFile(env_.get(), std::string(100, 'x'), victim).ok());
  RemoveManifestAndCurrent();

  ASSERT_TRUE(Repair().ok());
  Open();
  // One of the two prefixes survived in full.
  int a_found = 0, b_found = 0;
  for (int i = 0; i < 500; i++) {
    if (Get("a" + std::to_string(i)) == "1") a_found++;
    if (Get("b" + std::to_string(i)) == "2") b_found++;
  }
  EXPECT_TRUE(a_found == 500 || b_found == 500);
}

TEST_F(RepairTest, BitRottedTableIsArchivedAndRestSalvaged) {
  // Two tables: 2000 'a' keys, then 2000 'b' keys. Flip a few bytes in
  // one of them (realistic at-rest rot, not total destruction), delete
  // the manifest, and RepairDB. The salvaged key set must be exactly
  // the intact table's keys — never wrong data from the rotten one.
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "a" + std::to_string(i), "1").ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  for (int i = 0; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "b" + std::to_string(i), "2").ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  Close();

  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren(dbname_, &children).ok());
  std::vector<std::string> tables;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) &&
        type == FileType::kTableFile) {
      tables.push_back(dbname_ + "/" + child);
    }
  }
  ASSERT_EQ(2u, tables.size());
  CorruptionInjectionEnv rot(env_.get());
  ASSERT_TRUE(rot.CorruptFile(tables[0], /*seed=*/42, /*flips=*/3).ok());
  RemoveManifestAndCurrent();

  ASSERT_TRUE(Repair().ok());
  Open();
  int a_found = 0, b_found = 0, wrong = 0;
  for (int i = 0; i < 2000; i++) {
    std::string a = Get("a" + std::to_string(i));
    std::string b = Get("b" + std::to_string(i));
    if (a == "1") a_found++;
    else if (a != "NOT_FOUND") wrong++;
    if (b == "2") b_found++;
    else if (b != "NOT_FOUND") wrong++;
  }
  EXPECT_EQ(0, wrong);
  // Exactly one prefix survived in full (whichever table stayed clean);
  // the rotten table was archived whole rather than half-trusted.
  EXPECT_TRUE((a_found == 2000) != (b_found == 2000))
      << "a=" << a_found << " b=" << b_found;
}

TEST_F(RepairTest, RepairedDbKeepsWorking) {
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  Close();
  RemoveManifestAndCurrent();
  ASSERT_TRUE(Repair().ok());
  Open();

  // New writes, compactions and reopens keep functioning.
  for (int i = 1000; i < 2000; i++) {
    ASSERT_TRUE(db_->Put(WriteOptions(), "k" + std::to_string(i), "v").ok());
  }
  ASSERT_TRUE(
      reinterpret_cast<DBImpl*>(db_.get())->TEST_CompactMemTable().ok());
  for (int level = 0; level < kNumLevels - 1; level++) {
    reinterpret_cast<DBImpl*>(db_.get())
        ->TEST_CompactRange(level, nullptr, nullptr);
  }
  Open();
  int found = 0;
  for (int i = 0; i < 2000; i++) {
    if (Get("k" + std::to_string(i)) == "v") found++;
  }
  ASSERT_EQ(2000, found);
}

}  // namespace fcae
