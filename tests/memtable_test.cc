#include "lsm/memtable.h"

#include <memory>

#include "gtest/gtest.h"
#include "table/iterator.h"

namespace fcae {

class MemTableTest : public testing::Test {
 public:
  MemTableTest() : icmp_(BytewiseComparator()), mem_(new MemTable(icmp_)) {
    mem_->Ref();
  }
  ~MemTableTest() override { mem_->Unref(); }

  InternalKeyComparator icmp_;
  MemTable* mem_;
};

TEST_F(MemTableTest, AddAndGet) {
  mem_->Add(1, kTypeValue, "key1", "value1");
  mem_->Add(2, kTypeValue, "key2", "value2");

  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("key1", 10), &value, &s));
  ASSERT_EQ("value1", value);
  ASSERT_TRUE(mem_->Get(LookupKey("key2", 10), &value, &s));
  ASSERT_EQ("value2", value);
  ASSERT_FALSE(mem_->Get(LookupKey("key3", 10), &value, &s));
}

TEST_F(MemTableTest, SequenceVisibility) {
  mem_->Add(5, kTypeValue, "k", "v5");
  mem_->Add(10, kTypeValue, "k", "v10");

  std::string value;
  Status s;
  // At snapshot 10 or later we see v10.
  ASSERT_TRUE(mem_->Get(LookupKey("k", 12), &value, &s));
  ASSERT_EQ("v10", value);
  // At snapshot 7 we see v5.
  ASSERT_TRUE(mem_->Get(LookupKey("k", 7), &value, &s));
  ASSERT_EQ("v5", value);
  // At snapshot 4 the key does not exist yet.
  ASSERT_FALSE(mem_->Get(LookupKey("k", 4), &value, &s));
}

TEST_F(MemTableTest, DeletionShadowsValue) {
  mem_->Add(1, kTypeValue, "k", "v");
  mem_->Add(2, kTypeDeletion, "k", "");

  std::string value;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey("k", 10), &value, &s));
  ASSERT_TRUE(s.IsNotFound());

  // Older snapshot still sees the value.
  s = Status::OK();
  ASSERT_TRUE(mem_->Get(LookupKey("k", 1), &value, &s));
  ASSERT_TRUE(s.ok());
  ASSERT_EQ("v", value);
}

TEST_F(MemTableTest, IteratorYieldsInternalKeyOrder) {
  mem_->Add(3, kTypeValue, "b", "3");
  mem_->Add(1, kTypeValue, "a", "1");
  mem_->Add(2, kTypeValue, "c", "2");
  mem_->Add(4, kTypeValue, "a", "4");  // Newer version of "a".

  std::unique_ptr<Iterator> iter(mem_->NewIterator());
  iter->SeekToFirst();

  // "a"@4 sorts before "a"@1 (newer first), then b, then c.
  std::vector<std::pair<std::string, uint64_t>> got;
  for (; iter->Valid(); iter->Next()) {
    ParsedInternalKey parsed;
    ASSERT_TRUE(ParseInternalKey(iter->key(), &parsed));
    got.push_back({parsed.user_key.ToString(), parsed.sequence});
  }
  ASSERT_EQ(4u, got.size());
  ASSERT_EQ(std::make_pair(std::string("a"), uint64_t{4}), got[0]);
  ASSERT_EQ(std::make_pair(std::string("a"), uint64_t{1}), got[1]);
  ASSERT_EQ(std::make_pair(std::string("b"), uint64_t{3}), got[2]);
  ASSERT_EQ(std::make_pair(std::string("c"), uint64_t{2}), got[3]);
}

TEST_F(MemTableTest, EmptyValueAndBinaryData) {
  std::string key("bin\0key", 7);
  std::string value("\0\1\2\xff", 4);
  mem_->Add(1, kTypeValue, key, value);
  mem_->Add(2, kTypeValue, "empty", "");

  std::string got;
  Status s;
  ASSERT_TRUE(mem_->Get(LookupKey(key, 5), &got, &s));
  ASSERT_EQ(value, got);
  ASSERT_TRUE(mem_->Get(LookupKey("empty", 5), &got, &s));
  ASSERT_EQ("", got);
}

TEST_F(MemTableTest, MemoryUsageGrows) {
  size_t before = mem_->ApproximateMemoryUsage();
  for (int i = 0; i < 1000; i++) {
    mem_->Add(i + 1, kTypeValue, "key" + std::to_string(i),
              std::string(100, 'v'));
  }
  ASSERT_GT(mem_->ApproximateMemoryUsage(), before + 100 * 1000);
}

}  // namespace fcae
