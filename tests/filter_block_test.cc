#include "table/filter_block.h"

#include <memory>

#include "gtest/gtest.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/filter_policy.h"

namespace fcae {

// A trivial deterministic filter for structural tests: records key
// hashes verbatim.
class TestHashFilter : public FilterPolicy {
 public:
  const char* Name() const override { return "TestHashFilter"; }

  void CreateFilter(const Slice* keys, int n, std::string* dst) const override {
    for (int i = 0; i < n; i++) {
      uint32_t h = crc32c::Value(keys[i].data(), keys[i].size());
      PutFixed32(dst, h);
    }
  }

  bool KeyMayMatch(const Slice& key, const Slice& filter) const override {
    uint32_t h = crc32c::Value(key.data(), key.size());
    for (size_t i = 0; i + 4 <= filter.size(); i += 4) {
      if (h == DecodeFixed32(filter.data() + i)) {
        return true;
      }
    }
    return false;
  }
};

class FilterBlockTest : public testing::Test {
 public:
  TestHashFilter policy_;
};

TEST_F(FilterBlockTest, EmptyBuilder) {
  FilterBlockBuilder builder(&policy_);
  Slice block = builder.Finish();
  ASSERT_EQ("\\x00\\x00\\x00\\x00\\x0b",
            [&] {
              std::string s;
              for (char c : block.ToStringView()) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\x%02x",
                              static_cast<unsigned char>(c));
                s += buf;
              }
              return s;
            }());
  FilterBlockReader reader(&policy_, block);
  ASSERT_TRUE(reader.KeyMayMatch(0, "foo"));
  ASSERT_TRUE(reader.KeyMayMatch(100000, "foo"));
}

TEST_F(FilterBlockTest, SingleChunk) {
  FilterBlockBuilder builder(&policy_);
  builder.StartBlock(100);
  builder.AddKey("foo");
  builder.AddKey("bar");
  builder.AddKey("box");
  builder.StartBlock(200);
  builder.AddKey("box");
  builder.StartBlock(300);
  builder.AddKey("hello");
  Slice block = builder.Finish();
  FilterBlockReader reader(&policy_, block);
  ASSERT_TRUE(reader.KeyMayMatch(100, "foo"));
  ASSERT_TRUE(reader.KeyMayMatch(100, "bar"));
  ASSERT_TRUE(reader.KeyMayMatch(100, "box"));
  ASSERT_TRUE(reader.KeyMayMatch(100, "hello"));
  ASSERT_TRUE(reader.KeyMayMatch(100, "foo"));
  ASSERT_FALSE(reader.KeyMayMatch(100, "missing"));
  ASSERT_FALSE(reader.KeyMayMatch(100, "other"));
}

TEST_F(FilterBlockTest, MultiChunk) {
  FilterBlockBuilder builder(&policy_);

  // First filter
  builder.StartBlock(0);
  builder.AddKey("foo");
  builder.StartBlock(2000);
  builder.AddKey("bar");

  // Second filter
  builder.StartBlock(3100);
  builder.AddKey("box");

  // Third filter is empty

  // Last filter
  builder.StartBlock(9000);
  builder.AddKey("box");
  builder.AddKey("hello");

  Slice block = builder.Finish();
  FilterBlockReader reader(&policy_, block);

  // Check first filter
  ASSERT_TRUE(reader.KeyMayMatch(0, "foo"));
  ASSERT_TRUE(reader.KeyMayMatch(2000, "bar"));
  ASSERT_FALSE(reader.KeyMayMatch(0, "box"));
  ASSERT_FALSE(reader.KeyMayMatch(0, "hello"));

  // Check second filter
  ASSERT_TRUE(reader.KeyMayMatch(3100, "box"));
  ASSERT_FALSE(reader.KeyMayMatch(3100, "foo"));
  ASSERT_FALSE(reader.KeyMayMatch(3100, "bar"));
  ASSERT_FALSE(reader.KeyMayMatch(3100, "hello"));

  // Check third filter (empty)
  ASSERT_FALSE(reader.KeyMayMatch(4100, "foo"));
  ASSERT_FALSE(reader.KeyMayMatch(4100, "bar"));
  ASSERT_FALSE(reader.KeyMayMatch(4100, "box"));
  ASSERT_FALSE(reader.KeyMayMatch(4100, "hello"));

  // Check last filter
  ASSERT_TRUE(reader.KeyMayMatch(9000, "box"));
  ASSERT_TRUE(reader.KeyMayMatch(9000, "hello"));
  ASSERT_FALSE(reader.KeyMayMatch(9000, "foo"));
  ASSERT_FALSE(reader.KeyMayMatch(9000, "bar"));
}

TEST_F(FilterBlockTest, BloomIntegration) {
  std::unique_ptr<const FilterPolicy> bloom(NewBloomFilterPolicy(10));
  FilterBlockBuilder builder(bloom.get());
  builder.StartBlock(0);
  for (int i = 0; i < 1000; i++) {
    builder.AddKey("key" + std::to_string(i));
  }
  Slice block = builder.Finish();
  FilterBlockReader reader(bloom.get(), block);
  for (int i = 0; i < 1000; i++) {
    ASSERT_TRUE(reader.KeyMayMatch(0, "key" + std::to_string(i)));
  }
  int false_positives = 0;
  for (int i = 0; i < 1000; i++) {
    if (reader.KeyMayMatch(0, "absent" + std::to_string(i))) {
      false_positives++;
    }
  }
  ASSERT_LT(false_positives, 40);
}

}  // namespace fcae
