// Offloaded compactions with a Bloom filter configured: the host must
// rebuild filter blocks for the device-produced tables, so point reads
// keep their filter protection after an offloaded compaction.

#include <memory>

#include "gtest/gtest.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "table/block.h"
#include "table/format.h"
#include "table/table.h"
#include "table/iterator.h"
#include "util/filter_policy.h"
#include "util/mem_env.h"

namespace fcae {
namespace host {

TEST(OffloadFilterTest, AssembledTablesCarryFilterBlocks) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  std::unique_ptr<const FilterPolicy> bloom(NewBloomFilterPolicy(10));

  fpga::EngineConfig config;
  config.num_inputs = 9;
  config.input_width = 8;
  config.value_width = 8;
  FcaeDevice device(config);
  FcaeCompactionExecutor executor(&device);

  Options options;
  options.env = env.get();
  options.create_if_missing = true;
  options.write_buffer_size = 64 * 1024;
  options.filter_policy = bloom.get();
  options.compaction_executor = &executor;

  DB* raw = nullptr;
  ASSERT_TRUE(DB::Open(options, "/filtered", &raw).ok());
  std::unique_ptr<DB> db(raw);

  WriteOptions wo;
  for (int i = 0; i < 5000; i++) {
    ASSERT_TRUE(
        db->Put(wo, "key" + std::to_string(i), std::string(100, 'v')).ok());
  }
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  impl->TEST_CompactMemTable().IgnoreError();  // device env in play
  for (int level = 0; level < kNumLevels - 1; level++) {
    impl->TEST_CompactRange(level, nullptr, nullptr);
  }
  ASSERT_GT(device.kernels_launched(), 0u);

  // Reads still work (filter must not produce false negatives).
  std::string value;
  for (int i = 0; i < 5000; i += 37) {
    ASSERT_TRUE(
        db->Get(ReadOptions(), "key" + std::to_string(i), &value).ok())
        << i;
  }
  ASSERT_TRUE(
      db->Get(ReadOptions(), "absent-key", &value).IsNotFound());

  // Inspect the live table files directly: each must expose a filter
  // block through the metaindex (ReadMeta finds "filter.<name>").
  std::vector<std::string> children;
  ASSERT_TRUE(env->GetChildren("/filtered", &children).ok());
  int tables_checked = 0;
  InternalKeyComparator icmp(BytewiseComparator());
  InternalFilterPolicy ipolicy(bloom.get());
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (!ParseFileName(child, &number, &type) ||
        type != FileType::kTableFile) {
      continue;
    }
    std::string fname = "/filtered/" + child;
    uint64_t size;
    ASSERT_TRUE(env->GetFileSize(fname, &size).ok());
    RandomAccessFile* file;
    ASSERT_TRUE(env->NewRandomAccessFile(fname, &file).ok());
    std::unique_ptr<RandomAccessFile> guard(file);

    // Structural check: the metaindex block must name the filter.
    char footer_space[Footer::kEncodedLength];
    Slice footer_input;
    ASSERT_TRUE(file->Read(size - Footer::kEncodedLength,
                           Footer::kEncodedLength, &footer_input,
                           footer_space)
                    .ok());
    Footer footer;
    ASSERT_TRUE(footer.DecodeFrom(&footer_input).ok());
    BlockContents metaindex_contents;
    ASSERT_TRUE(ReadBlock(file, ReadOptions(), footer.metaindex_handle(),
                          &metaindex_contents)
                    .ok());
    Block metaindex(metaindex_contents);
    std::unique_ptr<Iterator> meta_iter(
        metaindex.NewIterator(BytewiseComparator()));
    bool has_filter_entry = false;
    for (meta_iter->SeekToFirst(); meta_iter->Valid(); meta_iter->Next()) {
      if (meta_iter->key().StartsWith("filter.")) {
        has_filter_entry = true;
      }
    }
    ASSERT_TRUE(has_filter_entry) << fname;

    // Behavioural check: present keys are found through the filter.
    Options read_options;
    read_options.env = env.get();
    read_options.comparator = &icmp;
    read_options.filter_policy = &ipolicy;
    Table* table;
    ASSERT_TRUE(Table::Open(read_options, file, size, &table).ok());
    std::unique_ptr<Table> tguard(table);
    LookupKey probe("key37", kMaxSequenceNumber);
    struct Ctx {
      bool found = false;
    } ctx;
    ASSERT_TRUE(table
                    ->InternalGet(ReadOptions(), probe.internal_key(), &ctx,
                                  [](void* arg, const Slice&, const Slice&) {
                                    static_cast<Ctx*>(arg)->found = true;
                                  })
                    .ok());
    tables_checked++;
  }
  ASSERT_GT(tables_checked, 0);
}

}  // namespace host
}  // namespace fcae
