// Unit tests for the parallel compaction scheduler's bookkeeping:
// shard-boundary planning, level-claim disjointness, worker-cap
// enforcement, manifest serialization, and shutdown drain. The
// scheduler expects the DB mutex held around every call; these tests
// are single-threaded (or hold the mutex explicitly), which satisfies
// the same protocol.

#include "lsm/compaction_scheduler.h"

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "gtest/gtest.h"
#include "lsm/dbformat.h"
#include "lsm/version_edit.h"
#include "util/comparator.h"
#include "util/env.h"
#include "util/mutex.h"

namespace fcae {

namespace {

/// Records pool dispatches instead of running them, so scheduled-worker
/// accounting can be asserted deterministically with no real threads.
class RecordingEnv : public Env {
 public:
  struct Dispatch {
    std::string pool;
    int max_threads;
  };
  std::vector<Dispatch> dispatches;

  Status NewSequentialFile(const std::string& fname,
                           SequentialFile** result) override {
    return Status::NotSupported(fname);
  }
  Status NewRandomAccessFile(const std::string& fname,
                             RandomAccessFile** result) override {
    return Status::NotSupported(fname);
  }
  Status NewWritableFile(const std::string& fname,
                         WritableFile** result) override {
    return Status::NotSupported(fname);
  }
  Status NewAppendableFile(const std::string& fname,
                           WritableFile** result) override {
    return Status::NotSupported(fname);
  }
  bool FileExists(const std::string& fname) override { return false; }
  Status GetChildren(const std::string& dir,
                     std::vector<std::string>* result) override {
    return Status::NotSupported(dir);
  }
  Status RemoveFile(const std::string& fname) override {
    return Status::NotSupported(fname);
  }
  Status CreateDir(const std::string& dirname) override {
    return Status::NotSupported(dirname);
  }
  Status RemoveDir(const std::string& dirname) override {
    return Status::NotSupported(dirname);
  }
  Status GetFileSize(const std::string& fname, uint64_t* size) override {
    return Status::NotSupported(fname);
  }
  Status RenameFile(const std::string& src, const std::string& target) override {
    return Status::NotSupported(src);
  }
  Status LockFile(const std::string& fname, FileLock** lock) override {
    return Status::NotSupported(fname);
  }
  Status UnlockFile(FileLock* lock) override {
    return Status::NotSupported("unlock");
  }
  void Schedule(void (*function)(void*), void* arg) override {
    SchedulePool("default", 1, function, arg);
  }
  void SchedulePool(const char* pool, int max_threads, void (*function)(void*),
                    void* arg) override {
    dispatches.push_back({pool, max_threads});
  }
  void StartThread(void (*function)(void*), void* arg) override {}
  uint64_t NowMicros() override { return 0; }
  void SleepForMicroseconds(int micros) override {}
};

void NoopWork(void*) {}

FileMetaData MakeFile(uint64_t number, const std::string& smallest,
                      const std::string& largest) {
  FileMetaData f;
  f.number = number;
  f.file_size = 1 << 20;
  f.smallest = InternalKey(smallest, 100, kTypeValue);
  f.largest = InternalKey(largest, 100, kTypeValue);
  return f;
}

std::vector<FileMetaData*> Pointers(std::vector<FileMetaData>& files) {
  std::vector<FileMetaData*> out;
  for (FileMetaData& f : files) out.push_back(&f);
  return out;
}

}  // namespace

class CompactionSchedulerTest : public testing::Test {
 protected:
  CompactionSchedulerTest() : cv_(&mu_), icmp_(BytewiseComparator()) {}

  RecordingEnv env_;
  Mutex mu_;
  CondVar cv_;
  InternalKeyComparator icmp_;
};

TEST_F(CompactionSchedulerTest, PlanShardBoundariesSplitsParentRun) {
  // Four parent files split across the file grid: boundaries are the
  // largest user keys of the last file in each shard's run.
  std::vector<FileMetaData> files = {MakeFile(1, "a", "b"), MakeFile(2, "c", "d"),
                                     MakeFile(3, "e", "f"),
                                     MakeFile(4, "g", "h")};
  std::vector<FileMetaData*> parents = Pointers(files);

  std::vector<std::string> two =
      CompactionScheduler::PlanShardBoundaries(parents, icmp_, 2);
  ASSERT_EQ(two.size(), 1u);
  EXPECT_EQ(two[0], "d");

  std::vector<std::string> four =
      CompactionScheduler::PlanShardBoundaries(parents, icmp_, 4);
  ASSERT_EQ(four.size(), 3u);
  EXPECT_EQ(four[0], "b");
  EXPECT_EQ(four[1], "d");
  EXPECT_EQ(four[2], "f");
}

TEST_F(CompactionSchedulerTest, PlanShardBoundariesTooSmallToSplit) {
  std::vector<FileMetaData> one = {MakeFile(1, "a", "m")};
  std::vector<FileMetaData*> parents = Pointers(one);
  EXPECT_TRUE(CompactionScheduler::PlanShardBoundaries(parents, icmp_, 4).empty());

  std::vector<FileMetaData*> none;
  EXPECT_TRUE(CompactionScheduler::PlanShardBoundaries(none, icmp_, 4).empty());

  // max_shards <= 1 disables sharding regardless of input size.
  std::vector<FileMetaData> many = {MakeFile(1, "a", "b"), MakeFile(2, "c", "d"),
                                    MakeFile(3, "e", "f")};
  std::vector<FileMetaData*> parents3 = Pointers(many);
  EXPECT_TRUE(CompactionScheduler::PlanShardBoundaries(parents3, icmp_, 1).empty());
}

TEST_F(CompactionSchedulerTest, PlanShardBoundariesClampedByFileCount) {
  // Two files can produce at most two shards (one boundary), no matter
  // how many sub-compactions the options ask for.
  std::vector<FileMetaData> files = {MakeFile(1, "a", "f"),
                                     MakeFile(2, "g", "p")};
  std::vector<FileMetaData*> parents = Pointers(files);
  std::vector<std::string> b =
      CompactionScheduler::PlanShardBoundaries(parents, icmp_, 8);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], "f");
}

TEST_F(CompactionSchedulerTest, PlanShardBoundariesDedupsEqualUserKeys) {
  // Many parents ending at the same user key must not produce equal
  // boundaries: shards cover (lower, upper] user-key ranges, so a
  // repeated boundary would make an empty shard.
  std::vector<FileMetaData> files = {MakeFile(1, "a", "c"), MakeFile(2, "c", "c"),
                                     MakeFile(3, "c", "c"),
                                     MakeFile(4, "d", "z")};
  std::vector<FileMetaData*> parents = Pointers(files);
  std::vector<std::string> b =
      CompactionScheduler::PlanShardBoundaries(parents, icmp_, 4);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], "c");
}

TEST_F(CompactionSchedulerTest, LevelClaimsAreDisjoint) {
  CompactionScheduler s(&env_, &cv_, 4, nullptr);

  EXPECT_TRUE(s.LevelsFree(0));
  s.BeginCompaction(0);  // Claims {0, 1}.
  EXPECT_FALSE(s.LevelsFree(0));
  EXPECT_FALSE(s.LevelsFree(1));  // Would touch level 1.
  EXPECT_TRUE(s.LevelsFree(2));
  EXPECT_EQ(s.running_compactions(), 1);

  s.BeginCompaction(2);  // Claims {2, 3}; disjoint from {0, 1}.
  EXPECT_FALSE(s.LevelsFree(2));
  EXPECT_FALSE(s.LevelsFree(3));
  EXPECT_TRUE(s.LevelsFree(4));
  EXPECT_EQ(s.running_compactions(), 2);

  // A flush may not install into a level inside a claimed pair.
  EXPECT_FALSE(s.FlushLevelFree(1));
  EXPECT_FALSE(s.FlushLevelFree(3));
  EXPECT_TRUE(s.FlushLevelFree(4));
  s.ReserveFlushLevel(4);
  EXPECT_FALSE(s.FlushLevelFree(4));
  EXPECT_FALSE(s.LevelsFree(4));  // Compaction 4->5 would hit the flush.
  EXPECT_FALSE(s.LevelsFree(3));

  s.EndCompaction(0);
  EXPECT_TRUE(s.LevelsFree(0));
  EXPECT_EQ(s.running_compactions(), 1);
  s.EndCompaction(2);
  s.ReleaseFlushLevel(4);
  EXPECT_EQ(s.busy_levels(), 0u);
  EXPECT_EQ(s.running_compactions(), 0);
}

TEST_F(CompactionSchedulerTest, WorkerCapEnforced) {
  CompactionScheduler s(&env_, &cv_, 2, nullptr);
  EXPECT_EQ(s.max_workers(), 2);

  EXPECT_TRUE(s.CanScheduleCompaction());
  s.ScheduleCompaction(&NoopWork, nullptr);
  EXPECT_TRUE(s.CanScheduleCompaction());
  s.ScheduleCompaction(&NoopWork, nullptr);
  EXPECT_FALSE(s.CanScheduleCompaction());
  EXPECT_EQ(s.scheduled_workers(), 2);
  EXPECT_EQ(s.idle_scheduled_workers(), 2);

  // Dispatches land on the named compaction pool sized to the cap.
  ASSERT_EQ(env_.dispatches.size(), 2u);
  EXPECT_EQ(env_.dispatches[0].pool, "fcae-compact");
  EXPECT_EQ(env_.dispatches[0].max_threads, 2);

  // A worker that claims a level pair is no longer idle; dispatch logic
  // uses idle_scheduled_workers() to avoid over-scheduling.
  s.BeginCompaction(0);
  EXPECT_EQ(s.idle_scheduled_workers(), 1);
  s.EndCompaction(0);

  s.WorkerFinished();
  EXPECT_TRUE(s.CanScheduleCompaction());
  s.WorkerFinished();
  EXPECT_EQ(s.scheduled_workers(), 0);
}

TEST_F(CompactionSchedulerTest, FlushLaneIsSeparateFromWorkers) {
  CompactionScheduler s(&env_, &cv_, 1, nullptr);
  EXPECT_FALSE(s.flush_scheduled());
  s.ScheduleFlush(&NoopWork, nullptr);
  EXPECT_TRUE(s.flush_scheduled());
  // The flush does not consume a compaction worker slot.
  EXPECT_TRUE(s.CanScheduleCompaction());
  ASSERT_EQ(env_.dispatches.size(), 1u);
  EXPECT_EQ(env_.dispatches[0].pool, "fcae-flush");
  EXPECT_EQ(env_.dispatches[0].max_threads, 1);
  s.FlushFinished();
  EXPECT_FALSE(s.flush_scheduled());
}

TEST_F(CompactionSchedulerTest, ShutdownDrainTracksAllLanes) {
  CompactionScheduler s(&env_, &cv_, 2, nullptr);
  EXPECT_FALSE(s.HasBackgroundWork());

  s.ScheduleFlush(&NoopWork, nullptr);
  EXPECT_TRUE(s.HasBackgroundWork());
  s.ScheduleCompaction(&NoopWork, nullptr);
  EXPECT_TRUE(s.HasBackgroundWork());

  s.FlushFinished();
  EXPECT_TRUE(s.HasBackgroundWork());  // Worker still out.
  s.WorkerFinished();
  EXPECT_FALSE(s.HasBackgroundWork());
}

TEST_F(CompactionSchedulerTest, ManifestLockSerializesWriters) {
  CompactionScheduler s(&env_, &cv_, 2, nullptr);

  mu_.Lock();
  s.LockManifest();
  mu_.Unlock();

  std::atomic<bool> second_entered{false};
  std::thread contender([&]() {
    mu_.Lock();
    s.LockManifest();  // Blocks until the holder unlocks.
    second_entered.store(true);
    s.UnlockManifest();
    mu_.Unlock();
  });

  // The contender must be parked, not inside the critical section.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(second_entered.load());

  mu_.Lock();
  s.UnlockManifest();  // SignalAll wakes the contender.
  mu_.Unlock();
  contender.join();
  EXPECT_TRUE(second_entered.load());
}

TEST_F(CompactionSchedulerTest, DebugStringReportsCounts) {
  CompactionScheduler s(&env_, &cv_, 3, nullptr);
  s.ScheduleCompaction(&NoopWork, nullptr);
  s.BeginCompaction(1);
  s.RecordShardedJob(4);
  std::string d = s.DebugString();
  EXPECT_NE(d.find("workers=1/3"), std::string::npos) << d;
  EXPECT_NE(d.find("running=1"), std::string::npos) << d;
  EXPECT_NE(d.find("sharded-jobs=1"), std::string::npos) << d;
  EXPECT_NE(d.find("shards=4"), std::string::npos) << d;
  s.EndCompaction(1);
  s.WorkerFinished();
}

}  // namespace fcae
