#include "util/cache.h"

#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "util/coding.h"

namespace fcae {

// Conversions between numeric keys/values and the types expected by
// Cache.
static std::string EncodeKey(int k) {
  std::string result;
  PutFixed32(&result, k);
  return result;
}
static int DecodeKey(const Slice& k) {
  assert(k.size() == 4);
  return DecodeFixed32(k.data());
}
static void* EncodeValue(uintptr_t v) { return reinterpret_cast<void*>(v); }
static int DecodeValue(void* v) { return reinterpret_cast<uintptr_t>(v); }

class CacheTest : public testing::Test {
 public:
  static void Deleter(const Slice& key, void* v) {
    current_->deleted_keys_.push_back(DecodeKey(key));
    current_->deleted_values_.push_back(DecodeValue(v));
  }

  static constexpr int kCacheSize = 1000;
  std::vector<int> deleted_keys_;
  std::vector<int> deleted_values_;
  Cache* cache_;

  CacheTest() : cache_(NewLRUCache(kCacheSize)) { current_ = this; }

  ~CacheTest() override { delete cache_; }

  int Lookup(int key) {
    Cache::Handle* handle = cache_->Lookup(EncodeKey(key));
    const int r = (handle == nullptr) ? -1 : DecodeValue(cache_->Value(handle));
    if (handle != nullptr) {
      cache_->Release(handle);
    }
    return r;
  }

  void Insert(int key, int value, int charge = 1) {
    cache_->Release(cache_->Insert(EncodeKey(key), EncodeValue(value), charge,
                                   &CacheTest::Deleter));
  }

  Cache::Handle* InsertAndReturnHandle(int key, int value, int charge = 1) {
    return cache_->Insert(EncodeKey(key), EncodeValue(value), charge,
                          &CacheTest::Deleter);
  }

  void Erase(int key) { cache_->Erase(EncodeKey(key)); }
  static CacheTest* current_;
};
CacheTest* CacheTest::current_;

TEST_F(CacheTest, HitAndMiss) {
  ASSERT_EQ(-1, Lookup(100));

  Insert(100, 101);
  ASSERT_EQ(101, Lookup(100));
  ASSERT_EQ(-1, Lookup(200));
  ASSERT_EQ(-1, Lookup(300));

  Insert(200, 201);
  ASSERT_EQ(101, Lookup(100));
  ASSERT_EQ(201, Lookup(200));
  ASSERT_EQ(-1, Lookup(300));

  Insert(100, 102);
  ASSERT_EQ(102, Lookup(100));
  ASSERT_EQ(201, Lookup(200));
  ASSERT_EQ(-1, Lookup(300));

  ASSERT_EQ(1u, deleted_keys_.size());
  ASSERT_EQ(100, deleted_keys_[0]);
  ASSERT_EQ(101, deleted_values_[0]);
}

TEST_F(CacheTest, Erase) {
  Erase(200);
  ASSERT_EQ(0u, deleted_keys_.size());

  Insert(100, 101);
  Insert(200, 201);
  Erase(100);
  ASSERT_EQ(-1, Lookup(100));
  ASSERT_EQ(201, Lookup(200));
  ASSERT_EQ(1u, deleted_keys_.size());
  ASSERT_EQ(100, deleted_keys_[0]);
  ASSERT_EQ(101, deleted_values_[0]);

  Erase(100);
  ASSERT_EQ(-1, Lookup(100));
  ASSERT_EQ(201, Lookup(200));
  ASSERT_EQ(1u, deleted_keys_.size());
}

TEST_F(CacheTest, EntriesArePinned) {
  Insert(100, 101);
  Cache::Handle* h1 = cache_->Lookup(EncodeKey(100));
  ASSERT_EQ(101, DecodeValue(cache_->Value(h1)));

  Insert(100, 102);
  Cache::Handle* h2 = cache_->Lookup(EncodeKey(100));
  ASSERT_EQ(102, DecodeValue(cache_->Value(h2)));
  ASSERT_EQ(0u, deleted_keys_.size());

  cache_->Release(h1);
  ASSERT_EQ(1u, deleted_keys_.size());
  ASSERT_EQ(100, deleted_keys_[0]);
  ASSERT_EQ(101, deleted_values_[0]);

  Erase(100);
  ASSERT_EQ(-1, Lookup(100));
  ASSERT_EQ(1u, deleted_keys_.size());

  cache_->Release(h2);
  ASSERT_EQ(2u, deleted_keys_.size());
  ASSERT_EQ(100, deleted_keys_[1]);
  ASSERT_EQ(102, deleted_values_[1]);
}

TEST_F(CacheTest, EvictionPolicy) {
  Insert(100, 101);
  Insert(200, 201);
  Insert(300, 301);
  Cache::Handle* h = cache_->Lookup(EncodeKey(300));

  // Frequently used entry must be kept around, as must things that are
  // still in use.
  for (int i = 0; i < kCacheSize + 100; i++) {
    Insert(1000 + i, 2000 + i);
    ASSERT_EQ(2000 + i, Lookup(1000 + i));
    ASSERT_EQ(101, Lookup(100));
  }
  ASSERT_EQ(101, Lookup(100));
  ASSERT_EQ(-1, Lookup(200));
  ASSERT_EQ(301, Lookup(300));
  cache_->Release(h);
}

TEST_F(CacheTest, UseExceedsCacheSize) {
  // Overfill the cache, keeping handles on all inserted entries.
  std::vector<Cache::Handle*> h;
  for (int i = 0; i < kCacheSize + 100; i++) {
    h.push_back(InsertAndReturnHandle(1000 + i, 2000 + i));
  }

  // Check that all the entries can be found in the cache.
  for (size_t i = 0; i < h.size(); i++) {
    ASSERT_EQ(2000 + static_cast<int>(i), Lookup(1000 + static_cast<int>(i)));
  }

  for (size_t i = 0; i < h.size(); i++) {
    cache_->Release(h[i]);
  }
}

TEST_F(CacheTest, HeavyEntries) {
  // Add a bunch of light and heavy entries and then count the combined
  // size of items still in the cache, which must be approximately the
  // same as the total capacity.
  const int kLight = 1;
  const int kHeavy = 10;
  int added = 0;
  int index = 0;
  while (added < 2 * kCacheSize) {
    const int weight = (index & 1) ? kLight : kHeavy;
    Insert(index, 1000 + index, weight);
    added += weight;
    index++;
  }

  int cached_weight = 0;
  for (int i = 0; i < index; i++) {
    const int weight = (i & 1 ? kLight : kHeavy);
    int r = Lookup(i);
    if (r >= 0) {
      cached_weight += weight;
      ASSERT_EQ(1000 + i, r);
    }
  }
  ASSERT_LE(cached_weight, kCacheSize + kCacheSize / 10);
}

TEST_F(CacheTest, NewId) {
  uint64_t a = cache_->NewId();
  uint64_t b = cache_->NewId();
  ASSERT_NE(a, b);
}

TEST_F(CacheTest, Prune) {
  Insert(1, 100);
  Insert(2, 200);

  Cache::Handle* handle = cache_->Lookup(EncodeKey(1));
  ASSERT_TRUE(handle);
  cache_->Prune();
  cache_->Release(handle);

  ASSERT_EQ(100, Lookup(1));
  ASSERT_EQ(-1, Lookup(2));
}

TEST_F(CacheTest, ZeroSizeCache) {
  delete cache_;
  cache_ = NewLRUCache(0);

  Insert(1, 100);
  ASSERT_EQ(-1, Lookup(1));
}

}  // namespace fcae
