#include "util/comparator.h"

#include "gtest/gtest.h"

namespace fcae {

TEST(Comparator, Bytewise) {
  const Comparator* cmp = BytewiseComparator();
  ASSERT_LT(cmp->Compare("abc", "abd"), 0);
  ASSERT_GT(cmp->Compare("abd", "abc"), 0);
  ASSERT_EQ(cmp->Compare("abc", "abc"), 0);
  ASSERT_LT(cmp->Compare("ab", "abc"), 0);
}

TEST(Comparator, Name) {
  ASSERT_STREQ("fcae.BytewiseComparator", BytewiseComparator()->Name());
}

TEST(Comparator, FindShortestSeparator) {
  const Comparator* cmp = BytewiseComparator();

  std::string start = "abcdefghij";
  cmp->FindShortestSeparator(&start, "abzzzzzzzz");
  // Must remain >= original start and < limit, and be shorter.
  ASSERT_GE(cmp->Compare(start, "abcdefghij"), 0);
  ASSERT_LT(cmp->Compare(start, "abzzzzzzzz"), 0);
  ASSERT_LE(start.size(), 10u);

  // Prefix case: must not change.
  start = "abc";
  cmp->FindShortestSeparator(&start, "abcdef");
  ASSERT_EQ("abc", start);

  // Adjacent bytes: cannot shorten.
  start = "abc1";
  cmp->FindShortestSeparator(&start, "abc2");
  ASSERT_GE(cmp->Compare(start, "abc1"), 0);
  ASSERT_LT(cmp->Compare(start, "abc2"), 0);
}

TEST(Comparator, FindShortSuccessor) {
  const Comparator* cmp = BytewiseComparator();

  std::string key = "abcd";
  cmp->FindShortSuccessor(&key);
  ASSERT_GT(cmp->Compare(key, "abcd"), 0);
  ASSERT_LE(key.size(), 4u);

  // All-0xff keys cannot be incremented.
  key = std::string(4, static_cast<char>(0xff));
  std::string original = key;
  cmp->FindShortSuccessor(&key);
  ASSERT_EQ(original, key);

  // 0xff prefix followed by incrementable byte.
  key = std::string(1, static_cast<char>(0xff)) + "a";
  cmp->FindShortSuccessor(&key);
  ASSERT_GT(cmp->Compare(key, std::string(1, static_cast<char>(0xff)) + "a"),
            0);
}

}  // namespace fcae
