#include "syssim/lsm_state.h"

#include "gtest/gtest.h"

namespace fcae {
namespace syssim {

namespace {
constexpr double kMB = 1048576.0;
constexpr double kFileSize = 2 * kMB;
}  // namespace

TEST(LsmStateTest, EmptyNeedsNoCompaction) {
  LsmState lsm(kFileSize, 10);
  CompactionWork work;
  EXPECT_FALSE(lsm.PickCompaction(&work));
  EXPECT_EQ(-1, lsm.DeepestLevel());
  EXPECT_EQ(0, lsm.PopulatedLevels());
}

TEST(LsmStateTest, L0TriggerAtFourFiles) {
  LsmState lsm(kFileSize, 10);
  CompactionWork work;
  for (int i = 0; i < 3; i++) {
    lsm.AddL0File(2 * kMB);
    EXPECT_FALSE(lsm.PickCompaction(&work)) << i;
  }
  lsm.AddL0File(2 * kMB);
  ASSERT_TRUE(lsm.PickCompaction(&work));
  EXPECT_EQ(0, work.level);
  EXPECT_EQ(4, work.l0_files_consumed);
  // 4 L0 files + empty L1: 4 engine inputs.
  EXPECT_EQ(4, work.device_inputs);
  EXPECT_DOUBLE_EQ(8 * kMB, work.input_bytes);
}

TEST(LsmStateTest, L0CompactionDragsL1) {
  LsmState lsm(kFileSize, 10);
  for (int i = 0; i < 4; i++) lsm.AddL0File(2 * kMB);
  CompactionWork work;
  ASSERT_TRUE(lsm.PickCompaction(&work));
  lsm.ApplyCompaction(work);
  EXPECT_EQ(0, lsm.l0_files());
  EXPECT_GT(lsm.level_bytes(1), 0);

  // Second round now overlaps L1: one extra engine input.
  for (int i = 0; i < 4; i++) lsm.AddL0File(2 * kMB);
  ASSERT_TRUE(lsm.PickCompaction(&work));
  EXPECT_EQ(5, work.device_inputs);
  EXPECT_GT(work.input_bytes, 8 * kMB);
}

TEST(LsmStateTest, DeepLevelTriggersOnBytes) {
  LsmState lsm(kFileSize, 10);
  // Push ~12 MB into L1 (cap 10 MB) via L0 compactions.
  for (int round = 0; round < 2; round++) {
    for (int i = 0; i < 4; i++) lsm.AddL0File(2 * kMB);
    CompactionWork work;
    ASSERT_TRUE(lsm.PickCompaction(&work));
    ASSERT_EQ(0, work.level);
    lsm.ApplyCompaction(work);
  }
  ASSERT_GT(lsm.level_bytes(1), 10 * kMB);
  CompactionWork work;
  ASSERT_TRUE(lsm.PickCompaction(&work));
  EXPECT_EQ(1, work.level);
  EXPECT_EQ(1, work.device_inputs);  // L1 run only: L2 is still empty.
  lsm.ApplyCompaction(work);
  EXPECT_GT(lsm.level_bytes(2), 0);
}

TEST(LsmStateTest, MaxBytesScalesWithLevelingRatio) {
  LsmState r10(kFileSize, 10);
  EXPECT_DOUBLE_EQ(10 * kMB * 10, r10.MaxBytesForLevel(1) * 10);
  EXPECT_DOUBLE_EQ(r10.MaxBytesForLevel(2), r10.MaxBytesForLevel(1) * 10);

  LsmState r4(kFileSize, 4);
  EXPECT_DOUBLE_EQ(r4.MaxBytesForLevel(3), r4.MaxBytesForLevel(1) * 16);
}

TEST(LsmStateTest, SnapshotSemanticsAcrossConcurrentFlush) {
  LsmState lsm(kFileSize, 10);
  for (int i = 0; i < 4; i++) lsm.AddL0File(2 * kMB);
  CompactionWork work;
  ASSERT_TRUE(lsm.PickCompaction(&work));

  // A flush lands while the compaction is "running".
  lsm.AddL0File(2 * kMB);
  lsm.ApplyCompaction(work);

  // The late file must survive.
  EXPECT_EQ(1, lsm.l0_files());
  EXPECT_DOUBLE_EQ(2 * kMB, lsm.level_bytes(0));
}

TEST(LsmStateTest, OverlapBoundedByConfiguredFiles) {
  LsmState lsm(kFileSize, 10, /*overlap_files=*/3.0);
  // Fill L1 well past its cap and L2 with plenty of data.
  for (int round = 0; round < 12; round++) {
    for (int i = 0; i < 4; i++) lsm.AddL0File(2 * kMB);
    CompactionWork work;
    ASSERT_TRUE(lsm.PickCompaction(&work));
    lsm.ApplyCompaction(work);
  }
  // Find an L>=1 compaction and check the overlap bound.
  CompactionWork work;
  ASSERT_TRUE(lsm.PickCompaction(&work));
  if (work.level >= 1) {
    EXPECT_LE(work.lower_bytes, 3.0 * kFileSize + 1);
  }
}

TEST(LsmStateTest, CascadePropagatesToDepth) {
  LsmState lsm(kFileSize, 4);
  // Sustained writes must populate several levels.
  for (int round = 0; round < 200; round++) {
    for (int i = 0; i < 4; i++) lsm.AddL0File(2 * kMB);
    CompactionWork work;
    int guard = 0;
    while (lsm.PickCompaction(&work) && guard++ < 100) {
      lsm.ApplyCompaction(work);
    }
  }
  EXPECT_GE(lsm.DeepestLevel(), 3);
  // Level sizes respect their caps after full compaction.
  for (int level = 1; level < lsm.DeepestLevel(); level++) {
    EXPECT_LE(lsm.level_bytes(level), lsm.MaxBytesForLevel(level) * 1.01)
        << level;
  }
}

}  // namespace syssim
}  // namespace fcae
