#include "host/offload_compaction.h"

#include <map>
#include <memory>

#include "fpga_test_util.h"
#include "gtest/gtest.h"
#include "host/sstable_stager.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "table/table.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {
namespace host {

using fpga_test::MakeRun;
using fpga_test::TestKv;
using fpga_test::WriteSstable;

TEST(SstableStagerTest, StagedImageMatchesFile) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  auto records = MakeRun("key", 0, 500, 1, 100, 128);
  ASSERT_TRUE(WriteSstable(env.get(), options, "/t.ldb", records).ok());

  SstableStager stager(env.get());
  fpga::DeviceInput input;
  ASSERT_TRUE(stager.AddTable("/t.ldb", &input).ok());
  ASSERT_EQ(1u, input.sstables.size());
  ASSERT_GT(input.index_memory.size(), 0u);
  ASSERT_GT(input.data_memory.size(), 0u);

  // The staged data region is a verbatim prefix of the file.
  std::string file_contents;
  ASSERT_TRUE(ReadFileToString(env.get(), "/t.ldb", &file_contents).ok());
  ASSERT_EQ(file_contents.substr(0, input.data_memory.size()),
            input.data_memory);
}

TEST(SstableStagerTest, BoundedStagingTrimsToOverlappingBlocks) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  auto records = MakeRun("key", 0, 500, 1, 100, 128);
  ASSERT_TRUE(WriteSstable(env.get(), options, "/t.ldb", records).ok());
  SstableStager stager(env.get());

  fpga::DeviceInput full;
  ASSERT_TRUE(stager.AddTable("/t.ldb", &full).ok());

  fpga::KeyBounds bounds;
  bounds.has_lower = true;
  bounds.lower = "key00000150";  // Exclusive.
  bounds.has_upper = true;
  bounds.upper = "key00000250";  // Inclusive.
  fpga::DeviceInput trimmed;
  ASSERT_TRUE(stager.AddTable("/t.ldb", &trimmed, &bounds).ok());
  ASSERT_EQ(1u, trimmed.sstables.size());

  // Trimming is block-granular but must shed the blocks clearly outside
  // a 100-key shard of a 500-key table.
  EXPECT_GT(trimmed.data_memory.size(), 0u);
  EXPECT_LT(trimmed.data_memory.size(), full.data_memory.size());

  // The trimmed image plus the engine's record-level filter yields
  // exactly the shard's records — boundary blocks may be staged, but
  // their leaked records never survive the merge.
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  fpga::DeviceOutput output;
  DeviceRunStats run_stats;
  ASSERT_TRUE(device
                  .ExecuteCompaction({&trimmed}, kNoSnapshot, true, &output,
                                     &run_stats, &bounds)
                  .ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(fpga_test::FlattenOutput(output, &got).ok());
  ASSERT_EQ(100u, got.size());  // key00000151 .. key00000250.
  EXPECT_EQ("key00000151", got.front().first.substr(0, 11));
  EXPECT_EQ("key00000250", got.back().first.substr(0, 11));
}

TEST(SstableStagerTest, TableOutsideBoundsStagesNothing) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  auto records = MakeRun("key", 0, 200, 1, 100, 64);
  ASSERT_TRUE(WriteSstable(env.get(), options, "/t.ldb", records).ok());
  SstableStager stager(env.get());

  // The whole table sits at or below the exclusive lower bound: no
  // descriptor, no staged bytes — the shard simply has no work here.
  // (The bound must clear the index's *shortened* separators: the
  // table's final index entry is the short successor of its last key,
  // e.g. "l" for "key00000199", so a bound like "key00000999" would
  // conservatively keep the last block.)
  fpga::KeyBounds bounds;
  bounds.has_lower = true;
  bounds.lower = "zzzzzzzz";
  fpga::DeviceInput input;
  ASSERT_TRUE(stager.AddTable("/t.ldb", &input, &bounds).ok());
  EXPECT_TRUE(input.sstables.empty());
  EXPECT_TRUE(input.data_memory.empty());
  EXPECT_TRUE(input.index_memory.empty());

  // A bound inside the shortened final separator keeps exactly the
  // conservative boundary block; the engine then drops its records.
  fpga::KeyBounds edge;
  edge.has_lower = true;
  edge.lower = "key00000999";
  fpga::DeviceInput boundary;
  ASSERT_TRUE(stager.AddTable("/t.ldb", &boundary, &edge).ok());
  ASSERT_EQ(1u, boundary.sstables.size());
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  fpga::DeviceOutput output;
  DeviceRunStats run_stats;
  ASSERT_TRUE(device
                  .ExecuteCompaction({&boundary}, kNoSnapshot, true, &output,
                                     &run_stats, &edge)
                  .ok());
  std::vector<std::pair<std::string, std::string>> got;
  ASSERT_TRUE(fpga_test::FlattenOutput(output, &got).ok());
  EXPECT_TRUE(got.empty());
  EXPECT_GT(run_stats.engine.records_bounds_dropped, 0u);
}

TEST(SstableStagerTest, UnboundedStagingUnchangedByDefaultBounds) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  auto records = MakeRun("key", 0, 300, 1, 100, 64);
  ASSERT_TRUE(WriteSstable(env.get(), options, "/t.ldb", records).ok());
  SstableStager stager(env.get());

  fpga::DeviceInput plain, inactive;
  fpga::KeyBounds bounds;  // active() == false.
  ASSERT_TRUE(stager.AddTable("/t.ldb", &plain).ok());
  ASSERT_TRUE(stager.AddTable("/t.ldb", &inactive, &bounds).ok());
  EXPECT_EQ(plain.data_memory, inactive.data_memory);
  EXPECT_EQ(plain.index_memory, inactive.index_memory);
}

TEST(SstableStagerTest, RejectsGarbageFile) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  ASSERT_TRUE(
      WriteStringToFile(env.get(), std::string(100, 'x'), "/junk").ok());
  SstableStager stager(env.get());
  fpga::DeviceInput input;
  ASSERT_FALSE(stager.AddTable("/junk", &input).ok());
}

TEST(AssembleTableFileTest, AssembledFileIsReadableSstable) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  // Run a small merge on the device and assemble its first output.
  auto run_a = MakeRun("key", 0, 400, 2, 1000, 64);
  auto run_b = MakeRun("key", 1, 400, 2, 2000, 64);
  fpga::DeviceInput in_a, in_b;
  ASSERT_TRUE(
      fpga_test::BuildDeviceInput(env.get(), options, {run_a}, 0, &in_a).ok());
  ASSERT_TRUE(
      fpga_test::BuildDeviceInput(env.get(), options, {run_b}, 1, &in_b).ok());

  fpga::EngineConfig config;
  FcaeDevice device(config);
  fpga::DeviceOutput output;
  DeviceRunStats run_stats;
  ASSERT_TRUE(device
                  .ExecuteCompaction({&in_a, &in_b}, kNoSnapshot, true,
                                     &output, &run_stats)
                  .ok());
  ASSERT_EQ(1u, output.tables.size());
  EXPECT_GT(run_stats.kernel_cycles, 0u);
  EXPECT_GT(run_stats.pcie_micros, 0.0);

  uint64_t file_size;
  ASSERT_TRUE(AssembleTableFile(env.get(), "/out.ldb", output.tables[0],
                                &file_size)
                  .ok());

  // Open with the standard Table reader using the internal comparator.
  static const InternalKeyComparator* icmp =
      new InternalKeyComparator(BytewiseComparator());
  Options read_options;
  read_options.comparator = icmp;
  read_options.env = env.get();

  RandomAccessFile* raf;
  ASSERT_TRUE(env->NewRandomAccessFile("/out.ldb", &raf).ok());
  std::unique_ptr<RandomAccessFile> file(raf);
  Table* table;
  ASSERT_TRUE(Table::Open(read_options, raf, file_size, &table).ok());
  std::unique_ptr<Table> tguard(table);

  std::unique_ptr<Iterator> iter(table->NewIterator(ReadOptions()));
  size_t count = 0;
  std::string prev_user_key;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::string user_key = ExtractUserKey(iter->key()).ToString();
    if (!prev_user_key.empty()) {
      ASSERT_LT(prev_user_key, user_key);
    }
    prev_user_key = user_key;
    count++;
  }
  ASSERT_TRUE(iter->status().ok());
  ASSERT_EQ(800u, count);

  // Seek must work via the rebuilt index block.
  LookupKey lk("key00000100", kMaxSequenceNumber);
  iter->Seek(lk.internal_key());
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("key00000100", ExtractUserKey(iter->key()).ToString());
}

// End-to-end: the same workload against a CPU-compaction DB and an
// FPGA-offload DB must produce identical logical contents, and the
// offload DB must actually offload.
class OffloadDbTest : public testing::Test {
 public:
  OffloadDbTest() : env_(NewMemEnv(Env::Default())) {}

  DB* OpenDb(const std::string& name, CompactionExecutor* executor) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;  // Flush often.
    options.compaction_executor = executor;
    DB* db = nullptr;
    Status s = DB::Open(options, name, &db);
    EXPECT_TRUE(s.ok()) << s.ToString();
    return db;
  }

  std::unique_ptr<Env> env_;
};

TEST_F(OffloadDbTest, OffloadDbMatchesCpuDb) {
  fpga::EngineConfig config;
  config.num_inputs = 9;  // Lets level-0 compactions offload too.
  config.input_width = 8;
  config.value_width = 8;
  FcaeDevice device(config);
  FcaeCompactionExecutor fcae_executor(&device);

  std::unique_ptr<DB> cpu_db(OpenDb("/cpu_db", nullptr));
  std::unique_ptr<DB> fcae_db(OpenDb("/fcae_db", &fcae_executor));

  Random rnd(42);
  WriteOptions wo;
  const int kOps = 4000;
  for (int i = 0; i < kOps; i++) {
    std::string key = "user" + std::to_string(rnd.Uniform(800));
    if (rnd.Uniform(10) < 8) {
      std::string value(64 + rnd.Uniform(192),
                        static_cast<char>('a' + i % 26));
      ASSERT_TRUE(cpu_db->Put(wo, key, value).ok());
      ASSERT_TRUE(fcae_db->Put(wo, key, value).ok());
    } else {
      ASSERT_TRUE(cpu_db->Delete(wo, key).ok());
      ASSERT_TRUE(fcae_db->Delete(wo, key).ok());
    }
  }

  // Push both through full compactions.
  for (DB* db : {cpu_db.get(), fcae_db.get()}) {
    auto* impl = reinterpret_cast<DBImpl*>(db);
    impl->TEST_CompactMemTable().IgnoreError();  // device env in play
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  // Compare full scans.
  std::unique_ptr<Iterator> cpu_iter(cpu_db->NewIterator(ReadOptions()));
  std::unique_ptr<Iterator> fcae_iter(fcae_db->NewIterator(ReadOptions()));
  cpu_iter->SeekToFirst();
  fcae_iter->SeekToFirst();
  size_t entries = 0;
  while (cpu_iter->Valid() && fcae_iter->Valid()) {
    ASSERT_EQ(cpu_iter->key().ToString(), fcae_iter->key().ToString());
    ASSERT_EQ(cpu_iter->value().ToString(), fcae_iter->value().ToString());
    cpu_iter->Next();
    fcae_iter->Next();
    entries++;
  }
  ASSERT_FALSE(cpu_iter->Valid());
  ASSERT_FALSE(fcae_iter->Valid());
  ASSERT_GT(entries, 100u);

  // The device must actually have been used.
  auto* fcae_impl = reinterpret_cast<DBImpl*>(fcae_db.get());
  CompactionExecStats stats = fcae_impl->OffloadStats();
  EXPECT_GT(stats.device_cycles, 0u);
  EXPECT_GT(device.kernels_launched(), 0u);
}

TEST_F(OffloadDbTest, SchedulerFallsBackWhenInputsExceedN) {
  // A 2-input device cannot take level-0 compactions (4+ overlapping
  // files + the level-1 run); those must fall back to software while
  // the DB still works correctly.
  fpga::EngineConfig config;
  config.num_inputs = 2;
  FcaeDevice device(config);
  FcaeCompactionExecutor executor(&device);

  std::unique_ptr<DB> db(OpenDb("/fallback_db", &executor));
  Random rnd(7);
  WriteOptions wo;
  for (int i = 0; i < 3000; i++) {
    std::string key = "k" + std::to_string(rnd.Uniform(500));
    ASSERT_TRUE(db->Put(wo, key, std::string(128, 'v')).ok());
  }
  auto* impl = reinterpret_cast<DBImpl*>(db.get());
  impl->TEST_CompactMemTable().IgnoreError();  // device env in play
  for (int level = 0; level < kNumLevels - 1; level++) {
    impl->TEST_CompactRange(level, nullptr, nullptr);
  }

  std::string value;
  int found = 0;
  for (int i = 0; i < 500; i++) {
    if (db->Get(ReadOptions(), "k" + std::to_string(i), &value).ok()) {
      found++;
    }
  }
  EXPECT_GT(found, 400);
}

TEST(EngineInputsNeededTest, CountsRunsNotFiles) {
  // Build a fake compaction via the version-set-free constructor is not
  // possible; instead validate the rule indirectly through CanExecute
  // in the DB tests above. Here we at least pin the level semantics
  // via documentation-level expectations.
  SUCCEED();
}

}  // namespace host
}  // namespace fcae
