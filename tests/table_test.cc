#include "table/table.h"

#include <map>
#include <memory>

#include "gtest/gtest.h"
#include "table/format.h"
#include "table/table_builder.h"
#include "util/env.h"
#include "util/filter_policy.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

struct TableTestParams {
  CompressionType compression;
  bool use_filter;
  size_t block_size;
};

class TableTest : public testing::TestWithParam<TableTestParams> {
 public:
  TableTest() : env_(NewMemEnv(Env::Default())) {
    options_.env = env_.get();
    options_.compression = GetParam().compression;
    options_.block_size = GetParam().block_size;
    if (GetParam().use_filter) {
      filter_.reset(NewBloomFilterPolicy(10));
      options_.filter_policy = filter_.get();
    }
  }

  /// Builds a table file from `entries` and opens it.
  void BuildAndOpen(const std::map<std::string, std::string>& entries) {
    const std::string fname = "/table_test_file";
    WritableFile* wf;
    ASSERT_TRUE(env_->NewWritableFile(fname, &wf).ok());
    {
      TableBuilder builder(options_, wf);
      for (const auto& kv : entries) {
        builder.Add(kv.first, kv.second);
      }
      ASSERT_TRUE(builder.Finish().ok());
      ASSERT_EQ(entries.size(), builder.NumEntries());
    }
    ASSERT_TRUE(wf->Close().ok());
    delete wf;

    uint64_t size;
    ASSERT_TRUE(env_->GetFileSize(fname, &size).ok());
    RandomAccessFile* raf;
    ASSERT_TRUE(env_->NewRandomAccessFile(fname, &raf).ok());
    file_.reset(raf);
    Table* table;
    ASSERT_TRUE(Table::Open(options_, raf, size, &table).ok());
    table_.reset(table);
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<const FilterPolicy> filter_;
  Options options_;
  std::unique_ptr<RandomAccessFile> file_;
  std::unique_ptr<Table> table_;
};

namespace {

std::map<std::string, std::string> MakeEntries(int n, int value_len,
                                               uint32_t seed) {
  Random rnd(seed);
  std::map<std::string, std::string> entries;
  for (int i = 0; i < n; i++) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%010u", rnd.Uniform(1000000000));
    entries[key] = std::string(value_len, static_cast<char>('a' + (i % 26)));
  }
  return entries;
}

struct GetContext {
  bool found = false;
  std::string key;
  std::string value;
};

void SaveResult(void* arg, const Slice& k, const Slice& v) {
  auto* ctx = static_cast<GetContext*>(arg);
  ctx->found = true;
  ctx->key = k.ToString();
  ctx->value = v.ToString();
}

}  // namespace

TEST_P(TableTest, EmptyTable) {
  BuildAndOpen({});
  std::unique_ptr<Iterator> iter(table_->NewIterator(ReadOptions()));
  iter->SeekToFirst();
  ASSERT_FALSE(iter->Valid());
  ASSERT_TRUE(iter->status().ok());
}

TEST_P(TableTest, FullScanMatches) {
  auto entries = MakeEntries(2000, 64, 17);
  BuildAndOpen(entries);
  std::unique_ptr<Iterator> iter(table_->NewIterator(ReadOptions()));
  auto expected = entries.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_NE(expected, entries.end());
    ASSERT_EQ(expected->first, iter->key().ToString());
    ASSERT_EQ(expected->second, iter->value().ToString());
    ++expected;
  }
  ASSERT_EQ(expected, entries.end());
  ASSERT_TRUE(iter->status().ok());
}

TEST_P(TableTest, ReverseScanMatches) {
  auto entries = MakeEntries(500, 32, 23);
  BuildAndOpen(entries);
  std::unique_ptr<Iterator> iter(table_->NewIterator(ReadOptions()));
  auto expected = entries.rbegin();
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    ASSERT_NE(expected, entries.rend());
    ASSERT_EQ(expected->first, iter->key().ToString());
    ++expected;
  }
  ASSERT_EQ(expected, entries.rend());
}

TEST_P(TableTest, SeekBehaviour) {
  std::map<std::string, std::string> entries;
  for (int i = 0; i < 1000; i += 10) {
    char key[32];
    std::snprintf(key, sizeof(key), "key%06d", i);
    entries[key] = std::to_string(i);
  }
  BuildAndOpen(entries);
  std::unique_ptr<Iterator> iter(table_->NewIterator(ReadOptions()));

  iter->Seek("key000500");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("key000500", iter->key().ToString());

  iter->Seek("key000501");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("key000510", iter->key().ToString());

  iter->Seek("zzz");
  ASSERT_FALSE(iter->Valid());
}

TEST_P(TableTest, InternalGet) {
  auto entries = MakeEntries(1500, 128, 99);
  BuildAndOpen(entries);

  ReadOptions ropts;
  for (const auto& kv : entries) {
    GetContext ctx;
    ASSERT_TRUE(table_->InternalGet(ropts, kv.first, &ctx, SaveResult).ok());
    ASSERT_TRUE(ctx.found) << kv.first;
    ASSERT_EQ(kv.first, ctx.key);
    ASSERT_EQ(kv.second, ctx.value);
  }

  // Absent keys: either not found, or found-with-different-key (the
  // caller is responsible for exact-match checks).
  GetContext ctx;
  ASSERT_TRUE(
      table_->InternalGet(ropts, "key_not_present_!", &ctx, SaveResult).ok());
  if (ctx.found) {
    ASSERT_NE("key_not_present_!", ctx.key);
  }
}

TEST_P(TableTest, ApproximateOffsets) {
  auto entries = MakeEntries(4000, 256, 7);
  BuildAndOpen(entries);
  // Offsets must be monotonic in key order.
  uint64_t prev = 0;
  for (const auto& kv : entries) {
    uint64_t off = table_->ApproximateOffsetOf(kv.first);
    ASSERT_GE(off, prev == 0 ? 0 : prev - 1);
    if (off > prev) prev = off;
  }
  // A key past the end maps near the file end.
  uint64_t end_off = table_->ApproximateOffsetOf("zzzzzzzzzzzzz");
  ASSERT_GE(end_off, prev);
}

TEST_P(TableTest, ChecksumVerificationPasses) {
  auto entries = MakeEntries(300, 64, 3);
  BuildAndOpen(entries);
  ReadOptions ropts;
  ropts.verify_checksums = true;
  std::unique_ptr<Iterator> iter(table_->NewIterator(ropts));
  int count = 0;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) count++;
  ASSERT_EQ(static_cast<int>(entries.size()), count);
  ASSERT_TRUE(iter->status().ok());
}

INSTANTIATE_TEST_SUITE_P(
    Formats, TableTest,
    testing::Values(
        TableTestParams{kSnappyCompression, false, 4096},
        TableTestParams{kNoCompression, false, 4096},
        TableTestParams{kSnappyCompression, true, 4096},
        TableTestParams{kSnappyCompression, false, 256},
        TableTestParams{kNoCompression, true, 65536}));

// Corruption handling is format-independent; test once.
TEST(TableCorruptionTest, TruncatedFileRejected) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();

  WritableFile* wf;
  ASSERT_TRUE(env->NewWritableFile("/t", &wf).ok());
  {
    TableBuilder builder(options, wf);
    builder.Add("a", "1");
    builder.Add("b", "2");
    ASSERT_TRUE(builder.Finish().ok());
  }
  ASSERT_TRUE(wf->Close().ok());
  delete wf;

  // A short prefix of a valid table must be rejected at Open.
  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), "/t", &contents).ok());
  ASSERT_TRUE(
      WriteStringToFile(env.get(), contents.substr(0, 10), "/short").ok());

  RandomAccessFile* raf;
  ASSERT_TRUE(env->NewRandomAccessFile("/short", &raf).ok());
  std::unique_ptr<RandomAccessFile> guard(raf);
  Table* table = nullptr;
  ASSERT_FALSE(Table::Open(options, raf, 10, &table).ok());
  ASSERT_EQ(nullptr, table);
}

TEST(TableCorruptionTest, FlippedByteDetectedByChecksum) {
  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  Options options;
  options.env = env.get();
  options.compression = kNoCompression;

  WritableFile* wf;
  ASSERT_TRUE(env->NewWritableFile("/t", &wf).ok());
  {
    TableBuilder builder(options, wf);
    for (int i = 0; i < 100; i++) {
      char key[16];
      std::snprintf(key, sizeof(key), "key%06d", i);
      builder.Add(key, "value");
    }
    ASSERT_TRUE(builder.Finish().ok());
  }
  ASSERT_TRUE(wf->Close().ok());
  delete wf;

  std::string contents;
  ASSERT_TRUE(ReadFileToString(env.get(), "/t", &contents).ok());
  contents[10] ^= 0x40;  // Corrupt a byte inside the first data block.
  ASSERT_TRUE(WriteStringToFile(env.get(), contents, "/corrupt").ok());

  RandomAccessFile* raf;
  ASSERT_TRUE(env->NewRandomAccessFile("/corrupt", &raf).ok());
  std::unique_ptr<RandomAccessFile> guard(raf);
  Table* table;
  ASSERT_TRUE(
      Table::Open(options, raf, contents.size(), &table).ok());
  std::unique_ptr<Table> tguard(table);

  ReadOptions ropts;
  ropts.verify_checksums = true;
  std::unique_ptr<Iterator> iter(table->NewIterator(ropts));
  iter->SeekToFirst();
  // Either immediately invalid or an error status once the bad block is
  // reached.
  while (iter->Valid()) iter->Next();
  ASSERT_FALSE(iter->status().ok());
}

}  // namespace fcae
