// Automatic background compaction: without any TEST_ hooks, sustained
// writes must trigger flushes and compactions on the background thread,
// deepen the tree, garbage-collect obsolete files, and keep every
// lookup correct — on both compaction executors.

#include <memory>

#include "gtest/gtest.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "lsm/filename.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

class AutoCompactTest : public testing::TestWithParam<bool> {
 public:
  AutoCompactTest() : env_(NewMemEnv(Env::Default())) {
    if (GetParam()) {
      fpga::EngineConfig config;
      config.num_inputs = 9;
      config.input_width = 8;
      config.value_width = 8;
      device_ = std::make_unique<host::FcaeDevice>(config);
      executor_ =
          std::make_unique<host::FcaeCompactionExecutor>(device_.get());
    }
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;  // Flush every ~64 KB.
    options.max_file_size = 128 * 1024;
    options.compaction_executor = executor_.get();
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/auto", &db).ok());
    db_.reset(db);
  }

  int NumFilesAtLevel(int level) {
    std::string value;
    EXPECT_TRUE(db_->GetProperty(
        "fcae.num-files-at-level" + std::to_string(level), &value));
    return std::stoi(value);
  }

  void WaitForQuiescence() {
    // Compactions chain in the background; poll until levels settle.
    for (int i = 0; i < 200; i++) {
      int l0 = NumFilesAtLevel(0);
      if (l0 < 4) break;
      Env::Default()->SleepForMicroseconds(10000);
    }
  }

  std::unique_ptr<Env> env_;
  std::unique_ptr<host::FcaeDevice> device_;
  std::unique_ptr<host::FcaeCompactionExecutor> executor_;
  std::unique_ptr<DB> db_;
};

TEST_P(AutoCompactTest, SustainedWritesDeepenTheTreeAutomatically) {
  Random rnd(301);
  WriteOptions wo;
  const int kKeys = 4000;
  for (int i = 0; i < 30000; i++) {
    std::string key = "key" + std::to_string(rnd.Uniform(kKeys));
    ASSERT_TRUE(db_->Put(wo, key, std::string(128, 'v')).ok());
  }
  WaitForQuiescence();

  // Levels beyond 0 must be populated without any manual compaction.
  int deep_files = 0;
  for (int level = 1; level < kNumLevels; level++) {
    deep_files += NumFilesAtLevel(level);
  }
  EXPECT_GT(deep_files, 0);

  // Level 0 must have been repeatedly compacted below the stop trigger.
  EXPECT_LT(NumFilesAtLevel(0), kL0StopWritesTrigger);

  // All data remains correct.
  std::string value;
  int found = 0;
  for (int k = 0; k < kKeys; k++) {
    if (db_->Get(ReadOptions(), "key" + std::to_string(k), &value).ok()) {
      found++;
      ASSERT_EQ(std::string(128, 'v'), value);
    }
  }
  EXPECT_GT(found, kKeys * 9 / 10);

  if (GetParam()) {
    EXPECT_GT(device_->kernels_launched(), 0u);
  }
}

TEST_P(AutoCompactTest, ObsoleteFilesAreGarbageCollected) {
  Random rnd(7);
  WriteOptions wo;
  for (int i = 0; i < 20000; i++) {
    ASSERT_TRUE(db_->Put(wo, "key" + std::to_string(rnd.Uniform(1000)),
                         std::string(128, 'x'))
                    .ok());
  }
  WaitForQuiescence();

  // Count on-disk table files; compaction inputs must be deleted, so
  // the file count stays in the same ballpark as the live set rather
  // than growing with every flush (20000 * 144 B / 64 KB > 40 flushes).
  std::vector<std::string> children;
  ASSERT_TRUE(env_->GetChildren("/auto", &children).ok());
  int table_files = 0;
  for (const std::string& child : children) {
    uint64_t number;
    FileType type;
    if (ParseFileName(child, &number, &type) &&
        type == FileType::kTableFile) {
      table_files++;
    }
  }
  int live = 0;
  for (int level = 0; level < kNumLevels; level++) {
    live += NumFilesAtLevel(level);
  }
  EXPECT_LE(table_files, live + 4);  // A few in-flight stragglers at most.
}

INSTANTIATE_TEST_SUITE_P(Cpu, AutoCompactTest, testing::Values(false));
INSTANTIATE_TEST_SUITE_P(Fcae, AutoCompactTest, testing::Values(true));

}  // namespace fcae
