#include <memory>
#include <vector>

#include "gtest/gtest.h"
#include "lsm/log_reader.h"
#include "lsm/log_writer.h"
#include "util/coding.h"
#include "util/crc32c.h"
#include "util/env.h"
#include "util/random.h"

namespace fcae {
namespace log {

namespace {

/// Constructs a string of the specified length, made out of the supplied
/// partial string.
std::string BigString(const std::string& partial_string, size_t n) {
  std::string result;
  while (result.size() < n) {
    result.append(partial_string);
  }
  result.resize(n);
  return result;
}

/// Constructs a string from a number.
std::string NumberString(int n) {
  char buf[50];
  std::snprintf(buf, sizeof(buf), "%d.", n);
  return std::string(buf);
}

/// A skewed-length random string.
std::string RandomSkewedString(int i, Random* rnd) {
  std::string raw;
  size_t len = rnd->Skewed(17);
  for (size_t j = 0; j < len; j++) {
    raw.push_back(static_cast<char>(' ' + rnd->Uniform(95)));
  }
  return raw;
}

}  // namespace

class LogTest : public testing::Test {
 public:
  LogTest()
      : reading_(false),
        writer_(new Writer(&dest_)),
        reader_(new Reader(&source_, &report_, true /*checksum*/)) {}

  ~LogTest() override {
    delete writer_;
    delete reader_;
  }

  void ReopenForAppend() {
    delete writer_;
    writer_ = new Writer(&dest_, dest_.contents_.size());
  }

  void Write(const std::string& msg) {
    ASSERT_TRUE(!reading_) << "Write() after starting to read";
    ASSERT_TRUE(writer_->AddRecord(Slice(msg)).ok());
  }

  size_t WrittenBytes() const { return dest_.contents_.size(); }

  std::string Read() {
    if (!reading_) {
      reading_ = true;
      source_.contents_ = Slice(dest_.contents_);
    }
    std::string scratch;
    Slice record;
    if (reader_->ReadRecord(&record, &scratch)) {
      return record.ToString();
    } else {
      return "EOF";
    }
  }

  void IncrementByte(int offset, int delta) {
    dest_.contents_[offset] += delta;
  }

  void SetByte(int offset, char new_byte) {
    dest_.contents_[offset] = new_byte;
  }

  void ShrinkSize(int bytes) {
    dest_.contents_.resize(dest_.contents_.size() - bytes);
  }

  void FixChecksum(int header_offset, int len) {
    // Compute crc of type/len/data.
    uint32_t crc = crc32c::Value(&dest_.contents_[header_offset + 6], 1 + len);
    crc = crc32c::Mask(crc);
    EncodeFixed32(&dest_.contents_[header_offset], crc);
  }

  size_t DroppedBytes() const { return report_.dropped_bytes_; }

  std::string ReportMessage() const { return report_.message_; }

  // Returns OK iff recorded error message contains "msg".
  std::string MatchError(const std::string& msg) const {
    if (report_.message_.find(msg) == std::string::npos) {
      return report_.message_;
    } else {
      return "OK";
    }
  }

 private:
  class StringDest : public WritableFile {
   public:
    Status Close() override { return Status::OK(); }
    Status Flush() override { return Status::OK(); }
    Status Sync() override { return Status::OK(); }
    Status Append(const Slice& slice) override {
      contents_.append(slice.data(), slice.size());
      return Status::OK();
    }

    std::string contents_;
  };

  class StringSource : public SequentialFile {
   public:
    StringSource() : force_error_(false), returned_partial_(false) {}

    Status Read(size_t n, Slice* result, char* scratch) override {
      EXPECT_TRUE(!returned_partial_) << "must not Read() after eof/error";

      if (force_error_) {
        force_error_ = false;
        returned_partial_ = true;
        return Status::Corruption("read error");
      }

      if (contents_.size() < n) {
        n = contents_.size();
        returned_partial_ = true;
      }
      *result = Slice(contents_.data(), n);
      contents_.RemovePrefix(n);
      return Status::OK();
    }

    Status Skip(uint64_t n) override {
      if (n > contents_.size()) {
        contents_.Clear();
        return Status::NotFound("in-memory file skipped past end");
      }

      contents_.RemovePrefix(n);

      return Status::OK();
    }

    Slice contents_;
    bool force_error_;
    bool returned_partial_;
  };

  class ReportCollector : public Reader::Reporter {
   public:
    ReportCollector() : dropped_bytes_(0) {}
    void Corruption(size_t bytes, const Status& status) override {
      dropped_bytes_ += bytes;
      message_.append(status.ToString());
    }

    size_t dropped_bytes_;
    std::string message_;
  };

  StringDest dest_;
  StringSource source_;
  ReportCollector report_;
  bool reading_;
  Writer* writer_;
  Reader* reader_;
};

TEST_F(LogTest, Empty) { ASSERT_EQ("EOF", Read()); }

TEST_F(LogTest, ReadWrite) {
  Write("foo");
  Write("bar");
  Write("");
  Write("xxxx");
  ASSERT_EQ("foo", Read());
  ASSERT_EQ("bar", Read());
  ASSERT_EQ("", Read());
  ASSERT_EQ("xxxx", Read());
  ASSERT_EQ("EOF", Read());
  ASSERT_EQ("EOF", Read());  // Make sure reads at eof work.
}

TEST_F(LogTest, ManyBlocks) {
  for (int i = 0; i < 100000; i++) {
    Write(NumberString(i));
  }
  for (int i = 0; i < 100000; i++) {
    ASSERT_EQ(NumberString(i), Read());
  }
  ASSERT_EQ("EOF", Read());
}

TEST_F(LogTest, Fragmentation) {
  Write("small");
  Write(BigString("medium", 50000));
  Write(BigString("large", 100000));
  ASSERT_EQ("small", Read());
  ASSERT_EQ(BigString("medium", 50000), Read());
  ASSERT_EQ(BigString("large", 100000), Read());
  ASSERT_EQ("EOF", Read());
}

TEST_F(LogTest, MarginalTrailer) {
  // Make a trailer that is exactly the same length as an empty record.
  const int n = kBlockSize - 2 * kHeaderSize;
  Write(BigString("foo", n));
  ASSERT_EQ(static_cast<size_t>(kBlockSize - kHeaderSize), WrittenBytes());
  Write("");
  Write("bar");
  ASSERT_EQ(BigString("foo", n), Read());
  ASSERT_EQ("", Read());
  ASSERT_EQ("bar", Read());
  ASSERT_EQ("EOF", Read());
}

TEST_F(LogTest, ShortTrailer) {
  const int n = kBlockSize - 2 * kHeaderSize + 4;
  Write(BigString("foo", n));
  ASSERT_EQ(static_cast<size_t>(kBlockSize - kHeaderSize + 4), WrittenBytes());
  Write("");
  Write("bar");
  ASSERT_EQ(BigString("foo", n), Read());
  ASSERT_EQ("", Read());
  ASSERT_EQ("bar", Read());
  ASSERT_EQ("EOF", Read());
}

TEST_F(LogTest, AlignedEof) {
  const int n = kBlockSize - 2 * kHeaderSize + 4;
  Write(BigString("foo", n));
  ASSERT_EQ(static_cast<size_t>(kBlockSize - kHeaderSize + 4), WrittenBytes());
  ASSERT_EQ(BigString("foo", n), Read());
  ASSERT_EQ("EOF", Read());
}

TEST_F(LogTest, RandomRead) {
  const int N = 500;
  Random write_rnd(301);
  for (int i = 0; i < N; i++) {
    Write(RandomSkewedString(i, &write_rnd));
  }
  Random read_rnd(301);
  for (int i = 0; i < N; i++) {
    ASSERT_EQ(RandomSkewedString(i, &read_rnd), Read());
  }
  ASSERT_EQ("EOF", Read());
}

// Tests of all the error paths in log_reader.cc follow:

TEST_F(LogTest, ReadError) {
  Write("foo");
  ShrinkSize(4);  // Drop all payload as well as a header byte.
  ASSERT_EQ("EOF", Read());
  // Truncated tail is ignored, not treated as corruption.
  ASSERT_EQ(0u, DroppedBytes());
}

TEST_F(LogTest, BadRecordType) {
  Write("foo");
  // Type is stored in header[6].
  IncrementByte(6, 100);
  FixChecksum(0, 3);
  ASSERT_EQ("EOF", Read());
  ASSERT_EQ(3u, DroppedBytes());
  ASSERT_EQ("OK", MatchError("unknown record type"));
}

TEST_F(LogTest, TruncatedTrailingRecordIsIgnored) {
  Write("foo");
  ShrinkSize(4);  // Drop all payload as well as a header byte.
  ASSERT_EQ("EOF", Read());
  // Truncated last record is ignored, not treated as an error.
  ASSERT_EQ(0u, DroppedBytes());
  ASSERT_EQ("", ReportMessage());
}

TEST_F(LogTest, ChecksumMismatch) {
  Write("foo");
  IncrementByte(0, 10);
  ASSERT_EQ("EOF", Read());
  ASSERT_EQ(10u, DroppedBytes());
  ASSERT_EQ("OK", MatchError("checksum mismatch"));
}

TEST_F(LogTest, UnexpectedFullType) {
  Write("foo");
  Write("bar");
  SetByte(6, kFirstType);
  FixChecksum(0, 3);
  ASSERT_EQ("bar", Read());
  ASSERT_EQ("EOF", Read());
  ASSERT_EQ(3u, DroppedBytes());
  ASSERT_EQ("OK", MatchError("partial record without end"));
}

TEST_F(LogTest, MissingLastIsIgnored) {
  Write(BigString("bar", kBlockSize));
  // Remove the LAST block, including header.
  ShrinkSize(14);
  ASSERT_EQ("EOF", Read());
  ASSERT_EQ("", ReportMessage());
  ASSERT_EQ(0u, DroppedBytes());
}

TEST_F(LogTest, ReopenForAppend) {
  Write("hello");
  ReopenForAppend();
  Write("world");
  ASSERT_EQ("hello", Read());
  ASSERT_EQ("world", Read());
  ASSERT_EQ("EOF", Read());
}

}  // namespace log
}  // namespace fcae
