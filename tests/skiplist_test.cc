#include "lsm/skiplist.h"

#include <set>

#include "gtest/gtest.h"
#include "util/arena.h"
#include "util/random.h"

namespace fcae {

using Key = uint64_t;

struct TestComparator {
  int operator()(const Key& a, const Key& b) const {
    if (a < b) {
      return -1;
    } else if (a > b) {
      return +1;
    } else {
      return 0;
    }
  }
};

TEST(SkipList, Empty) {
  Arena arena;
  TestComparator cmp;
  SkipList<Key, TestComparator> list(cmp, &arena);
  ASSERT_TRUE(!list.Contains(10));

  SkipList<Key, TestComparator>::Iterator iter(&list);
  ASSERT_TRUE(!iter.Valid());
  iter.SeekToFirst();
  ASSERT_TRUE(!iter.Valid());
  iter.Seek(100);
  ASSERT_TRUE(!iter.Valid());
  iter.SeekToLast();
  ASSERT_TRUE(!iter.Valid());
}

TEST(SkipList, InsertAndLookup) {
  const int N = 2000;
  const int R = 5000;
  Random rnd(1000);
  std::set<Key> keys;
  Arena arena;
  TestComparator cmp;
  SkipList<Key, TestComparator> list(cmp, &arena);
  for (int i = 0; i < N; i++) {
    Key key = rnd.Next() % R;
    if (keys.insert(key).second) {
      list.Insert(key);
    }
  }

  for (int i = 0; i < R; i++) {
    if (list.Contains(i)) {
      ASSERT_EQ(keys.count(i), 1u);
    } else {
      ASSERT_EQ(keys.count(i), 0u);
    }
  }

  // Simple iterator tests.
  {
    SkipList<Key, TestComparator>::Iterator iter(&list);
    ASSERT_TRUE(!iter.Valid());

    iter.Seek(0);
    ASSERT_TRUE(iter.Valid());
    ASSERT_EQ(*(keys.begin()), iter.key());

    iter.SeekToFirst();
    ASSERT_TRUE(iter.Valid());
    ASSERT_EQ(*(keys.begin()), iter.key());

    iter.SeekToLast();
    ASSERT_TRUE(iter.Valid());
    ASSERT_EQ(*(keys.rbegin()), iter.key());
  }

  // Forward iteration test.
  for (int i = 0; i < R; i++) {
    SkipList<Key, TestComparator>::Iterator iter(&list);
    iter.Seek(i);

    // Compare against model iterator.
    std::set<Key>::iterator model_iter = keys.lower_bound(i);
    for (int j = 0; j < 3; j++) {
      if (model_iter == keys.end()) {
        ASSERT_TRUE(!iter.Valid());
        break;
      } else {
        ASSERT_TRUE(iter.Valid());
        ASSERT_EQ(*model_iter, iter.key());
        ++model_iter;
        iter.Next();
      }
    }
  }

  // Backward iteration test.
  {
    SkipList<Key, TestComparator>::Iterator iter(&list);
    iter.SeekToLast();

    // Compare against model iterator.
    for (std::set<Key>::reverse_iterator model_iter = keys.rbegin();
         model_iter != keys.rend(); ++model_iter) {
      ASSERT_TRUE(iter.Valid());
      ASSERT_EQ(*model_iter, iter.key());
      iter.Prev();
    }
    ASSERT_TRUE(!iter.Valid());
  }
}

TEST(SkipList, SeekEqualsLowerBound) {
  Arena arena;
  TestComparator cmp;
  SkipList<Key, TestComparator> list(cmp, &arena);
  for (Key k = 0; k < 100; k += 10) {
    list.Insert(k);
  }
  SkipList<Key, TestComparator>::Iterator iter(&list);
  iter.Seek(35);
  ASSERT_TRUE(iter.Valid());
  ASSERT_EQ(40u, iter.key());
  iter.Seek(40);
  ASSERT_TRUE(iter.Valid());
  ASSERT_EQ(40u, iter.key());
  iter.Seek(90);
  ASSERT_TRUE(iter.Valid());
  ASSERT_EQ(90u, iter.key());
  iter.Seek(91);
  ASSERT_FALSE(iter.Valid());
}

}  // namespace fcae
