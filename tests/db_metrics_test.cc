// End-to-end tests of the DB's observability surface:
//  - `fcae.metrics` is valid JSON covering the compaction lifecycle,
//    the FPGA pipeline counters and the health-monitor state;
//  - golden `fcae.trace` export: an offloaded compaction that retries
//    and then falls back to the CPU produces a correctly nested span
//    tree (compaction > input_build/device_attempt/merge/install, with
//    retry and cpu_fallback instants) on one logical track;
//  - Options::metrics_registry and Options::trace_sink injection;
//  - the `fcae.num-files-at-level<N>` digit-parsing regression.

#include <algorithm>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpga/fault_injector.h"
#include "gtest/gtest.h"
#include "host/device_health_monitor.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "mini_json.h"
#include "obs/metrics.h"
#include "obs/trace.h"
#include "util/mem_env.h"
#include "util/mutex.h"
#include "util/random.h"

namespace fcae {
namespace {

using mini_json::Value;

Value MustParse(const std::string& text) {
  Value v;
  std::string error;
  EXPECT_TRUE(mini_json::Parse(text, &v, &error))
      << error << "\n"
      << text.substr(0, 2000);
  return v;
}

class DbMetricsTest : public testing::Test {
 public:
  DbMetricsTest() : env_(NewMemEnv(Env::Default())) {}

  std::unique_ptr<DB> OpenDb(CompactionExecutor* executor,
                             obs::MetricsRegistry* registry = nullptr,
                             obs::TraceSink* sink = nullptr) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    // The golden traces assume serialized compaction: armed device
    // faults must land on one job, in launch order. One worker keeps
    // that deterministic.
    options.compaction_threads = 1;
    options.compaction_executor = executor;
    options.metrics_registry = registry;
    options.trace_sink = sink;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, "/obs_db", &db).ok());
    return std::unique_ptr<DB>(db);
  }

  /// Overwrite-heavy workload plus a full manual compaction, so flushes,
  /// compactions and entry drops all happen.
  void RunWorkload(DB* db) {
    Random rnd(301);
    WriteOptions wo;
    for (int i = 0; i < 4000; i++) {
      std::string key = "user" + std::to_string(rnd.Uniform(800));
      ASSERT_TRUE(
          db->Put(wo, key, std::string(64 + rnd.Uniform(100), 'v')).ok());
    }
    auto* impl = reinterpret_cast<DBImpl*>(db);
    impl->TEST_CompactMemTable().IgnoreError();  // device faults injected
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  std::unique_ptr<Env> env_;
};

TEST_F(DbMetricsTest, MetricsPropertyCoversAllLayers) {
  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 9;
  host::FcaeDevice device(engine_config);
  host::DeviceHealthMonitor monitor;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &monitor;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db = OpenDb(&executor);
  RunWorkload(db.get());

  std::string json;
  ASSERT_TRUE(db->GetProperty("fcae.metrics", &json));
  Value root = MustParse(json);

  // DB lifecycle counters and latency histograms.
  const Value& counters = root["counters"];
  EXPECT_GT(counters["db.flush.count"].number, 0.0);
  EXPECT_GT(counters["db.flush.bytes_written"].number, 0.0);
  EXPECT_GT(counters["db.compaction.count"].number, 0.0);
  EXPECT_GT(counters["db.compaction.offloaded"].number, 0.0);
  EXPECT_GT(counters["db.compaction.entries_dropped"].number, 0.0);
  const Value& hists = root["histograms"];
  EXPECT_GT(hists["db.compaction.micros"]["count"].number, 0.0);
  EXPECT_GE(hists["db.compaction.micros"]["p99"].number,
            hists["db.compaction.micros"]["p50"].number);
  EXPECT_GT(hists["db.flush.micros"]["count"].number, 0.0);

  // Host offload and FPGA pipeline telemetry.
  EXPECT_GT(counters["host.device.attempts"].number, 0.0);
  EXPECT_GT(counters["fpga.kernel.launches"].number, 0.0);
  EXPECT_GT(counters["fpga.decoder.busy_cycles"].number, 0.0);
  EXPECT_GT(counters["fpga.comparer.busy_cycles"].number, 0.0);
  EXPECT_GT(counters["fpga.encoder.busy_cycles"].number, 0.0);
  EXPECT_GT(counters["fpga.records.in"].number, 0.0);

  const Value& gauges = root["gauges"];
  EXPECT_GT(gauges["fpga.fifo.output_peak"].number, 0.0);
  ASSERT_TRUE(gauges.Has("fpga.bottleneck.comparer_share_pct"));

  // Health-monitor state (breaker closed, jobs succeeded).
  EXPECT_EQ(0.0, gauges["health.quarantined"].number);
  EXPECT_GT(gauges["health.jobs_succeeded"].number, 0.0);
}

TEST_F(DbMetricsTest, TracePropertyIsValidChromeTracing) {
  host::FcaeDevice device(fpga::EngineConfig{});
  host::FcaeCompactionExecutor executor(&device);
  std::unique_ptr<DB> db = OpenDb(&executor);
  RunWorkload(db.get());

  std::string json;
  ASSERT_TRUE(db->GetProperty("fcae.trace", &json));
  Value root = MustParse(json);
  const auto& events = root["traceEvents"].array;
  ASSERT_FALSE(events.empty());
  for (const Value& e : events) {
    EXPECT_TRUE(e.Has("name"));
    EXPECT_TRUE(e.Has("ts"));
    ASSERT_TRUE(e.Has("ph"));
    EXPECT_TRUE(e["ph"].str == "X" || e["ph"].str == "i") << e["ph"].str;
  }
}

// The golden trace: arm kernel timeouts on the first two launches with
// max_attempts=2, so the first offloaded compaction retries once, fails,
// and reruns on the CPU. Its track must contain the full nested
// lifecycle.
TEST_F(DbMetricsTest, GoldenTraceRetryThenCpuFallback) {
  fpga::DeviceFaultConfig fault_config;
  fpga::DeviceFaultInjector injector(fault_config);
  injector.ArmOneShot(fpga::DeviceFaultClass::kKernelTimeout, 1);
  injector.ArmOneShot(fpga::DeviceFaultClass::kKernelTimeout, 2);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 9;
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);

  host::FcaeExecutorOptions exec_options;
  exec_options.max_attempts = 2;
  exec_options.backoff_base_micros = 10;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db = OpenDb(&executor);
  RunWorkload(db.get());

  std::string json;
  ASSERT_TRUE(db->GetProperty("fcae.trace", &json));
  Value root = MustParse(json);
  const auto& events = root["traceEvents"].array;
  EXPECT_EQ(0.0, root["eventsDropped"].number);

  // Locate the fallback instant; its tid identifies the failed job's
  // track.
  const Value* fallback = nullptr;
  for (const Value& e : events) {
    if (e["name"].str == "cpu_fallback") {
      fallback = &e;
      break;
    }
  }
  ASSERT_NE(nullptr, fallback) << json.substr(0, 2000);
  const double tid = (*fallback)["tid"].number;
  EXPECT_GT(tid, 0.0);  // Track 0 is the scheduler/flush track.

  // Collect that track's events.
  std::map<std::string, std::vector<const Value*>> track;
  for (const Value& e : events) {
    if (e["tid"].number == tid) track[e["name"].str].push_back(&e);
  }

  // The enclosing compaction span exists exactly once.
  ASSERT_EQ(1u, track["compaction"].size());
  const Value& compaction = *track["compaction"][0];
  EXPECT_EQ("X", compaction["ph"].str);
  EXPECT_EQ(Value::kBool, compaction["args"]["offloaded"].kind);
  EXPECT_FALSE(compaction["args"]["offloaded"].boolean);
  EXPECT_TRUE(compaction["args"]["fallback"].boolean);
  const double c_begin = compaction["ts"].number;
  const double c_end = c_begin + compaction["dur"].number;

  // Both device attempts, one retry instant, the CPU merge rerun and
  // the manifest install are all present on the track.
  EXPECT_EQ(2u, track["device_attempt"].size());
  ASSERT_EQ(1u, track["retry"].size());
  EXPECT_EQ(2.0, (*track["retry"][0])["args"]["attempt"].number);
  ASSERT_EQ(1u, track["input_build"].size());
  ASSERT_EQ(1u, track["merge"].size());
  EXPECT_EQ("cpu", (*track["merge"][0])["cat"].str);
  ASSERT_EQ(1u, track["install"].size());

  // Span nesting: every event of the track lies inside the compaction
  // span's wall-clock window, and spans are fully contained.
  for (const auto& entry : track) {
    if (entry.first == "compaction") continue;
    for (const Value* e : entry.second) {
      const double ts = (*e)["ts"].number;
      EXPECT_GE(ts, c_begin) << entry.first;
      EXPECT_LE(ts, c_end) << entry.first;
      if ((*e)["ph"].str == "X") {
        EXPECT_LE(ts + (*e)["dur"].number, c_end) << entry.first;
      }
    }
  }

  // Chronology within the track: build inputs, attempt, retry, second
  // attempt, then the CPU merge.
  const double attempt1 = (*track["device_attempt"][0])["ts"].number;
  const double attempt2 = (*track["device_attempt"][1])["ts"].number;
  const double retry_ts = (*track["retry"][0])["ts"].number;
  EXPECT_LE((*track["input_build"][0])["ts"].number, attempt1);
  EXPECT_LE(attempt1, retry_ts);
  EXPECT_LE(retry_ts, attempt2);
  EXPECT_LE(attempt2, (*track["merge"][0])["ts"].number);

  // The failure is mirrored in the metrics.
  std::string metrics_json;
  ASSERT_TRUE(db->GetProperty("fcae.metrics", &metrics_json));
  Value metrics = MustParse(metrics_json);
  EXPECT_GE(metrics["counters"]["db.compaction.fallbacks"].number, 1.0);
  EXPECT_GE(metrics["counters"]["host.device.retries"].number, 1.0);
  EXPECT_GE(metrics["counters"]["host.device.faults"].number, 2.0);
  EXPECT_GE(metrics["counters"]["host.device.jobs_failed"].number, 1.0);
}

class RecordingSink : public obs::TraceSink {
 public:
  void Append(const obs::TraceEvent& event) override {
    MutexLock lock(&mutex_);
    names_.push_back(event.name);
  }
  std::vector<std::string> names() const {
    MutexLock lock(&mutex_);
    return names_;
  }

 private:
  mutable Mutex mutex_;
  std::vector<std::string> names_;
};

TEST_F(DbMetricsTest, OptionsInjectRegistryAndSink) {
  obs::MetricsRegistry registry;
  RecordingSink sink;
  {
    std::unique_ptr<DB> db = OpenDb(nullptr, &registry, &sink);
    RunWorkload(db.get());

    // The caller-owned registry is the one the DB publishes to, and the
    // property export reads from it.
    EXPECT_GT(registry.counter("db.compaction.count")->value(), 0u);
    std::string json;
    ASSERT_TRUE(db->GetProperty("fcae.metrics", &json));
    Value root = MustParse(json);
    EXPECT_EQ(
        static_cast<double>(registry.counter("db.compaction.count")->value()),
        root["counters"]["db.compaction.count"].number);
  }
  // The sink streamed the span lifecycle live (even events the ring
  // might have evicted).
  std::vector<std::string> names = sink.names();
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "flush"));
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "compaction"));
  EXPECT_NE(names.end(), std::find(names.begin(), names.end(), "pick"));
}

TEST_F(DbMetricsTest, NumFilesAtLevelDigitParsing) {
  std::unique_ptr<DB> db = OpenDb(nullptr);
  std::string value;

  ASSERT_TRUE(db->GetProperty("fcae.num-files-at-level0", &value));
  EXPECT_EQ("0", value);
  // Two digits parse (and "00" is still level 0)...
  EXPECT_TRUE(db->GetProperty("fcae.num-files-at-level00", &value));
  // ...but out-of-range levels are rejected.
  EXPECT_FALSE(db->GetProperty("fcae.num-files-at-level99", &value));
  // Regression: a digit string long enough to overflow a uint64
  // accumulator must be rejected, not wrapped into a valid level.
  EXPECT_FALSE(db->GetProperty(
      "fcae.num-files-at-level18446744073709551617", &value));
  EXPECT_FALSE(db->GetProperty("fcae.num-files-at-level000", &value));
  EXPECT_FALSE(db->GetProperty("fcae.num-files-at-level", &value));
  EXPECT_FALSE(db->GetProperty("fcae.num-files-at-level1x", &value));
}

}  // namespace
}  // namespace fcae
