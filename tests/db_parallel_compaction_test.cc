// Stress tests for the parallel compaction scheduler: foreground
// writers, point readers, and iterators run against a DB compacting
// with four workers and sub-compaction sharding while the offload
// device injects faults. Runs under the "stress" ctest configuration
// (TSan in the nightly CI job).
//
// Also checks the core correctness contract of parallelism: the DB
// contents after a workload are identical whether compactions ran on
// one thread or four with sharding enabled.

#include <atomic>
#include <map>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "fpga/fault_injector.h"
#include "gtest/gtest.h"
#include "host/device_health_monitor.h"
#include "host/device_set.h"
#include "host/fcae_device.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"

namespace fcae {

namespace {

std::string MakeValue(int thread, int counter) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), "t%02d-c%08d-", thread, counter);
  std::string v(buf);
  v.append(100, static_cast<char>('a' + thread));
  return v;
}

bool LooksWellFormed(const std::string& value) {
  return value.size() == 14 + 100 && value[0] == 't' && value[13] == '-';
}

/// Full ordered dump of the DB's live contents.
std::vector<std::pair<std::string, std::string>> DumpContents(DB* db) {
  std::vector<std::pair<std::string, std::string>> out;
  std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
  for (it->SeekToFirst(); it->Valid(); it->Next()) {
    out.emplace_back(it->key().ToString(), it->value().ToString());
  }
  EXPECT_TRUE(it->status().ok());
  return out;
}

}  // namespace

class DBParallelCompactionTest : public testing::Test {
 public:
  DBParallelCompactionTest() : env_(NewMemEnv(Env::Default())) {}

  std::unique_ptr<DB> OpenDb(const std::string& name,
                             CompactionExecutor* executor, int threads,
                             int subcompactions, int offload_cards = 1) {
    Options options;
    options.env = env_.get();
    options.create_if_missing = true;
    options.write_buffer_size = 64 * 1024;
    options.compaction_executor = executor;
    options.compaction_threads = threads;
    options.max_subcompactions = subcompactions;
    options.num_offload_cards = offload_cards;
    DB* db = nullptr;
    EXPECT_TRUE(DB::Open(options, name, &db).ok());
    return std::unique_ptr<DB>(db);
  }

  std::unique_ptr<Env> env_;
};

TEST_F(DBParallelCompactionTest, WritersReadersUnderFourWorkersWithFaults) {
  // Transient device faults force retries and CPU fallbacks while four
  // compaction workers and sharded L0->L1 jobs churn in the background.
  // No acknowledged write may be lost; no torn value may be observed.
  fpga::DeviceFaultConfig fault_config;
  fault_config.seed = 20260806;
  fault_config.transient_rate = 0.10;
  fpga::DeviceFaultInjector injector(fault_config);

  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 2;  // Tournaments: many launches per job.
  host::FcaeDevice device(engine_config);
  device.set_fault_injector(&injector);

  host::DeviceHealthMonitor monitor;
  host::FcaeExecutorOptions exec_options;
  exec_options.tournament_scheduling = true;
  exec_options.health_monitor = &monitor;
  host::FcaeCompactionExecutor executor(&device, exec_options);

  std::unique_ptr<DB> db =
      OpenDb("/parallel-stress", &executor, /*threads=*/4,
             /*subcompactions=*/4);

  constexpr int kWriterThreads = 4;
  constexpr int kKeysPerWriter = 400;
  constexpr int kWritesPerThread = 3000;

  std::atomic<bool> stop{false};
  std::atomic<bool> write_failed{false};
  std::atomic<int> torn{0};

  // Writers own disjoint key ranges; constant overwrites drive flushes
  // and keep all four compaction workers claiming level pairs.
  std::vector<std::thread> writers;
  std::vector<std::map<std::string, std::string>> last_written(kWriterThreads);
  for (int t = 0; t < kWriterThreads; t++) {
    writers.emplace_back([&, t]() {
      Random rnd(9000 + t);
      WriteOptions wo;
      for (int i = 1; i <= kWritesPerThread; i++) {
        std::string key = "w" + std::to_string(t) + "-k" +
                          std::to_string(rnd.Uniform(kKeysPerWriter));
        std::string value = MakeValue(t, i);
        if (!db->Put(wo, key, value).ok()) {
          write_failed.store(true);
          return;
        }
        last_written[t][key] = value;
      }
    });
  }

  // Point readers: every observed value must be structurally intact.
  std::vector<std::thread> readers;
  for (int r = 0; r < 2; r++) {
    readers.emplace_back([&, r]() {
      Random rnd(500 + r);
      std::string value;
      while (!stop.load()) {
        std::string key =
            "w" + std::to_string(rnd.Uniform(kWriterThreads)) + "-k" +
            std::to_string(rnd.Uniform(kKeysPerWriter));
        Status s = db->Get(ReadOptions(), key, &value);
        if (s.ok() && !LooksWellFormed(value)) torn.fetch_add(1);
      }
    });
  }

  // Iterator scans: snapshot consistency across concurrent installs.
  std::thread scanner([&]() {
    while (!stop.load()) {
      std::unique_ptr<Iterator> it(db->NewIterator(ReadOptions()));
      std::string prev;
      for (it->SeekToFirst(); it->Valid(); it->Next()) {
        std::string key = it->key().ToString();
        if (!prev.empty() && key <= prev) torn.fetch_add(1);
        if (!LooksWellFormed(it->value().ToString())) torn.fetch_add(1);
        prev = key;
      }
    }
  });

  for (std::thread& w : writers) w.join();
  stop.store(true);
  for (std::thread& r : readers) r.join();
  scanner.join();

  ASSERT_FALSE(write_failed.load());
  EXPECT_EQ(torn.load(), 0);

  // Every acknowledged write's final value must be durable and intact.
  std::string value;
  for (int t = 0; t < kWriterThreads; t++) {
    for (const auto& kv : last_written[t]) {
      ASSERT_TRUE(db->Get(ReadOptions(), kv.first, &value).ok())
          << "lost key " << kv.first;
      EXPECT_EQ(value, kv.second) << "stale value for " << kv.first;
    }
  }

  // The scheduler property reflects a drained, parallel-capable pool.
  std::string prop;
  ASSERT_TRUE(db->GetProperty("fcae.scheduler", &prop));
  EXPECT_NE(prop.find("/4"), std::string::npos) << prop;
}

TEST_F(DBParallelCompactionTest, ParallelContentsMatchSequential) {
  // The same deterministic workload (overwrites + deletes + manual
  // compaction) must produce identical logical contents whether
  // compactions run on one worker or four with sharding.
  fpga::EngineConfig engine_config;
  host::FcaeDevice device_seq(engine_config);
  host::FcaeCompactionExecutor exec_seq(&device_seq);
  host::FcaeDevice device_par(engine_config);
  host::FcaeCompactionExecutor exec_par(&device_par);

  auto run_workload = [](DB* db) {
    Random rnd(4711);
    WriteOptions wo;
    for (int round = 0; round < 6; round++) {
      for (int i = 0; i < 2000; i++) {
        std::string key = "key" + std::to_string(rnd.Uniform(1500));
        if (rnd.Uniform(10) == 0) {
          ASSERT_TRUE(db->Delete(wo, key).ok());
        } else {
          std::string value = "v" + std::to_string(round) + "-" + key +
                              std::string(64, 'x');
          ASSERT_TRUE(db->Put(wo, key, value).ok());
        }
      }
    }
    db->CompactRange(nullptr, nullptr);
  };

  std::unique_ptr<DB> seq =
      OpenDb("/seq", &exec_seq, /*threads=*/1, /*subcompactions=*/1);
  run_workload(seq.get());
  std::vector<std::pair<std::string, std::string>> seq_dump =
      DumpContents(seq.get());

  std::unique_ptr<DB> par =
      OpenDb("/par", &exec_par, /*threads=*/4, /*subcompactions=*/4);
  run_workload(par.get());
  std::vector<std::pair<std::string, std::string>> par_dump =
      DumpContents(par.get());

  ASSERT_FALSE(seq_dump.empty());
  ASSERT_EQ(seq_dump.size(), par_dump.size());
  EXPECT_TRUE(seq_dump == par_dump);
}

TEST_F(DBParallelCompactionTest, QuarantinedCardContentsMatchSingleCard) {
  // Two-card set with card 0 quarantined before the workload: the
  // healthy sibling must absorb every sharded compaction (no CPU
  // fallback because the device path was "full"), and the resulting DB
  // contents must be byte-identical to a single-card run of the same
  // deterministic workload.
  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 9;
  host::DeviceSet devices(engine_config, /*num_cards=*/2);
  host::FcaeCompactionExecutor two_card_exec(&devices);
  devices.monitor(0)->RecordJobFailure(/*sticky=*/true);
  ASSERT_TRUE(devices.monitor(0)->quarantined());

  host::FcaeDevice lone_device(engine_config);
  host::FcaeCompactionExecutor one_card_exec(&lone_device);

  auto run_workload = [](DB* db) {
    Random rnd(20260808);
    WriteOptions wo;
    for (int round = 0; round < 5; round++) {
      for (int i = 0; i < 2000; i++) {
        std::string key = "key" + std::to_string(rnd.Uniform(1200));
        if (rnd.Uniform(12) == 0) {
          ASSERT_TRUE(db->Delete(wo, key).ok());
        } else {
          ASSERT_TRUE(db->Put(wo, key,
                              "r" + std::to_string(round) + "-" + key +
                                  std::string(80, 'z'))
                          .ok());
        }
      }
    }
    db->CompactRange(nullptr, nullptr);
  };

  std::unique_ptr<DB> two = OpenDb("/two-card", &two_card_exec,
                                   /*threads=*/4, /*subcompactions=*/4,
                                   /*offload_cards=*/2);
  run_workload(two.get());
  std::vector<std::pair<std::string, std::string>> two_dump =
      DumpContents(two.get());

  std::unique_ptr<DB> one = OpenDb("/one-card", &one_card_exec,
                                   /*threads=*/1, /*subcompactions=*/1);
  run_workload(one.get());
  std::vector<std::pair<std::string, std::string>> one_dump =
      DumpContents(one.get());

  ASSERT_FALSE(one_dump.empty());
  ASSERT_EQ(one_dump.size(), two_dump.size());
  EXPECT_TRUE(one_dump == two_dump);

  // The dead card ran nothing; the healthy one took every shard; the DB
  // never fell back to CPU compaction for lack of a device.
  EXPECT_EQ(0u, devices.device(0)->kernels_launched());
  EXPECT_GT(devices.device(1)->kernels_launched(), 0u);
  auto* impl = reinterpret_cast<DBImpl*>(two.get());
  EXPECT_EQ(0, impl->FallbackCompactions());
}

TEST_F(DBParallelCompactionTest, WritersReadersUnderTwoCardsWithFaults) {
  // Multi-card fault storm: both cards draw independent transient fault
  // streams (per-card seeds) while four compaction workers shard jobs
  // across them. No acknowledged write may be lost.
  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 9;
  host::DeviceSet devices(engine_config, /*num_cards=*/2);
  fpga::DeviceFaultConfig fault_config;
  fault_config.seed = 20260807;
  fault_config.transient_rate = 0.08;
  devices.InjectFaults(fault_config);
  host::FcaeCompactionExecutor executor(&devices);

  std::unique_ptr<DB> db =
      OpenDb("/two-card-storm", &executor, /*threads=*/4,
             /*subcompactions=*/4, /*offload_cards=*/2);

  constexpr int kWriterThreads = 4;
  constexpr int kKeysPerWriter = 400;
  constexpr int kWritesPerThread = 2500;

  std::atomic<bool> write_failed{false};
  std::vector<std::thread> writers;
  std::vector<std::map<std::string, std::string>> last_written(kWriterThreads);
  for (int t = 0; t < kWriterThreads; t++) {
    writers.emplace_back([&, t]() {
      Random rnd(7000 + t);
      WriteOptions wo;
      for (int i = 1; i <= kWritesPerThread; i++) {
        std::string key = "w" + std::to_string(t) + "-k" +
                          std::to_string(rnd.Uniform(kKeysPerWriter));
        std::string value = MakeValue(t, i);
        if (!db->Put(wo, key, value).ok()) {
          write_failed.store(true);
          return;
        }
        last_written[t][key] = value;
      }
    });
  }
  for (std::thread& w : writers) w.join();
  ASSERT_FALSE(write_failed.load());
  db->CompactRange(nullptr, nullptr);

  std::string value;
  for (int t = 0; t < kWriterThreads; t++) {
    for (const auto& kv : last_written[t]) {
      ASSERT_TRUE(db->Get(ReadOptions(), kv.first, &value).ok())
          << "lost key " << kv.first;
      EXPECT_EQ(value, kv.second) << "stale value for " << kv.first;
    }
  }

  // Both independent fault streams were actually consulted.
  ASSERT_NE(nullptr, devices.injector(0));
  ASSERT_NE(nullptr, devices.injector(1));
  uint64_t launches =
      devices.injector(0)->launches() + devices.injector(1)->launches();
  EXPECT_GT(launches, 0u);
}

TEST_F(DBParallelCompactionTest, CompactRangeWaitsForAllWorkers) {
  // CompactRange must block until every in-flight job is installed,
  // even with multiple workers: afterwards, level 0 is empty.
  fpga::EngineConfig engine_config;
  host::FcaeDevice device(engine_config);
  host::FcaeCompactionExecutor executor(&device);

  std::unique_ptr<DB> db =
      OpenDb("/compact-wait", &executor, /*threads=*/4, /*subcompactions=*/2);

  WriteOptions wo;
  Random rnd(333);
  for (int i = 0; i < 8000; i++) {
    std::string key = "k" + std::to_string(rnd.Uniform(4000));
    ASSERT_TRUE(db->Put(wo, key, key + std::string(80, 'y')).ok());
  }
  db->CompactRange(nullptr, nullptr);

  std::string num;
  ASSERT_TRUE(db->GetProperty("fcae.num-files-at-level0", &num));
  EXPECT_EQ(num, "0");
}

}  // namespace fcae
