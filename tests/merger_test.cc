#include "table/merger.h"

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "gtest/gtest.h"
#include "table/iterator.h"
#include "util/comparator.h"
#include "util/random.h"

namespace fcae {

namespace {

/// Simple in-memory iterator over a sorted vector of (key, value).
class VectorIterator : public Iterator {
 public:
  explicit VectorIterator(std::vector<std::pair<std::string, std::string>> kv)
      : kv_(std::move(kv)), index_(kv_.size()) {}

  bool Valid() const override { return index_ < kv_.size(); }
  void SeekToFirst() override { index_ = 0; }
  void SeekToLast() override { index_ = kv_.empty() ? 0 : kv_.size() - 1; }
  void Seek(const Slice& target) override {
    index_ = 0;
    while (index_ < kv_.size() &&
           Slice(kv_[index_].first).Compare(target) < 0) {
      index_++;
    }
  }
  void Next() override { index_++; }
  void Prev() override {
    if (index_ == 0) {
      index_ = kv_.size();  // Invalid.
    } else {
      index_--;
    }
  }
  Slice key() const override { return kv_[index_].first; }
  Slice value() const override { return kv_[index_].second; }
  Status status() const override { return Status::OK(); }

 private:
  std::vector<std::pair<std::string, std::string>> kv_;
  size_t index_;
};

using KvVec = std::vector<std::pair<std::string, std::string>>;

Iterator* NewVectorIterator(KvVec kv) {
  return new VectorIterator(std::move(kv));
}

}  // namespace

TEST(MergerTest, EmptyChildren) {
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(BytewiseComparator(), nullptr, 0));
  iter->SeekToFirst();
  ASSERT_FALSE(iter->Valid());
}

TEST(MergerTest, SingleChildPassThrough) {
  std::vector<std::pair<std::string, std::string>> kv = {{"a", "1"},
                                                         {"b", "2"}};
  Iterator* child = new VectorIterator(kv);
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(BytewiseComparator(), &child, 1));
  iter->SeekToFirst();
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("a", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("b", iter->key().ToString());
  iter->Next();
  ASSERT_FALSE(iter->Valid());
}

TEST(MergerTest, TwoWayMerge) {
  Iterator* children[2];
  children[0] = NewVectorIterator(KvVec{{"a", "1"}, {"c", "3"}, {"e", "5"}});
  children[1] = NewVectorIterator(KvVec{{"b", "2"}, {"d", "4"}, {"f", "6"}});
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(BytewiseComparator(), children, 2));

  std::string keys;
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    keys += iter->key().ToString();
  }
  ASSERT_EQ("abcdef", keys);
}

TEST(MergerTest, ReverseMerge) {
  Iterator* children[2];
  children[0] = NewVectorIterator(KvVec{{"a", "1"}, {"c", "3"}});
  children[1] = NewVectorIterator(KvVec{{"b", "2"}, {"d", "4"}});
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(BytewiseComparator(), children, 2));

  std::string keys;
  for (iter->SeekToLast(); iter->Valid(); iter->Prev()) {
    keys += iter->key().ToString();
  }
  ASSERT_EQ("dcba", keys);
}

TEST(MergerTest, SeekLandsOnSmallestUpperBound) {
  Iterator* children[3];
  children[0] = NewVectorIterator(KvVec{{"apple", "1"}, {"melon", "2"}});
  children[1] = NewVectorIterator(KvVec{{"banana", "3"}});
  children[2] = NewVectorIterator(KvVec{{"cherry", "4"}, {"kiwi", "5"}});
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(BytewiseComparator(), children, 3));

  iter->Seek("b");
  ASSERT_TRUE(iter->Valid());
  ASSERT_EQ("banana", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("cherry", iter->key().ToString());
}

TEST(MergerTest, DirectionSwitch) {
  Iterator* children[2];
  children[0] = NewVectorIterator(KvVec{{"a", "1"}, {"c", "3"}, {"e", "5"}});
  children[1] = NewVectorIterator(KvVec{{"b", "2"}, {"d", "4"}});
  std::unique_ptr<Iterator> iter(
      NewMergingIterator(BytewiseComparator(), children, 2));

  iter->Seek("c");
  ASSERT_EQ("c", iter->key().ToString());
  iter->Prev();
  ASSERT_EQ("b", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("c", iter->key().ToString());
  iter->Next();
  ASSERT_EQ("d", iter->key().ToString());
}

// Property: merging K random sorted vectors equals merging via std::map.
class MergerPropertyTest : public testing::TestWithParam<int> {};

TEST_P(MergerPropertyTest, MatchesModel) {
  Random rnd(GetParam());
  int k = 1 + rnd.Uniform(9);
  std::map<std::string, std::string> model;
  std::vector<Iterator*> children;
  for (int c = 0; c < k; c++) {
    std::map<std::string, std::string> sorted;
    int n = rnd.Uniform(200);
    for (int i = 0; i < n; i++) {
      // Distinct keys per child (suffix c) so the model is exact.
      std::string key =
          "k" + std::to_string(rnd.Uniform(10000)) + "_" + std::to_string(c);
      sorted[key] = std::to_string(rnd.Next());
    }
    model.insert(sorted.begin(), sorted.end());
    std::vector<std::pair<std::string, std::string>> kv(sorted.begin(),
                                                        sorted.end());
    children.push_back(new VectorIterator(std::move(kv)));
  }
  std::unique_ptr<Iterator> iter(NewMergingIterator(
      BytewiseComparator(), children.data(), static_cast<int>(k)));

  auto expected = model.begin();
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    ASSERT_NE(expected, model.end());
    ASSERT_EQ(expected->first, iter->key().ToString());
    ASSERT_EQ(expected->second, iter->value().ToString());
    ++expected;
  }
  ASSERT_EQ(expected, model.end());
}

INSTANTIATE_TEST_SUITE_P(Seeds, MergerPropertyTest, testing::Range(1, 13));

}  // namespace fcae
