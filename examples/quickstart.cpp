// Quickstart: open a database, write, read, scan, delete — the
// LevelDB-compatible public API (lsm/db.h). Runs against a real on-disk
// database in a temporary directory.
//
//   ./examples/quickstart [db_path]

#include <cstdio>
#include <memory>
#include <string>

#include "lsm/db.h"
#include "table/iterator.h"
#include "lsm/write_batch.h"

namespace {

/// Demo helper: the quickstart has no recovery story, so any failed
/// operation just aborts with the status message.
void OrDie(const fcae::Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s failed: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fcae;

  const std::string path = argc > 1 ? argv[1] : "/tmp/fcae_quickstart_db";

  Options options;
  options.create_if_missing = true;

  DB* raw_db = nullptr;
  Status s = DB::Open(options, path, &raw_db);
  if (!s.ok()) {
    std::fprintf(stderr, "open failed: %s\n", s.ToString().c_str());
    return 1;
  }
  std::unique_ptr<DB> db(raw_db);
  std::printf("opened %s\n", path.c_str());

  // Single writes.
  WriteOptions wo;
  OrDie(db->Put(wo, "language", "C++20"), "put");
  OrDie(db->Put(wo, "paper",
                "FPGA-based Compaction Engine for LSM-tree KV Stores"),
        "put");
  OrDie(db->Put(wo, "venue", "ICDE 2020"), "put");

  // Atomic multi-key batch.
  WriteBatch batch;
  batch.Put("board", "Xilinx KCU1500");
  batch.Put("clock", "200 MHz");
  batch.Delete("venue");
  s = db->Write(wo, &batch);
  if (!s.ok()) {
    std::fprintf(stderr, "batch write failed: %s\n", s.ToString().c_str());
    return 1;
  }

  // Point reads.
  std::string value;
  s = db->Get(ReadOptions(), "paper", &value);
  std::printf("paper  -> %s\n", s.ok() ? value.c_str() : s.ToString().c_str());
  s = db->Get(ReadOptions(), "venue", &value);
  std::printf("venue  -> %s (deleted in the batch)\n",
              s.IsNotFound() ? "NotFound" : value.c_str());

  // Snapshot isolation.
  const Snapshot* snap = db->GetSnapshot();
  OrDie(db->Put(wo, "language", "Rust?!"), "put");
  ReadOptions at_snap;
  // Snapshots are passed by sequence number in this API; the Snapshot
  // handle manages the pin. See lsm/snapshot.h.
  OrDie(db->Get(ReadOptions(), "language", &value), "get");
  std::printf("language (latest) -> %s\n", value.c_str());
  db->ReleaseSnapshot(snap);
  OrDie(db->Put(wo, "language", "C++20"), "put");
  (void)at_snap;

  // Full scan.
  std::printf("scan:\n");
  std::unique_ptr<Iterator> iter(db->NewIterator(ReadOptions()));
  for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
    std::printf("  %-10s -> %s\n", iter->key().ToString().c_str(),
                iter->value().ToString().c_str());
  }

  // Engine statistics (files per level, compaction stats).
  std::string stats;
  if (db->GetProperty("fcae.stats", &stats)) {
    std::printf("\n%s\n", stats.c_str());
  }

  std::printf("done.\n");
  return 0;
}
