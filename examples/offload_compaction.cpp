// Drives the FPGA compaction engine directly: builds two sorted runs of
// real SSTables, stages them into the device memory layout (Figs. 7-8),
// runs the cycle-level engine at several configurations, and compares
// kernel speed and cycle counts against the single-threaded CPU merge —
// a miniature of the paper's Table V experiment you can play with.
//
//   ./examples/offload_compaction [value_length]

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>

#include "fpga/compaction_engine.h"
#include "fpga/resource_model.h"
#include "fpga/timing_model.h"
#include "host/cpu_compactor.h"
#include "host/sstable_stager.h"
#include "lsm/dbformat.h"
#include "table/table_builder.h"
#include "util/mem_env.h"
#include "workload/key_generator.h"

namespace {

constexpr uint64_t kNoSnapshot = 1ull << 40;

fcae::Status BuildRun(fcae::Env* env, const std::string& fname,
                      uint64_t start, uint64_t count, uint64_t stride,
                      size_t value_len, fcae::fpga::DeviceInput* input) {
  using namespace fcae;
  static InternalKeyComparator icmp(BytewiseComparator());
  Options options;
  options.env = env;
  options.comparator = &icmp;

  workload::KeyFormatter keys(16);
  workload::ValueGenerator values(42);

  WritableFile* file;
  Status s = env->NewWritableFile(fname, &file);
  if (!s.ok()) return s;
  {
    TableBuilder builder(options, file);
    for (uint64_t i = 0; i < count; i++) {
      std::string ikey;
      AppendInternalKey(&ikey,
                        ParsedInternalKey(keys.Format(start + i * stride),
                                          1000 + i, kTypeValue));
      builder.Add(ikey, values.Generate(value_len));
    }
    s = builder.Finish();
  }
  if (s.ok()) s = file->Close();
  delete file;
  if (!s.ok()) return s;

  fcae::host::SstableStager stager(env);
  return stager.AddTable(fname, input);
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fcae;

  const size_t value_len = argc > 1 ? std::atoi(argv[1]) : 512;
  const uint64_t records = (4 << 20) / (24 + value_len);

  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));
  fpga::DeviceInput in_a, in_b;
  Status s = BuildRun(env.get(), "/a.ldb", 0, records, 2, value_len, &in_a);
  if (s.ok()) {
    s = BuildRun(env.get(), "/b.ldb", 1, records, 2, value_len, &in_b);
  }
  if (!s.ok()) {
    std::fprintf(stderr, "build: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("staged 2 runs x %llu records (value %zu B, %.1f MB total)\n",
              (unsigned long long)records, value_len,
              (in_a.TotalBytes() + in_b.TotalBytes()) / 1048576.0);

  // CPU baseline.
  host::CpuCompactorOptions cpu_options;
  cpu_options.smallest_snapshot = kNoSnapshot;
  cpu_options.drop_deletions = true;
  fpga::DeviceOutput cpu_out;
  host::CpuCompactStats cpu_stats;
  s = host::CpuCompactImages({&in_a, &in_b}, cpu_options, &cpu_out,
                             &cpu_stats);
  if (!s.ok()) {
    std::fprintf(stderr, "cpu: %s\n", s.ToString().c_str());
    return 1;
  }
  std::printf("\nCPU single-thread merge: %.1f MB/s (%.1f ms, %llu records"
              ")\n",
              cpu_stats.SpeedMBps(), cpu_stats.micros / 1e3,
              (unsigned long long)cpu_stats.records_in);

  // Engine at several value-path widths.
  std::printf("\n%-28s %10s %12s %9s %8s\n", "engine config", "cycles",
              "kernel(ms)", "MB/s", "vs CPU");
  for (int v : {8, 16, 32, 64}) {
    fpga::EngineConfig config;
    config.num_inputs = 2;
    config.value_width = v;
    fpga::DeviceOutput out;
    fpga::CompactionEngine engine(config, {&in_a, &in_b}, kNoSnapshot, true,
                                  &out);
    s = engine.Run();
    if (!s.ok()) {
      std::fprintf(stderr, "engine: %s\n", s.ToString().c_str());
      return 1;
    }
    const auto& stats = engine.stats();
    char label[64];
    std::snprintf(label, sizeof(label), "N=2 W_in=64 V=%-2d @200MHz", v);
    std::printf("%-28s %10llu %12.2f %9.1f %7.1fx\n", label,
                (unsigned long long)stats.cycles,
                stats.Micros(config) / 1e3,
                stats.CompactionSpeedMBps(config),
                stats.CompactionSpeedMBps(config) / cpu_stats.SpeedMBps());

    // Functional equivalence with the CPU path.
    if (out.tables.size() != cpu_out.tables.size() ||
        (out.tables.size() > 0 &&
         out.tables[0].data_memory != cpu_out.tables[0].data_memory)) {
      std::fprintf(stderr, "DIVERGENCE: engine output != CPU output!\n");
      return 1;
    }
  }
  std::printf("(outputs verified bit-identical to the CPU merge)\n");

  // Pipeline utilization at V=16 (who is the busy module?).
  {
    fpga::EngineConfig config;
    config.num_inputs = 2;
    config.value_width = 16;
    fpga::DeviceOutput out;
    fpga::CompactionEngine engine(config, {&in_a, &in_b}, kNoSnapshot, true,
                                  &out);
    if (engine.Run().ok()) {
      const auto& st = engine.stats();
      std::printf("\npipeline utilization (V=16): decoders %.0f%% "
                  "comparer %.0f%% transfer %.0f%% encoder %.0f%%\n",
                  100 * st.Utilization(st.decoder_busy),
                  100 * st.Utilization(st.comparer_busy),
                  100 * st.Utilization(st.transfer_busy),
                  100 * st.Utilization(st.encoder_busy));
    }
  }

  // What the analytic model says about the bottleneck.
  fpga::EngineConfig config;
  config.num_inputs = 2;
  config.value_width = 16;
  fpga::TimingModel model(config);
  std::printf("\nTable III bottleneck at L_key=24, L_value=%zu, V=16: %s\n",
              value_len,
              fpga::TimingModel::BottleneckName(
                  model.BottleneckModule(24, value_len)));
  std::printf("resources: %s\n",
              fpga::ResourceModel::Estimate(config).ToString().c_str());
  return 0;
}
