// End-to-end integration demo: two databases fed the same write-heavy
// workload — one compacting on the CPU, one offloading compactions to
// the simulated FPGA card — then verified to hold identical contents.
// Prints the offload statistics the DB collects (kernels launched,
// device cycles, modeled PCIe time).
//
//   ./examples/fcae_db [num_ops]

#include <cstdio>
#include <cstdlib>

#include <memory>

#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "table/iterator.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace {

/// Demo helper: abort on any failed DB operation.
void OrDie(const fcae::Status& s, const char* what) {
  if (!s.ok()) {
    std::fprintf(stderr, "%s: %s\n", what, s.ToString().c_str());
    std::exit(1);
  }
}

}  // namespace

int main(int argc, char** argv) {
  using namespace fcae;

  const int num_ops = argc > 1 ? std::atoi(argv[1]) : 20000;

  std::unique_ptr<Env> env(NewMemEnv(Env::Default()));

  // The simulated card: 9-input engine (W_in=8, V=8), the largest
  // configuration that fits the KCU1500 (Table VII).
  fpga::EngineConfig engine_config;
  engine_config.num_inputs = 9;
  engine_config.input_width = 8;
  engine_config.value_width = 8;
  host::FcaeDevice device(engine_config);
  host::FcaeCompactionExecutor executor(&device);

  auto open_db = [&](const std::string& name,
                     CompactionExecutor* exec) -> std::unique_ptr<DB> {
    Options options;
    options.env = env.get();
    options.create_if_missing = true;
    options.write_buffer_size = 256 * 1024;  // Flush often for the demo.
    options.compaction_executor = exec;
    DB* db = nullptr;
    Status s = DB::Open(options, name, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open %s: %s\n", name.c_str(),
                   s.ToString().c_str());
      std::exit(1);
    }
    return std::unique_ptr<DB>(db);
  };

  std::unique_ptr<DB> cpu_db = open_db("/cpu_db", nullptr);
  std::unique_ptr<DB> fcae_db = open_db("/fcae_db", &executor);

  std::printf("writing %d ops into both databases...\n", num_ops);
  workload::KeyFormatter keys(16);
  workload::ValueGenerator values(7);
  Random rnd(42);
  WriteOptions wo;
  for (int i = 0; i < num_ops; i++) {
    std::string key = keys.Format(rnd.Uniform(num_ops / 4 + 1));
    if (rnd.Uniform(10) < 8) {
      std::string value = values.Generate(128 + rnd.Uniform(512));
      OrDie(cpu_db->Put(wo, key, value), "cpu put");
      OrDie(fcae_db->Put(wo, key, value), "fcae put");
    } else {
      OrDie(cpu_db->Delete(wo, key), "cpu delete");
      OrDie(fcae_db->Delete(wo, key), "fcae delete");
    }
  }

  // Force both through full compactions.
  for (DB* db : {cpu_db.get(), fcae_db.get()}) {
    auto* impl = reinterpret_cast<DBImpl*>(db);
    OrDie(impl->TEST_CompactMemTable(), "flush");
    for (int level = 0; level < kNumLevels - 1; level++) {
      impl->TEST_CompactRange(level, nullptr, nullptr);
    }
  }

  // Verify identical logical contents.
  std::unique_ptr<Iterator> a(cpu_db->NewIterator(ReadOptions()));
  std::unique_ptr<Iterator> b(fcae_db->NewIterator(ReadOptions()));
  a->SeekToFirst();
  b->SeekToFirst();
  size_t entries = 0;
  while (a->Valid() && b->Valid()) {
    if (a->key() != b->key() || a->value() != b->value()) {
      std::fprintf(stderr, "DIVERGENCE at entry %zu!\n", entries);
      return 1;
    }
    a->Next();
    b->Next();
    entries++;
  }
  if (a->Valid() || b->Valid()) {
    std::fprintf(stderr, "DIVERGENCE: different entry counts!\n");
    return 1;
  }
  std::printf("verified: both databases hold the same %zu entries\n",
              entries);

  auto* impl = reinterpret_cast<DBImpl*>(fcae_db.get());
  CompactionExecStats stats = impl->OffloadStats();
  std::printf("\noffload statistics (fcae_db):\n");
  std::printf("  kernels launched : %llu\n",
              (unsigned long long)device.kernels_launched());
  std::printf("  device cycles    : %llu (%.2f ms at 200 MHz)\n",
              (unsigned long long)stats.device_cycles,
              stats.device_micros / 1e3);
  std::printf("  modeled PCIe time: %.2f ms\n", stats.pcie_micros / 1e3);
  std::printf("  records merged   : %llu (dropped %llu)\n",
              (unsigned long long)stats.entries_in,
              (unsigned long long)stats.entries_dropped);

  std::string prop;
  if (fcae_db->GetProperty("fcae.stats", &prop)) {
    std::printf("\n%s\n", prop.c_str());
  }
  return 0;
}
