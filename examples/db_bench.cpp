// A miniature of LevelDB's db_bench running against the real storage
// engine (wall-clock, real files), with optional compaction offload to
// the simulated FPGA card.
//
//   ./examples/db_bench [--benchmarks=fillseq,fillrandom,readrandom,...]
//                       [--num=100000] [--value_size=128] [--key_size=16]
//                       [--db=/tmp/fcae_bench] [--use_fcae=0|1|2]
//                       [--write_buffer_size=4194304] [--mem_env=1]
//                       [--compaction_threads=2] [--subcompactions=1]
//                       [--num_offload_cards=1]
//                       [--metrics_out=path] [--metrics_prom_out=path]
//                       [--trace_out=path]
//
// use_fcae: 0 = CPU compaction, 1 = offload (strict Fig. 6 policy),
//           2 = offload with tournament scheduling.
//
// num_offload_cards: with use_fcae > 0, drive M simulated cards behind
// a DeviceSet (least-queued placement, shared PCIe bus) instead of one
// FcaeDevice; also raises the DB's sub-compaction shard target so the
// cards see concurrent work.
//
// metrics_out / metrics_prom_out / trace_out: after the benchmarks
// finish, write the DB's fcae.metrics JSON (counters/gauges/histograms),
// the Prometheus text rendering of the same registry, and the fcae.trace
// export (chrome://tracing, load via about:tracing or ui.perfetto.dev)
// to the given paths on the real filesystem.
//
// Benchmarks: fillseq, fillrandom, overwrite, deleterandom, readrandom,
//             readmissing, readseq, compact, stats.

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "host/device_health_monitor.h"
#include "host/device_set.h"
#include "host/offload_compaction.h"
#include "lsm/db.h"
#include "lsm/db_impl.h"
#include "obs/metrics.h"
#include "table/iterator.h"
#include "util/histogram.h"
#include "util/mem_env.h"
#include "util/random.h"
#include "workload/key_generator.h"

namespace {

struct Flags {
  std::string benchmarks = "fillseq,readseq,fillrandom,readrandom,stats";
  int num = 100000;
  int value_size = 128;
  int key_size = 16;
  std::string db = "/tmp/fcae_db_bench";
  int use_fcae = 0;
  int write_buffer_size = 4 * 1024 * 1024;
  int mem_env = 1;
  int compaction_threads = 2;
  int subcompactions = 1;
  int num_offload_cards = 1;
  std::string metrics_out;
  std::string metrics_prom_out;
  std::string trace_out;
};

Flags ParseFlags(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; i++) {
    std::string arg = argv[i];
    auto take = [&](const char* name, std::string* out) {
      std::string prefix = std::string("--") + name + "=";
      if (arg.rfind(prefix, 0) == 0) {
        *out = arg.substr(prefix.size());
        return true;
      }
      return false;
    };
    std::string v;
    if (take("benchmarks", &flags.benchmarks)) {
    } else if (take("num", &v)) {
      flags.num = std::atoi(v.c_str());
    } else if (take("value_size", &v)) {
      flags.value_size = std::atoi(v.c_str());
    } else if (take("key_size", &v)) {
      flags.key_size = std::atoi(v.c_str());
    } else if (take("db", &flags.db)) {
    } else if (take("use_fcae", &v)) {
      flags.use_fcae = std::atoi(v.c_str());
    } else if (take("write_buffer_size", &v)) {
      flags.write_buffer_size = std::atoi(v.c_str());
    } else if (take("mem_env", &v)) {
      flags.mem_env = std::atoi(v.c_str());
    } else if (take("compaction_threads", &v)) {
      flags.compaction_threads = std::atoi(v.c_str());
    } else if (take("subcompactions", &v)) {
      flags.subcompactions = std::atoi(v.c_str());
    } else if (take("num_offload_cards", &v)) {
      flags.num_offload_cards = std::atoi(v.c_str());
    } else if (take("metrics_out", &flags.metrics_out)) {
    } else if (take("metrics_prom_out", &flags.metrics_prom_out)) {
    } else if (take("trace_out", &flags.trace_out)) {
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg.c_str());
      std::exit(1);
    }
  }
  return flags;
}

class Benchmark {
 public:
  explicit Benchmark(const Flags& flags)
      : flags_(flags),
        keys_(flags.key_size),
        values_(301),
        rnd_(1000) {
    if (flags_.mem_env) {
      owned_env_.reset(fcae::NewMemEnv(fcae::Env::Default()));
    }
    env_ = owned_env_ ? owned_env_.get() : fcae::Env::Default();

    if (flags_.use_fcae > 0) {
      fcae::fpga::EngineConfig config;
      config.num_inputs = 9;
      config.input_width = 8;
      config.value_width = 8;
      fcae::host::FcaeExecutorOptions exec_options;
      exec_options.tournament_scheduling = (flags_.use_fcae == 2);
      if (flags_.num_offload_cards > 1) {
        devices_ = std::make_unique<fcae::host::DeviceSet>(
            config, flags_.num_offload_cards);
        executor_ = std::make_unique<fcae::host::FcaeCompactionExecutor>(
            devices_.get(), exec_options);
      } else {
        device_ = std::make_unique<fcae::host::FcaeDevice>(config);
        health_ = std::make_unique<fcae::host::DeviceHealthMonitor>();
        exec_options.health_monitor = health_.get();
        executor_ = std::make_unique<fcae::host::FcaeCompactionExecutor>(
            device_.get(), exec_options);
      }
    }
    Open(true);
  }

  void Open(bool fresh) {
    db_.reset();
    fcae::Options options;
    options.env = env_;
    options.create_if_missing = true;
    options.write_buffer_size = flags_.write_buffer_size;
    options.compaction_threads = flags_.compaction_threads;
    options.max_subcompactions = flags_.subcompactions;
    options.num_offload_cards = flags_.num_offload_cards;
    options.compaction_executor = executor_.get();
    // Benchmark-owned registry so --metrics_prom_out can render it
    // directly; the DB shares it instead of allocating its own.
    options.metrics_registry = &registry_;
    if (fresh) {
      // Best-effort: a stale DB that cannot be destroyed surfaces as an
      // Open error right below.
      fcae::DestroyDB(flags_.db, options).IgnoreError();
    }
    fcae::DB* db = nullptr;
    fcae::Status s = fcae::DB::Open(options, flags_.db, &db);
    if (!s.ok()) {
      std::fprintf(stderr, "open: %s\n", s.ToString().c_str());
      std::exit(1);
    }
    db_.reset(db);
  }

  void Run() {
    std::printf("keys: %d bytes, values: %d bytes, entries: %d, "
                "compaction: %s\n",
                flags_.key_size, flags_.value_size, flags_.num,
                flags_.use_fcae == 0   ? "cpu"
                : flags_.use_fcae == 1 ? "fcae(strict)"
                                       : "fcae(tournament)");
    std::string spec = flags_.benchmarks;
    size_t pos = 0;
    while (pos < spec.size()) {
      size_t comma = spec.find(',', pos);
      if (comma == std::string::npos) comma = spec.size();
      std::string name = spec.substr(pos, comma - pos);
      pos = comma + 1;
      RunOne(name);
    }
  }

  /// Dumps the obs/ telemetry after the last benchmark: fcae.metrics to
  /// --metrics_out and the fcae.trace chrome://tracing export to
  /// --trace_out. Written to the real filesystem even under --mem_env=1.
  void ExportTelemetry() {
    std::string json;
    if (!flags_.metrics_out.empty() &&
        db_->GetProperty("fcae.metrics", &json)) {
      WriteFileOrDie(flags_.metrics_out, json);
    }
    if (!flags_.metrics_prom_out.empty()) {
      // GetProperty pumps the derived counters (rate limiter, trace
      // drops) into the registry before we render it.
      db_->GetProperty("fcae.metrics", &json);
      WriteFileOrDie(flags_.metrics_prom_out, registry_.ExportPrometheus());
    }
    if (!flags_.trace_out.empty() && db_->GetProperty("fcae.trace", &json)) {
      WriteFileOrDie(flags_.trace_out, json);
    }
  }

 private:
  static void WriteFileOrDie(const std::string& path,
                             const std::string& contents) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      std::exit(1);
    }
    std::fwrite(contents.data(), 1, contents.size(), f);
    std::fclose(f);
    std::printf("wrote %s\n", path.c_str());
  }

  void RunOne(const std::string& name) {
    fcae::Histogram hist;
    uint64_t bytes = 0;
    int done = 0;
    const uint64_t start = env_->NowMicros();

    auto op_start = [&]() { return env_->NowMicros(); };
    auto op_done = [&](uint64_t t0, uint64_t op_bytes) {
      hist.Add(static_cast<double>(env_->NowMicros() - t0));
      bytes += op_bytes;
      done++;
    };

    fcae::WriteOptions wo;
    fcae::ReadOptions ro;
    const uint64_t op_size = flags_.key_size + flags_.value_size;

    if (name == "fillseq" || name == "fillrandom" || name == "overwrite") {
      if (name != "overwrite") Open(true);
      for (int i = 0; i < flags_.num; i++) {
        uint64_t id = (name == "fillseq") ? i : rnd_.Uniform(flags_.num);
        uint64_t t0 = op_start();
        fcae::Status s = db_->Put(wo, keys_.Format(id),
                                  values_.Generate(flags_.value_size));
        if (!s.ok()) Fail(name, s);
        op_done(t0, op_size);
      }
    } else if (name == "deleterandom") {
      for (int i = 0; i < flags_.num; i++) {
        uint64_t t0 = op_start();
        fcae::Status s = db_->Delete(wo, keys_.Format(rnd_.Uniform(flags_.num)));
        if (!s.ok()) Fail(name, s);
        op_done(t0, flags_.key_size);
      }
    } else if (name == "readrandom" || name == "readmissing") {
      std::string value;
      int found = 0;
      for (int i = 0; i < flags_.num; i++) {
        uint64_t id = rnd_.Uniform(flags_.num);
        std::string key = keys_.Format(id);
        if (name == "readmissing") key += ".missing";
        uint64_t t0 = op_start();
        if (db_->Get(ro, key, &value).ok()) found++;
        op_done(t0, value.size());
      }
      std::printf("  (%d of %d found)\n", found, flags_.num);
    } else if (name == "readseq") {
      std::unique_ptr<fcae::Iterator> iter(db_->NewIterator(ro));
      uint64_t t0 = op_start();
      for (iter->SeekToFirst(); iter->Valid(); iter->Next()) {
        bytes += iter->key().size() + iter->value().size();
        done++;
      }
      hist.Add(static_cast<double>(env_->NowMicros() - t0));
    } else if (name == "compact") {
      uint64_t t0 = op_start();
      db_->CompactRange(nullptr, nullptr);
      op_done(t0, 0);
    } else if (name == "stats") {
      std::string stats;
      if (db_->GetProperty("fcae.stats", &stats)) {
        std::printf("%s\n", stats.c_str());
      }
      if (device_) {
        std::printf("device: %llu kernels, %llu cycles, %.2f ms pcie\n",
                    (unsigned long long)device_->kernels_launched(),
                    (unsigned long long)device_->total_kernel_cycles(),
                    device_->total_pcie_micros() / 1e3);
      }
      if (devices_) {
        for (int c = 0; c < devices_->num_cards(); c++) {
          const fcae::host::FcaeDevice* d = devices_->device(c);
          std::printf(
              "card %d: %llu kernels, %llu cycles, %.2f ms pcie, "
              "%.2f ms dma-overlap, %.2f ms bus-wait\n",
              c, (unsigned long long)d->kernels_launched(),
              (unsigned long long)d->total_kernel_cycles(),
              d->total_pcie_micros() / 1e3,
              d->total_dma_overlap_micros() / 1e3,
              d->total_bus_wait_micros() / 1e3);
        }
      }
      return;
    } else {
      std::fprintf(stderr, "unknown benchmark: %s\n", name.c_str());
      return;
    }

    const double elapsed = (env_->NowMicros() - start) / 1e6;
    std::printf("%-12s : %11.3f micros/op; %8.1f kops/s; %7.1f MB/s"
                " (p99 %.0fus)\n",
                name.c_str(), done ? elapsed * 1e6 / done : 0,
                elapsed > 0 ? done / elapsed / 1e3 : 0,
                elapsed > 0 ? bytes / 1e6 / elapsed : 0,
                hist.Percentile(99));
  }

  void Fail(const std::string& name, const fcae::Status& s) {
    std::fprintf(stderr, "%s failed: %s\n", name.c_str(),
                 s.ToString().c_str());
    std::exit(1);
  }

  Flags flags_;
  std::unique_ptr<fcae::Env> owned_env_;
  fcae::Env* env_;
  std::unique_ptr<fcae::host::FcaeDevice> device_;
  std::unique_ptr<fcae::host::DeviceSet> devices_;
  std::unique_ptr<fcae::host::DeviceHealthMonitor> health_;
  std::unique_ptr<fcae::host::FcaeCompactionExecutor> executor_;
  fcae::obs::MetricsRegistry registry_;
  std::unique_ptr<fcae::DB> db_;
  fcae::workload::KeyFormatter keys_;
  fcae::workload::ValueGenerator values_;
  fcae::Random rnd_;
};

}  // namespace

int main(int argc, char** argv) {
  Flags flags = ParseFlags(argc, argv);
  Benchmark bench(flags);
  bench.Run();
  bench.ExportTelemetry();
  return 0;
}
