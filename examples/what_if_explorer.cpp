// What-if explorer over the calibrated system simulator: ask how the
// end-to-end write throughput responds to a hypothetical engine or
// workload configuration without owning a KCU1500 — e.g. "would a
// 4-input engine at V=32 be worth the LUTs?".
//
//   ./examples/what_if_explorer [data_gb] [value_len]

#include <cstdio>
#include <cstdlib>

#include "fpga/resource_model.h"
#include "syssim/simulator.h"

int main(int argc, char** argv) {
  using namespace fcae;
  using syssim::ExecMode;
  using syssim::SimConfig;
  using syssim::Simulator;

  const double data_gb = argc > 1 ? std::atof(argv[1]) : 1.0;
  const int value_len = argc > 2 ? std::atoi(argv[2]) : 512;

  std::printf("workload: fillrandom, %.1f GB, 16 B keys + %d B values\n\n",
              data_gb, value_len);

  SimConfig base;
  base.mode = ExecMode::kLevelDbCpu;
  base.value_length = value_len;
  const double baseline =
      Simulator(base).RunFillRandom(data_gb * 1e9).throughput_mbps;
  std::printf("%-36s %8.2f MB/s (baseline)\n", "LevelDB (2 CPU cores)",
              baseline);

  struct Candidate {
    const char* label;
    int n, win, v;
  };
  const Candidate candidates[] = {
      {"FCAE 2-input  W64 V16 (paper)", 2, 64, 16},
      {"FCAE 2-input  W64 V64", 2, 64, 64},
      {"FCAE 4-input  W32 V16", 4, 32, 16},
      {"FCAE 9-input  W8  V8  (paper)", 9, 8, 8},
      {"FCAE 9-input  W16 V8  (won't fit)", 9, 16, 8},
  };

  for (const Candidate& c : candidates) {
    SimConfig config = base;
    config.mode = ExecMode::kLevelDbFcae;
    config.engine.num_inputs = c.n;
    config.engine.input_width = c.win;
    config.engine.value_width = c.v;

    fpga::ResourceUsage usage = fpga::ResourceModel::Estimate(config.engine);
    if (!usage.Fits()) {
      std::printf("%-36s    --    (%s)\n", c.label, usage.ToString().c_str());
      continue;
    }
    auto r = Simulator(config).RunFillRandom(data_gb * 1e9);
    std::printf("%-36s %8.2f MB/s (%.2fx, %llu offloads, pcie %.2f%%, %s)\n",
                c.label, r.throughput_mbps, r.throughput_mbps / baseline,
                (unsigned long long)r.compactions_offloaded,
                r.PciePercent(), usage.ToString().c_str());
  }

  // The paper's Section VII-E future work: near-storage compaction (the
  // engine embedded in the SSD, inputs never crossing the host bus).
  {
    SimConfig config = base;
    config.mode = ExecMode::kLevelDbFcae;
    config.engine.num_inputs = 9;
    config.engine.input_width = 8;
    config.engine.value_width = 8;
    config.near_storage = true;
    auto r = Simulator(config).RunFillRandom(data_gb * 1e9);
    std::printf("%-36s %8.2f MB/s (%.2fx, pcie %.2f%%) [Sec. VII-E what-if]\n",
                "Near-storage 9-input engine", r.throughput_mbps,
                r.throughput_mbps / baseline, r.PciePercent());
  }

  std::printf(
      "\nNote: compaction kernel speeds use the paper-calibrated cost\n"
      "model (Table V / Fig. 12); host constants are fitted to Table VI.\n");
  return 0;
}
