# Empty dependencies file for bench_fig12_multi_input.
# This may be replaced when dependencies are built.
