file(REMOVE_RECURSE
  "CMakeFiles/bench_fig12_multi_input.dir/bench_fig12_multi_input.cc.o"
  "CMakeFiles/bench_fig12_multi_input.dir/bench_fig12_multi_input.cc.o.d"
  "bench_fig12_multi_input"
  "bench_fig12_multi_input.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig12_multi_input.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
