file(REMOVE_RECURSE
  "CMakeFiles/bench_table6_value_length.dir/bench_table6_value_length.cc.o"
  "CMakeFiles/bench_table6_value_length.dir/bench_table6_value_length.cc.o.d"
  "bench_table6_value_length"
  "bench_table6_value_length.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table6_value_length.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
