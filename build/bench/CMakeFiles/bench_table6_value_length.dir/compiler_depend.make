# Empty compiler generated dependencies file for bench_table6_value_length.
# This may be replaced when dependencies are built.
