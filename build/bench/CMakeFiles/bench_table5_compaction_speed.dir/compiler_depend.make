# Empty compiler generated dependencies file for bench_table5_compaction_speed.
# This may be replaced when dependencies are built.
