file(REMOVE_RECURSE
  "CMakeFiles/bench_table5_compaction_speed.dir/bench_table5_compaction_speed.cc.o"
  "CMakeFiles/bench_table5_compaction_speed.dir/bench_table5_compaction_speed.cc.o.d"
  "bench_table5_compaction_speed"
  "bench_table5_compaction_speed.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table5_compaction_speed.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
