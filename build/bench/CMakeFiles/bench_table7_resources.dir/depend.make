# Empty dependencies file for bench_table7_resources.
# This may be replaced when dependencies are built.
