file(REMOVE_RECURSE
  "CMakeFiles/bench_table7_resources.dir/bench_table7_resources.cc.o"
  "CMakeFiles/bench_table7_resources.dir/bench_table7_resources.cc.o.d"
  "bench_table7_resources"
  "bench_table7_resources.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table7_resources.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
