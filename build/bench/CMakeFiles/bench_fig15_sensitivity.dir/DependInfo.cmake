
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/bench_fig15_sensitivity.cc" "bench/CMakeFiles/bench_fig15_sensitivity.dir/bench_fig15_sensitivity.cc.o" "gcc" "bench/CMakeFiles/bench_fig15_sensitivity.dir/bench_fig15_sensitivity.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/syssim/CMakeFiles/fcae_syssim.dir/DependInfo.cmake"
  "/root/repo/build/src/host/CMakeFiles/fcae_host.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/fcae_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/fpga/CMakeFiles/fcae_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/fcae_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/fcae_table.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fcae_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fcae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
