file(REMOVE_RECURSE
  "CMakeFiles/bench_fig15_sensitivity.dir/bench_fig15_sensitivity.cc.o"
  "CMakeFiles/bench_fig15_sensitivity.dir/bench_fig15_sensitivity.cc.o.d"
  "bench_fig15_sensitivity"
  "bench_fig15_sensitivity.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig15_sensitivity.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
