# Empty dependencies file for bench_fig16_ycsb.
# This may be replaced when dependencies are built.
