file(REMOVE_RECURSE
  "CMakeFiles/bench_fig16_ycsb.dir/bench_fig16_ycsb.cc.o"
  "CMakeFiles/bench_fig16_ycsb.dir/bench_fig16_ycsb.cc.o.d"
  "bench_fig16_ycsb"
  "bench_fig16_ycsb.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig16_ycsb.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
