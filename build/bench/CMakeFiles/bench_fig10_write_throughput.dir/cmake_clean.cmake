file(REMOVE_RECURSE
  "CMakeFiles/bench_fig10_write_throughput.dir/bench_fig10_write_throughput.cc.o"
  "CMakeFiles/bench_fig10_write_throughput.dir/bench_fig10_write_throughput.cc.o.d"
  "bench_fig10_write_throughput"
  "bench_fig10_write_throughput.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig10_write_throughput.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
