# Empty compiler generated dependencies file for bench_fig10_write_throughput.
# This may be replaced when dependencies are built.
