# Empty dependencies file for bench_fig14_data_size.
# This may be replaced when dependencies are built.
