
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/table/block.cc" "src/table/CMakeFiles/fcae_table.dir/block.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/block.cc.o.d"
  "/root/repo/src/table/block_builder.cc" "src/table/CMakeFiles/fcae_table.dir/block_builder.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/block_builder.cc.o.d"
  "/root/repo/src/table/filter_block.cc" "src/table/CMakeFiles/fcae_table.dir/filter_block.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/filter_block.cc.o.d"
  "/root/repo/src/table/format.cc" "src/table/CMakeFiles/fcae_table.dir/format.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/format.cc.o.d"
  "/root/repo/src/table/iterator.cc" "src/table/CMakeFiles/fcae_table.dir/iterator.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/iterator.cc.o.d"
  "/root/repo/src/table/merger.cc" "src/table/CMakeFiles/fcae_table.dir/merger.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/merger.cc.o.d"
  "/root/repo/src/table/table.cc" "src/table/CMakeFiles/fcae_table.dir/table.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/table.cc.o.d"
  "/root/repo/src/table/table_builder.cc" "src/table/CMakeFiles/fcae_table.dir/table_builder.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/table_builder.cc.o.d"
  "/root/repo/src/table/two_level_iterator.cc" "src/table/CMakeFiles/fcae_table.dir/two_level_iterator.cc.o" "gcc" "src/table/CMakeFiles/fcae_table.dir/two_level_iterator.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fcae_util.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fcae_compress.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
