# Empty dependencies file for fcae_table.
# This may be replaced when dependencies are built.
