file(REMOVE_RECURSE
  "CMakeFiles/fcae_table.dir/block.cc.o"
  "CMakeFiles/fcae_table.dir/block.cc.o.d"
  "CMakeFiles/fcae_table.dir/block_builder.cc.o"
  "CMakeFiles/fcae_table.dir/block_builder.cc.o.d"
  "CMakeFiles/fcae_table.dir/filter_block.cc.o"
  "CMakeFiles/fcae_table.dir/filter_block.cc.o.d"
  "CMakeFiles/fcae_table.dir/format.cc.o"
  "CMakeFiles/fcae_table.dir/format.cc.o.d"
  "CMakeFiles/fcae_table.dir/iterator.cc.o"
  "CMakeFiles/fcae_table.dir/iterator.cc.o.d"
  "CMakeFiles/fcae_table.dir/merger.cc.o"
  "CMakeFiles/fcae_table.dir/merger.cc.o.d"
  "CMakeFiles/fcae_table.dir/table.cc.o"
  "CMakeFiles/fcae_table.dir/table.cc.o.d"
  "CMakeFiles/fcae_table.dir/table_builder.cc.o"
  "CMakeFiles/fcae_table.dir/table_builder.cc.o.d"
  "CMakeFiles/fcae_table.dir/two_level_iterator.cc.o"
  "CMakeFiles/fcae_table.dir/two_level_iterator.cc.o.d"
  "libfcae_table.a"
  "libfcae_table.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_table.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
