file(REMOVE_RECURSE
  "libfcae_table.a"
)
