file(REMOVE_RECURSE
  "CMakeFiles/fcae_compress.dir/snappy.cc.o"
  "CMakeFiles/fcae_compress.dir/snappy.cc.o.d"
  "libfcae_compress.a"
  "libfcae_compress.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_compress.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
