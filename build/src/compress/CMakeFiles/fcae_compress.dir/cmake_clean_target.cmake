file(REMOVE_RECURSE
  "libfcae_compress.a"
)
