# Empty compiler generated dependencies file for fcae_compress.
# This may be replaced when dependencies are built.
