file(REMOVE_RECURSE
  "libfcae_host.a"
)
