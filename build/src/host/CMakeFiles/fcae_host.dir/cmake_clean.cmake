file(REMOVE_RECURSE
  "CMakeFiles/fcae_host.dir/cpu_compactor.cc.o"
  "CMakeFiles/fcae_host.dir/cpu_compactor.cc.o.d"
  "CMakeFiles/fcae_host.dir/fcae_device.cc.o"
  "CMakeFiles/fcae_host.dir/fcae_device.cc.o.d"
  "CMakeFiles/fcae_host.dir/offload_compaction.cc.o"
  "CMakeFiles/fcae_host.dir/offload_compaction.cc.o.d"
  "CMakeFiles/fcae_host.dir/sstable_stager.cc.o"
  "CMakeFiles/fcae_host.dir/sstable_stager.cc.o.d"
  "libfcae_host.a"
  "libfcae_host.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_host.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
