# Empty dependencies file for fcae_host.
# This may be replaced when dependencies are built.
