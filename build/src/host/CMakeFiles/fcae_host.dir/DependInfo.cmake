
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/host/cpu_compactor.cc" "src/host/CMakeFiles/fcae_host.dir/cpu_compactor.cc.o" "gcc" "src/host/CMakeFiles/fcae_host.dir/cpu_compactor.cc.o.d"
  "/root/repo/src/host/fcae_device.cc" "src/host/CMakeFiles/fcae_host.dir/fcae_device.cc.o" "gcc" "src/host/CMakeFiles/fcae_host.dir/fcae_device.cc.o.d"
  "/root/repo/src/host/offload_compaction.cc" "src/host/CMakeFiles/fcae_host.dir/offload_compaction.cc.o" "gcc" "src/host/CMakeFiles/fcae_host.dir/offload_compaction.cc.o.d"
  "/root/repo/src/host/sstable_stager.cc" "src/host/CMakeFiles/fcae_host.dir/sstable_stager.cc.o" "gcc" "src/host/CMakeFiles/fcae_host.dir/sstable_stager.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/fpga/CMakeFiles/fcae_fpga.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/fcae_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/table/CMakeFiles/fcae_table.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fcae_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fcae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
