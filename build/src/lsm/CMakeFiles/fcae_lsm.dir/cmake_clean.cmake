file(REMOVE_RECURSE
  "CMakeFiles/fcae_lsm.dir/builder.cc.o"
  "CMakeFiles/fcae_lsm.dir/builder.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/cpu_compaction_executor.cc.o"
  "CMakeFiles/fcae_lsm.dir/cpu_compaction_executor.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/db_impl.cc.o"
  "CMakeFiles/fcae_lsm.dir/db_impl.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/db_iter.cc.o"
  "CMakeFiles/fcae_lsm.dir/db_iter.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/dbformat.cc.o"
  "CMakeFiles/fcae_lsm.dir/dbformat.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/filename.cc.o"
  "CMakeFiles/fcae_lsm.dir/filename.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/log_reader.cc.o"
  "CMakeFiles/fcae_lsm.dir/log_reader.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/log_writer.cc.o"
  "CMakeFiles/fcae_lsm.dir/log_writer.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/memtable.cc.o"
  "CMakeFiles/fcae_lsm.dir/memtable.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/repair.cc.o"
  "CMakeFiles/fcae_lsm.dir/repair.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/table_cache.cc.o"
  "CMakeFiles/fcae_lsm.dir/table_cache.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/version_edit.cc.o"
  "CMakeFiles/fcae_lsm.dir/version_edit.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/version_set.cc.o"
  "CMakeFiles/fcae_lsm.dir/version_set.cc.o.d"
  "CMakeFiles/fcae_lsm.dir/write_batch.cc.o"
  "CMakeFiles/fcae_lsm.dir/write_batch.cc.o.d"
  "libfcae_lsm.a"
  "libfcae_lsm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_lsm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
