file(REMOVE_RECURSE
  "libfcae_lsm.a"
)
