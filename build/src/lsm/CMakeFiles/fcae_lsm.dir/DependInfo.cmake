
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lsm/builder.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/builder.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/builder.cc.o.d"
  "/root/repo/src/lsm/cpu_compaction_executor.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/cpu_compaction_executor.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/cpu_compaction_executor.cc.o.d"
  "/root/repo/src/lsm/db_impl.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/db_impl.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/db_impl.cc.o.d"
  "/root/repo/src/lsm/db_iter.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/db_iter.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/db_iter.cc.o.d"
  "/root/repo/src/lsm/dbformat.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/dbformat.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/dbformat.cc.o.d"
  "/root/repo/src/lsm/filename.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/filename.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/filename.cc.o.d"
  "/root/repo/src/lsm/log_reader.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/log_reader.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/log_reader.cc.o.d"
  "/root/repo/src/lsm/log_writer.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/log_writer.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/log_writer.cc.o.d"
  "/root/repo/src/lsm/memtable.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/memtable.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/memtable.cc.o.d"
  "/root/repo/src/lsm/repair.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/repair.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/repair.cc.o.d"
  "/root/repo/src/lsm/table_cache.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/table_cache.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/table_cache.cc.o.d"
  "/root/repo/src/lsm/version_edit.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/version_edit.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/version_edit.cc.o.d"
  "/root/repo/src/lsm/version_set.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/version_set.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/version_set.cc.o.d"
  "/root/repo/src/lsm/write_batch.cc" "src/lsm/CMakeFiles/fcae_lsm.dir/write_batch.cc.o" "gcc" "src/lsm/CMakeFiles/fcae_lsm.dir/write_batch.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/fcae_table.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fcae_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fcae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
