# Empty compiler generated dependencies file for fcae_lsm.
# This may be replaced when dependencies are built.
