file(REMOVE_RECURSE
  "libfcae_syssim.a"
)
