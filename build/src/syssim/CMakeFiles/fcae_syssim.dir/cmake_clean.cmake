file(REMOVE_RECURSE
  "CMakeFiles/fcae_syssim.dir/cost_model.cc.o"
  "CMakeFiles/fcae_syssim.dir/cost_model.cc.o.d"
  "CMakeFiles/fcae_syssim.dir/lsm_state.cc.o"
  "CMakeFiles/fcae_syssim.dir/lsm_state.cc.o.d"
  "CMakeFiles/fcae_syssim.dir/simulator.cc.o"
  "CMakeFiles/fcae_syssim.dir/simulator.cc.o.d"
  "libfcae_syssim.a"
  "libfcae_syssim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_syssim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
