# Empty dependencies file for fcae_syssim.
# This may be replaced when dependencies are built.
