file(REMOVE_RECURSE
  "CMakeFiles/fcae_util.dir/arena.cc.o"
  "CMakeFiles/fcae_util.dir/arena.cc.o.d"
  "CMakeFiles/fcae_util.dir/bloom.cc.o"
  "CMakeFiles/fcae_util.dir/bloom.cc.o.d"
  "CMakeFiles/fcae_util.dir/cache.cc.o"
  "CMakeFiles/fcae_util.dir/cache.cc.o.d"
  "CMakeFiles/fcae_util.dir/coding.cc.o"
  "CMakeFiles/fcae_util.dir/coding.cc.o.d"
  "CMakeFiles/fcae_util.dir/comparator.cc.o"
  "CMakeFiles/fcae_util.dir/comparator.cc.o.d"
  "CMakeFiles/fcae_util.dir/crc32c.cc.o"
  "CMakeFiles/fcae_util.dir/crc32c.cc.o.d"
  "CMakeFiles/fcae_util.dir/env_posix.cc.o"
  "CMakeFiles/fcae_util.dir/env_posix.cc.o.d"
  "CMakeFiles/fcae_util.dir/histogram.cc.o"
  "CMakeFiles/fcae_util.dir/histogram.cc.o.d"
  "CMakeFiles/fcae_util.dir/mem_env.cc.o"
  "CMakeFiles/fcae_util.dir/mem_env.cc.o.d"
  "CMakeFiles/fcae_util.dir/options.cc.o"
  "CMakeFiles/fcae_util.dir/options.cc.o.d"
  "CMakeFiles/fcae_util.dir/status.cc.o"
  "CMakeFiles/fcae_util.dir/status.cc.o.d"
  "libfcae_util.a"
  "libfcae_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
