file(REMOVE_RECURSE
  "libfcae_util.a"
)
