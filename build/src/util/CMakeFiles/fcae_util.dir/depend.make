# Empty dependencies file for fcae_util.
# This may be replaced when dependencies are built.
