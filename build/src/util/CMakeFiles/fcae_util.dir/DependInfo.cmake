
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/util/arena.cc" "src/util/CMakeFiles/fcae_util.dir/arena.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/arena.cc.o.d"
  "/root/repo/src/util/bloom.cc" "src/util/CMakeFiles/fcae_util.dir/bloom.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/bloom.cc.o.d"
  "/root/repo/src/util/cache.cc" "src/util/CMakeFiles/fcae_util.dir/cache.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/cache.cc.o.d"
  "/root/repo/src/util/coding.cc" "src/util/CMakeFiles/fcae_util.dir/coding.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/coding.cc.o.d"
  "/root/repo/src/util/comparator.cc" "src/util/CMakeFiles/fcae_util.dir/comparator.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/comparator.cc.o.d"
  "/root/repo/src/util/crc32c.cc" "src/util/CMakeFiles/fcae_util.dir/crc32c.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/crc32c.cc.o.d"
  "/root/repo/src/util/env_posix.cc" "src/util/CMakeFiles/fcae_util.dir/env_posix.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/env_posix.cc.o.d"
  "/root/repo/src/util/histogram.cc" "src/util/CMakeFiles/fcae_util.dir/histogram.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/histogram.cc.o.d"
  "/root/repo/src/util/mem_env.cc" "src/util/CMakeFiles/fcae_util.dir/mem_env.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/mem_env.cc.o.d"
  "/root/repo/src/util/options.cc" "src/util/CMakeFiles/fcae_util.dir/options.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/options.cc.o.d"
  "/root/repo/src/util/status.cc" "src/util/CMakeFiles/fcae_util.dir/status.cc.o" "gcc" "src/util/CMakeFiles/fcae_util.dir/status.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
