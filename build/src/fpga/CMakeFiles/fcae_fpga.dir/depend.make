# Empty dependencies file for fcae_fpga.
# This may be replaced when dependencies are built.
