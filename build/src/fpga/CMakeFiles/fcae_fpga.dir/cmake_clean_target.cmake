file(REMOVE_RECURSE
  "libfcae_fpga.a"
)
