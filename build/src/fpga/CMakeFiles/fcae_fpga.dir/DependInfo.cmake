
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/fpga/block_parse.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/block_parse.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/block_parse.cc.o.d"
  "/root/repo/src/fpga/compaction_engine.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/compaction_engine.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/compaction_engine.cc.o.d"
  "/root/repo/src/fpga/comparer.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/comparer.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/comparer.cc.o.d"
  "/root/repo/src/fpga/decoder.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/decoder.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/decoder.cc.o.d"
  "/root/repo/src/fpga/device_memory.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/device_memory.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/device_memory.cc.o.d"
  "/root/repo/src/fpga/encoder.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/encoder.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/encoder.cc.o.d"
  "/root/repo/src/fpga/kv_transfer.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/kv_transfer.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/kv_transfer.cc.o.d"
  "/root/repo/src/fpga/output_to_input.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/output_to_input.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/output_to_input.cc.o.d"
  "/root/repo/src/fpga/resource_model.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/resource_model.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/resource_model.cc.o.d"
  "/root/repo/src/fpga/timing_model.cc" "src/fpga/CMakeFiles/fcae_fpga.dir/timing_model.cc.o" "gcc" "src/fpga/CMakeFiles/fcae_fpga.dir/timing_model.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/table/CMakeFiles/fcae_table.dir/DependInfo.cmake"
  "/root/repo/build/src/lsm/CMakeFiles/fcae_lsm.dir/DependInfo.cmake"
  "/root/repo/build/src/compress/CMakeFiles/fcae_compress.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/fcae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
