file(REMOVE_RECURSE
  "CMakeFiles/fcae_fpga.dir/block_parse.cc.o"
  "CMakeFiles/fcae_fpga.dir/block_parse.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/compaction_engine.cc.o"
  "CMakeFiles/fcae_fpga.dir/compaction_engine.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/comparer.cc.o"
  "CMakeFiles/fcae_fpga.dir/comparer.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/decoder.cc.o"
  "CMakeFiles/fcae_fpga.dir/decoder.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/device_memory.cc.o"
  "CMakeFiles/fcae_fpga.dir/device_memory.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/encoder.cc.o"
  "CMakeFiles/fcae_fpga.dir/encoder.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/kv_transfer.cc.o"
  "CMakeFiles/fcae_fpga.dir/kv_transfer.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/output_to_input.cc.o"
  "CMakeFiles/fcae_fpga.dir/output_to_input.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/resource_model.cc.o"
  "CMakeFiles/fcae_fpga.dir/resource_model.cc.o.d"
  "CMakeFiles/fcae_fpga.dir/timing_model.cc.o"
  "CMakeFiles/fcae_fpga.dir/timing_model.cc.o.d"
  "libfcae_fpga.a"
  "libfcae_fpga.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_fpga.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
