# Empty compiler generated dependencies file for fcae_workload.
# This may be replaced when dependencies are built.
