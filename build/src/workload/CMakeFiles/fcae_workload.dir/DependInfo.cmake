
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/workload/key_generator.cc" "src/workload/CMakeFiles/fcae_workload.dir/key_generator.cc.o" "gcc" "src/workload/CMakeFiles/fcae_workload.dir/key_generator.cc.o.d"
  "/root/repo/src/workload/ycsb.cc" "src/workload/CMakeFiles/fcae_workload.dir/ycsb.cc.o" "gcc" "src/workload/CMakeFiles/fcae_workload.dir/ycsb.cc.o.d"
  "/root/repo/src/workload/zipfian.cc" "src/workload/CMakeFiles/fcae_workload.dir/zipfian.cc.o" "gcc" "src/workload/CMakeFiles/fcae_workload.dir/zipfian.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/fcae_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
