file(REMOVE_RECURSE
  "libfcae_workload.a"
)
