file(REMOVE_RECURSE
  "CMakeFiles/fcae_workload.dir/key_generator.cc.o"
  "CMakeFiles/fcae_workload.dir/key_generator.cc.o.d"
  "CMakeFiles/fcae_workload.dir/ycsb.cc.o"
  "CMakeFiles/fcae_workload.dir/ycsb.cc.o.d"
  "CMakeFiles/fcae_workload.dir/zipfian.cc.o"
  "CMakeFiles/fcae_workload.dir/zipfian.cc.o.d"
  "libfcae_workload.a"
  "libfcae_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
