# Empty compiler generated dependencies file for bloom_test.
# This may be replaced when dependencies are built.
