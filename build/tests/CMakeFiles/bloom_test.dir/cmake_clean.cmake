file(REMOVE_RECURSE
  "CMakeFiles/bloom_test.dir/bloom_test.cc.o"
  "CMakeFiles/bloom_test.dir/bloom_test.cc.o.d"
  "bloom_test"
  "bloom_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bloom_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
