file(REMOVE_RECURSE
  "CMakeFiles/db_concurrency_test.dir/db_concurrency_test.cc.o"
  "CMakeFiles/db_concurrency_test.dir/db_concurrency_test.cc.o.d"
  "db_concurrency_test"
  "db_concurrency_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
