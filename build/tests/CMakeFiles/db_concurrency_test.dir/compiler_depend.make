# Empty compiler generated dependencies file for db_concurrency_test.
# This may be replaced when dependencies are built.
