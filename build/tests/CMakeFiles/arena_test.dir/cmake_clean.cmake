file(REMOVE_RECURSE
  "CMakeFiles/arena_test.dir/arena_test.cc.o"
  "CMakeFiles/arena_test.dir/arena_test.cc.o.d"
  "arena_test"
  "arena_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/arena_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
