# Empty compiler generated dependencies file for arena_test.
# This may be replaced when dependencies are built.
