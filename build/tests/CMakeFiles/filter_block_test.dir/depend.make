# Empty dependencies file for filter_block_test.
# This may be replaced when dependencies are built.
