file(REMOVE_RECURSE
  "CMakeFiles/filter_block_test.dir/filter_block_test.cc.o"
  "CMakeFiles/filter_block_test.dir/filter_block_test.cc.o.d"
  "filter_block_test"
  "filter_block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filter_block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
