file(REMOVE_RECURSE
  "CMakeFiles/snappy_test.dir/snappy_test.cc.o"
  "CMakeFiles/snappy_test.dir/snappy_test.cc.o.d"
  "snappy_test"
  "snappy_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/snappy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
