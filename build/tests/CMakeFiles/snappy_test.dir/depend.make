# Empty dependencies file for snappy_test.
# This may be replaced when dependencies are built.
