# Empty dependencies file for skiplist_test.
# This may be replaced when dependencies are built.
