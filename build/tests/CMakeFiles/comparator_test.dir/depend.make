# Empty dependencies file for comparator_test.
# This may be replaced when dependencies are built.
