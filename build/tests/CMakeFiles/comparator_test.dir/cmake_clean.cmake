file(REMOVE_RECURSE
  "CMakeFiles/comparator_test.dir/comparator_test.cc.o"
  "CMakeFiles/comparator_test.dir/comparator_test.cc.o.d"
  "comparator_test"
  "comparator_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/comparator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
