file(REMOVE_RECURSE
  "CMakeFiles/fpga_timing_test.dir/fpga_timing_test.cc.o"
  "CMakeFiles/fpga_timing_test.dir/fpga_timing_test.cc.o.d"
  "fpga_timing_test"
  "fpga_timing_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_timing_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
