file(REMOVE_RECURSE
  "CMakeFiles/host_offload_test.dir/host_offload_test.cc.o"
  "CMakeFiles/host_offload_test.dir/host_offload_test.cc.o.d"
  "host_offload_test"
  "host_offload_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/host_offload_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
