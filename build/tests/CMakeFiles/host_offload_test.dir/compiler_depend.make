# Empty compiler generated dependencies file for host_offload_test.
# This may be replaced when dependencies are built.
