file(REMOVE_RECURSE
  "CMakeFiles/fpga_fifo_test.dir/fpga_fifo_test.cc.o"
  "CMakeFiles/fpga_fifo_test.dir/fpga_fifo_test.cc.o.d"
  "fpga_fifo_test"
  "fpga_fifo_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_fifo_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
