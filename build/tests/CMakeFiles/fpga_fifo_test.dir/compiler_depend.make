# Empty compiler generated dependencies file for fpga_fifo_test.
# This may be replaced when dependencies are built.
