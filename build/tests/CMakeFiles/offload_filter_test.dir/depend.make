# Empty dependencies file for offload_filter_test.
# This may be replaced when dependencies are built.
