file(REMOVE_RECURSE
  "CMakeFiles/offload_filter_test.dir/offload_filter_test.cc.o"
  "CMakeFiles/offload_filter_test.dir/offload_filter_test.cc.o.d"
  "offload_filter_test"
  "offload_filter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_filter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
