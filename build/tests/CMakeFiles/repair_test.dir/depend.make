# Empty dependencies file for repair_test.
# This may be replaced when dependencies are built.
