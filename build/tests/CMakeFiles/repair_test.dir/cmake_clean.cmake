file(REMOVE_RECURSE
  "CMakeFiles/repair_test.dir/repair_test.cc.o"
  "CMakeFiles/repair_test.dir/repair_test.cc.o.d"
  "repair_test"
  "repair_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/repair_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
