# Empty dependencies file for log_fuzz_test.
# This may be replaced when dependencies are built.
