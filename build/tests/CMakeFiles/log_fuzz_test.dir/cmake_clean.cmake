file(REMOVE_RECURSE
  "CMakeFiles/log_fuzz_test.dir/log_fuzz_test.cc.o"
  "CMakeFiles/log_fuzz_test.dir/log_fuzz_test.cc.o.d"
  "log_fuzz_test"
  "log_fuzz_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/log_fuzz_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
