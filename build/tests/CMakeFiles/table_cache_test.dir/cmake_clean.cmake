file(REMOVE_RECURSE
  "CMakeFiles/table_cache_test.dir/table_cache_test.cc.o"
  "CMakeFiles/table_cache_test.dir/table_cache_test.cc.o.d"
  "table_cache_test"
  "table_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/table_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
