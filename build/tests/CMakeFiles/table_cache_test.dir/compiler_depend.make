# Empty compiler generated dependencies file for table_cache_test.
# This may be replaced when dependencies are built.
