file(REMOVE_RECURSE
  "CMakeFiles/fpga_resource_test.dir/fpga_resource_test.cc.o"
  "CMakeFiles/fpga_resource_test.dir/fpga_resource_test.cc.o.d"
  "fpga_resource_test"
  "fpga_resource_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_resource_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
