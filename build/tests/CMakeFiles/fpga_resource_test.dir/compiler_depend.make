# Empty compiler generated dependencies file for fpga_resource_test.
# This may be replaced when dependencies are built.
