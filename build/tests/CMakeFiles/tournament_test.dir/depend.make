# Empty dependencies file for tournament_test.
# This may be replaced when dependencies are built.
