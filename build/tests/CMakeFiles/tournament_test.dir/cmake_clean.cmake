file(REMOVE_RECURSE
  "CMakeFiles/tournament_test.dir/tournament_test.cc.o"
  "CMakeFiles/tournament_test.dir/tournament_test.cc.o.d"
  "tournament_test"
  "tournament_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tournament_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
