# Empty compiler generated dependencies file for db_iter_test.
# This may be replaced when dependencies are built.
