file(REMOVE_RECURSE
  "CMakeFiles/db_iter_test.dir/db_iter_test.cc.o"
  "CMakeFiles/db_iter_test.dir/db_iter_test.cc.o.d"
  "db_iter_test"
  "db_iter_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_iter_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
