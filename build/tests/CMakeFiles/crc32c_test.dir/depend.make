# Empty dependencies file for crc32c_test.
# This may be replaced when dependencies are built.
