file(REMOVE_RECURSE
  "CMakeFiles/crc32c_test.dir/crc32c_test.cc.o"
  "CMakeFiles/crc32c_test.dir/crc32c_test.cc.o.d"
  "crc32c_test"
  "crc32c_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/crc32c_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
