file(REMOVE_RECURSE
  "CMakeFiles/dbformat_test.dir/dbformat_test.cc.o"
  "CMakeFiles/dbformat_test.dir/dbformat_test.cc.o.d"
  "dbformat_test"
  "dbformat_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbformat_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
