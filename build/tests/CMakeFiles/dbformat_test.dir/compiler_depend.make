# Empty compiler generated dependencies file for dbformat_test.
# This may be replaced when dependencies are built.
