file(REMOVE_RECURSE
  "CMakeFiles/lsm_state_test.dir/lsm_state_test.cc.o"
  "CMakeFiles/lsm_state_test.dir/lsm_state_test.cc.o.d"
  "lsm_state_test"
  "lsm_state_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/lsm_state_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
