# Empty compiler generated dependencies file for lsm_state_test.
# This may be replaced when dependencies are built.
