# Empty compiler generated dependencies file for filename_test.
# This may be replaced when dependencies are built.
