file(REMOVE_RECURSE
  "CMakeFiles/filename_test.dir/filename_test.cc.o"
  "CMakeFiles/filename_test.dir/filename_test.cc.o.d"
  "filename_test"
  "filename_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/filename_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
