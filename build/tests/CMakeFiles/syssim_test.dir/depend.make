# Empty dependencies file for syssim_test.
# This may be replaced when dependencies are built.
