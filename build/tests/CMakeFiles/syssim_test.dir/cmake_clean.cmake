file(REMOVE_RECURSE
  "CMakeFiles/syssim_test.dir/syssim_test.cc.o"
  "CMakeFiles/syssim_test.dir/syssim_test.cc.o.d"
  "syssim_test"
  "syssim_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/syssim_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
