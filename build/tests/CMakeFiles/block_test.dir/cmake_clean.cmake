file(REMOVE_RECURSE
  "CMakeFiles/block_test.dir/block_test.cc.o"
  "CMakeFiles/block_test.dir/block_test.cc.o.d"
  "block_test"
  "block_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
