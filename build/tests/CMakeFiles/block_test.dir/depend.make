# Empty dependencies file for block_test.
# This may be replaced when dependencies are built.
