# Empty compiler generated dependencies file for log_test.
# This may be replaced when dependencies are built.
