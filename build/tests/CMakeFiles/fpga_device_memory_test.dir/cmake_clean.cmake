file(REMOVE_RECURSE
  "CMakeFiles/fpga_device_memory_test.dir/fpga_device_memory_test.cc.o"
  "CMakeFiles/fpga_device_memory_test.dir/fpga_device_memory_test.cc.o.d"
  "fpga_device_memory_test"
  "fpga_device_memory_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_device_memory_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
