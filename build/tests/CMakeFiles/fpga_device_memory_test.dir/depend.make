# Empty dependencies file for fpga_device_memory_test.
# This may be replaced when dependencies are built.
