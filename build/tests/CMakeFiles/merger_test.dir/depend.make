# Empty dependencies file for merger_test.
# This may be replaced when dependencies are built.
