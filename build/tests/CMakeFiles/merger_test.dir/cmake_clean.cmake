file(REMOVE_RECURSE
  "CMakeFiles/merger_test.dir/merger_test.cc.o"
  "CMakeFiles/merger_test.dir/merger_test.cc.o.d"
  "merger_test"
  "merger_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/merger_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
