file(REMOVE_RECURSE
  "CMakeFiles/fpga_engine_test.dir/fpga_engine_test.cc.o"
  "CMakeFiles/fpga_engine_test.dir/fpga_engine_test.cc.o.d"
  "fpga_engine_test"
  "fpga_engine_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fpga_engine_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
