# Empty dependencies file for fpga_engine_test.
# This may be replaced when dependencies are built.
