# Empty compiler generated dependencies file for autocompact_test.
# This may be replaced when dependencies are built.
