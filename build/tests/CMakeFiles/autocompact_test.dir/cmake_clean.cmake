file(REMOVE_RECURSE
  "CMakeFiles/autocompact_test.dir/autocompact_test.cc.o"
  "CMakeFiles/autocompact_test.dir/autocompact_test.cc.o.d"
  "autocompact_test"
  "autocompact_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/autocompact_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
