file(REMOVE_RECURSE
  "CMakeFiles/version_edit_test.dir/version_edit_test.cc.o"
  "CMakeFiles/version_edit_test.dir/version_edit_test.cc.o.d"
  "version_edit_test"
  "version_edit_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_edit_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
