# Empty dependencies file for version_edit_test.
# This may be replaced when dependencies are built.
