file(REMOVE_RECURSE
  "CMakeFiles/version_set_test.dir/version_set_test.cc.o"
  "CMakeFiles/version_set_test.dir/version_set_test.cc.o.d"
  "version_set_test"
  "version_set_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/version_set_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
