# Empty dependencies file for version_set_test.
# This may be replaced when dependencies are built.
