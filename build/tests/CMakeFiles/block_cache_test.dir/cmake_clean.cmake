file(REMOVE_RECURSE
  "CMakeFiles/block_cache_test.dir/block_cache_test.cc.o"
  "CMakeFiles/block_cache_test.dir/block_cache_test.cc.o.d"
  "block_cache_test"
  "block_cache_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_cache_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
