# Empty compiler generated dependencies file for block_cache_test.
# This may be replaced when dependencies are built.
