file(REMOVE_RECURSE
  "CMakeFiles/write_batch_test.dir/write_batch_test.cc.o"
  "CMakeFiles/write_batch_test.dir/write_batch_test.cc.o.d"
  "write_batch_test"
  "write_batch_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/write_batch_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
