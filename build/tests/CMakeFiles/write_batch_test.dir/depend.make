# Empty dependencies file for write_batch_test.
# This may be replaced when dependencies are built.
