file(REMOVE_RECURSE
  "CMakeFiles/memtable_test.dir/memtable_test.cc.o"
  "CMakeFiles/memtable_test.dir/memtable_test.cc.o.d"
  "memtable_test"
  "memtable_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/memtable_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
