# Empty compiler generated dependencies file for memtable_test.
# This may be replaced when dependencies are built.
