# CMAKE generated file: DO NOT EDIT!
# Timestamp file for compiler generated dependencies management for block_parse_test.
