# Empty compiler generated dependencies file for block_parse_test.
# This may be replaced when dependencies are built.
