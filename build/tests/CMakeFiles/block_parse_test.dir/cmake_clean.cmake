file(REMOVE_RECURSE
  "CMakeFiles/block_parse_test.dir/block_parse_test.cc.o"
  "CMakeFiles/block_parse_test.dir/block_parse_test.cc.o.d"
  "block_parse_test"
  "block_parse_test.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/block_parse_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
