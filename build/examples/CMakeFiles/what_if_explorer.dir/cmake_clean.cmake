file(REMOVE_RECURSE
  "CMakeFiles/what_if_explorer.dir/what_if_explorer.cpp.o"
  "CMakeFiles/what_if_explorer.dir/what_if_explorer.cpp.o.d"
  "what_if_explorer"
  "what_if_explorer.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/what_if_explorer.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
