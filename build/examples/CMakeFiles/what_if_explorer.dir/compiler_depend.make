# Empty compiler generated dependencies file for what_if_explorer.
# This may be replaced when dependencies are built.
