# Empty dependencies file for offload_compaction.
# This may be replaced when dependencies are built.
