file(REMOVE_RECURSE
  "CMakeFiles/offload_compaction.dir/offload_compaction.cpp.o"
  "CMakeFiles/offload_compaction.dir/offload_compaction.cpp.o.d"
  "offload_compaction"
  "offload_compaction.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/offload_compaction.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
