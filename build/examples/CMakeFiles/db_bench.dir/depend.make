# Empty dependencies file for db_bench.
# This may be replaced when dependencies are built.
