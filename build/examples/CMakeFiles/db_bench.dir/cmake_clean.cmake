file(REMOVE_RECURSE
  "CMakeFiles/db_bench.dir/db_bench.cpp.o"
  "CMakeFiles/db_bench.dir/db_bench.cpp.o.d"
  "db_bench"
  "db_bench.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/db_bench.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
