# Empty compiler generated dependencies file for fcae_db.
# This may be replaced when dependencies are built.
