file(REMOVE_RECURSE
  "CMakeFiles/fcae_db.dir/fcae_db.cpp.o"
  "CMakeFiles/fcae_db.dir/fcae_db.cpp.o.d"
  "fcae_db"
  "fcae_db.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fcae_db.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
